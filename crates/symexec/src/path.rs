//! Execution traces and path identities.
//!
//! Every concolic run produces an [`ExecTrace`]: the term arena, the branch
//! sequence, the input that produced it and the program outcome. Traces are
//! what the exploration layer negates branches against, and what the DiCE
//! fault checkers inspect.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

use dice_solver::{Model, TermArena, TermId, VarId};

use crate::context::{BranchRecord, ExecCtx, SiteId};
use crate::input::InputValues;

/// A compact identity for a code path: the ordered sequence of
/// `(site, direction)` pairs, hashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u64);

/// Computes the path identity of a branch sequence.
pub fn path_id(branches: &[(SiteId, bool)]) -> PathId {
    let mut h = DefaultHasher::new();
    for (site, taken) in branches {
        site.hash(&mut h);
        taken.hash(&mut h);
    }
    PathId(h.finish())
}

/// The result of one concolic execution of the program under test.
#[derive(Debug, Clone)]
pub struct ExecTrace {
    /// The term arena built during the run.
    pub arena: TermArena,
    /// The branches taken, in order.
    pub branches: Vec<BranchRecord>,
    /// Human-readable labels for branch sites.
    pub site_labels: HashMap<SiteId, String>,
    /// Concrete assignment of the symbolic inputs during the run.
    pub concrete: Model,
    /// Mapping from input field names to solver variables.
    pub var_map: HashMap<String, VarId>,
    /// The input values the run was started with.
    pub input: InputValues,
    /// Policy branch sites declared during the run (every arm of every
    /// filter the run evaluated, executed or not).
    pub policy_sites: BTreeSet<SiteId>,
}

impl ExecTrace {
    /// An empty placeholder trace: no arena, branches or inputs.
    ///
    /// The batched engine swaps this in while a run's real trace is lent to
    /// a solver worker for the duration of a wave; it never represents an
    /// actual execution.
    pub fn empty() -> Self {
        ExecTrace {
            arena: TermArena::new(),
            branches: Vec::new(),
            site_labels: HashMap::new(),
            concrete: Model::new(),
            var_map: HashMap::new(),
            input: InputValues::new(),
            policy_sites: BTreeSet::new(),
        }
    }

    /// Builds a trace from a finished execution context and its input.
    pub fn from_ctx(ctx: ExecCtx, input: InputValues) -> Self {
        let site_labels = ctx.site_labels().clone();
        let policy_sites = ctx.policy_sites().clone();
        let (arena, branches, concrete, var_map) = ctx.into_parts();
        ExecTrace {
            arena,
            branches,
            site_labels,
            concrete,
            var_map,
            input,
            policy_sites,
        }
    }

    /// Number of branches on the path.
    pub fn depth(&self) -> usize {
        self.branches.len()
    }

    /// The `(site, direction)` shape of the path.
    pub fn shape(&self) -> Vec<(SiteId, bool)> {
        self.branches.iter().map(|b| (b.site, b.taken)).collect()
    }

    /// The path identity of the full trace.
    pub fn path_id(&self) -> PathId {
        path_id(&self.shape())
    }

    /// The identity of the path targeted by negating branch `index`:
    /// the prefix up to `index` with the direction of `index` flipped.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn negated_path_id(&self, index: usize) -> PathId {
        let mut shape: Vec<(SiteId, bool)> = self
            .branches
            .iter()
            .take(index + 1)
            .map(|b| (b.site, b.taken))
            .collect();
        let last = shape.last_mut().expect("index within bounds");
        last.1 = !last.1;
        path_id(&shape)
    }

    /// Constraints of the path prefix `[0, index)` plus the negation of the
    /// branch at `index` — the query the solver must satisfy to steer
    /// execution down the unexplored side.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn negation_query(&mut self, index: usize) -> Vec<TermId> {
        assert!(index < self.branches.len(), "branch index out of bounds");
        let branches = self.branches.clone();
        let mut out = Vec::with_capacity(index + 1);
        for b in branches.iter().take(index) {
            out.push(b.taken_constraint(&mut self.arena));
        }
        out.push(branches[index].negated_constraint(&mut self.arena));
        out
    }

    /// All constraints along the executed path.
    pub fn path_constraints(&mut self) -> Vec<TermId> {
        let branches = self.branches.clone();
        branches
            .iter()
            .map(|b| b.taken_constraint(&mut self.arena))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::CU32;

    fn trace_with_two_branches(x_val: u32) -> ExecTrace {
        let mut ctx = ExecCtx::new();
        let x = ctx.symbolic_u32("x", x_val);
        let c10 = CU32::concrete(10);
        let c100 = CU32::concrete(100);
        let c1 = x.lt(&c10, &mut ctx);
        ctx.branch_labeled("b1", c1);
        let c2 = x.lt(&c100, &mut ctx);
        ctx.branch_labeled("b2", c2);
        ExecTrace::from_ctx(ctx, InputValues::new().with("x", x_val as u64))
    }

    #[test]
    fn path_id_depends_on_directions() {
        let t1 = trace_with_two_branches(5); // taken, taken
        let t2 = trace_with_two_branches(50); // not taken, taken
        assert_ne!(t1.path_id(), t2.path_id());
        let t3 = trace_with_two_branches(7); // same directions as t1
        assert_eq!(t1.path_id(), t3.path_id());
    }

    #[test]
    fn negated_path_id_matches_actual_path() {
        // Negating branch 0 of the x=5 trace (x<10 taken) targets the path
        // where x>=10; running with x=50 produces exactly that prefix.
        let t1 = trace_with_two_branches(5);
        let t2 = trace_with_two_branches(50);
        let target = t1.negated_path_id(0);
        let prefix: Vec<(SiteId, bool)> = t2.shape().into_iter().take(1).collect();
        assert_eq!(target, path_id(&prefix));
    }

    #[test]
    fn negation_query_is_satisfied_by_other_side() {
        let mut t = trace_with_two_branches(5);
        let query = t.negation_query(0);
        // The original input (x=5) must violate the negated query...
        assert!(!t.concrete.satisfies_all(&t.arena, &query));
        // ...while an input on the other side (x=20) satisfies it.
        let mut other = Model::new();
        other.set(t.var_map["x"], 20);
        assert!(other.satisfies_all(&t.arena, &query));
    }

    #[test]
    fn path_constraints_hold_for_own_input() {
        let mut t = trace_with_two_branches(42);
        let cs = t.path_constraints();
        assert_eq!(cs.len(), 2);
        assert!(t.concrete.satisfies_all(&t.arena, &cs));
    }

    #[test]
    fn depth_and_shape() {
        let t = trace_with_two_branches(5);
        assert_eq!(t.depth(), 2);
        let shape = t.shape();
        assert_eq!(shape.len(), 2);
        assert!(shape[0].1);
        assert!(shape[1].1);
    }

    #[test]
    fn empty_trace_is_inert() {
        let t = ExecTrace::empty();
        assert_eq!(t.depth(), 0);
        assert!(t.shape().is_empty());
        assert!(t.var_map.is_empty());
        assert_eq!(t.path_id(), path_id(&[]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn negation_query_rejects_bad_index() {
        let mut t = trace_with_two_branches(5);
        let _ = t.negation_query(5);
    }
}
