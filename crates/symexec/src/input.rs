//! Symbolic input descriptions and concrete input assignments.
//!
//! An [`InputSpec`] names the fields of the input that the exploration may
//! vary, together with their widths. An [`InputValues`] gives a concrete
//! value for each named field; it is what the engine passes to the program
//! under test, and what it derives from solver models when negating a
//! branch predicate.

use std::collections::BTreeMap;
use std::fmt;

use dice_solver::{Model, VarId};

/// Description of one symbolic input field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputField {
    /// Field name (e.g. `"nlri.prefix"`).
    pub name: String,
    /// Bit width (1..=64).
    pub width: u32,
    /// Default concrete value, used when a generated assignment leaves the
    /// field unconstrained.
    pub default: u64,
}

/// The set of symbolic input fields for a program under test.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InputSpec {
    fields: Vec<InputField>,
}

impl InputSpec {
    /// Creates an empty specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a field; builder style.
    pub fn field(mut self, name: impl Into<String>, width: u32, default: u64) -> Self {
        self.push(name, width, default);
        self
    }

    /// Adds a field in place.
    pub fn push(&mut self, name: impl Into<String>, width: u32, default: u64) {
        self.fields.push(InputField {
            name: name.into(),
            width,
            default,
        });
    }

    /// The declared fields, in declaration order.
    pub fn fields(&self) -> &[InputField] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Returns true if no fields are declared.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<&InputField> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Produces the default assignment (every field at its default value).
    pub fn defaults(&self) -> InputValues {
        let mut v = InputValues::new();
        for f in &self.fields {
            v.set(&f.name, f.default);
        }
        v
    }
}

/// A concrete assignment of values to named input fields.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputValues {
    values: BTreeMap<String, u64>,
}

impl InputValues {
    /// Creates an empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a field value.
    pub fn set(&mut self, name: &str, value: u64) {
        self.values.insert(name.to_string(), value);
    }

    /// Builder-style field setter.
    pub fn with(mut self, name: &str, value: u64) -> Self {
        self.set(name, value);
        self
    }

    /// Returns the value of a field, or `None` if absent.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// Returns the value of a field, or `default` if absent.
    pub fn get_or(&self, name: &str, default: u64) -> u64 {
        self.get(name).unwrap_or(default)
    }

    /// Number of assigned fields.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if no fields are assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Builds new input values from a solver model.
    ///
    /// Fields constrained by the model take the model's value; fields the
    /// model leaves unconstrained keep the value from `fallback` (usually
    /// the input of the run whose branch was negated), so that generated
    /// messages stay close to observed ones.
    pub fn from_model(
        model: &Model,
        var_map: &std::collections::HashMap<String, VarId>,
        fallback: &InputValues,
    ) -> InputValues {
        let mut out = fallback.clone();
        for (name, &var) in var_map {
            if let Some(v) = model.get_opt(var) {
                out.set(name, v);
            }
        }
        out
    }
}

impl fmt::Display for InputValues {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, u64)> for InputValues {
    fn from_iter<T: IntoIterator<Item = (String, u64)>>(iter: T) -> Self {
        InputValues {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn spec_defaults() {
        let spec = InputSpec::new()
            .field("nlri.prefix", 32, 0x0a00_0000)
            .field("nlri.len", 8, 24);
        assert_eq!(spec.len(), 2);
        let d = spec.defaults();
        assert_eq!(d.get("nlri.prefix"), Some(0x0a00_0000));
        assert_eq!(d.get("nlri.len"), Some(24));
        assert_eq!(spec.get("nlri.len").map(|f| f.width), Some(8));
        assert!(spec.get("missing").is_none());
    }

    #[test]
    fn values_roundtrip() {
        let v = InputValues::new().with("a", 1).with("b", 2);
        assert_eq!(v.get("a"), Some(1));
        assert_eq!(v.get_or("c", 9), 9);
        assert_eq!(v.len(), 2);
        assert_eq!(v.to_string(), "{a=1, b=2}");
    }

    #[test]
    fn from_model_merges_with_fallback() {
        let mut arena = dice_solver::TermArena::new();
        let va = arena.declare_var("a", 32);
        let _vb = arena.declare_var("b", 32);
        let mut var_map = HashMap::new();
        var_map.insert("a".to_string(), va);
        // `b` intentionally not in the var map: it was never made symbolic.
        let mut model = Model::new();
        model.set(va, 777);
        let fallback = InputValues::new().with("a", 1).with("b", 2);
        let merged = InputValues::from_model(&model, &var_map, &fallback);
        assert_eq!(merged.get("a"), Some(777));
        assert_eq!(merged.get("b"), Some(2));
    }

    #[test]
    fn values_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let v1 = InputValues::new().with("x", 1).with("y", 2);
        let v2 = InputValues::new().with("y", 2).with("x", 1);
        assert_eq!(v1, v2);
        let mut set = HashSet::new();
        set.insert(v1);
        assert!(set.contains(&v2));
    }
}
