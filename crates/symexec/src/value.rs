//! Concolic values: pairs of a concrete machine value and an optional
//! symbolic term.
//!
//! Code under test (the BGP UPDATE handler, the policy-filter interpreter)
//! is written against [`Concolic<T>`] instead of plain integers. Every
//! arithmetic or comparison operation computes the concrete result *and*,
//! when any operand carries a symbolic term, builds the corresponding term
//! in the execution context's arena. This is the library-level equivalent
//! of the CIL source instrumentation used by the paper's Oasis engine.

use crate::context::ExecCtx;
use dice_solver::term::TermId;

/// Machine integer types that can be tracked concolically.
pub trait ConcolicInt: Copy + Eq + Ord + std::fmt::Debug {
    /// Bit width of the type.
    const WIDTH: u32;
    /// Converts to the canonical `u64` representation.
    fn to_u64(self) -> u64;
    /// Converts from the canonical `u64` representation (truncating).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_concolic_int {
    ($($t:ty => $w:expr),* $(,)?) => {
        $(
            impl ConcolicInt for $t {
                const WIDTH: u32 = $w;
                fn to_u64(self) -> u64 {
                    self as u64
                }
                fn from_u64(v: u64) -> Self {
                    v as $t
                }
            }
        )*
    };
}

impl_concolic_int!(u8 => 8, u16 => 16, u32 => 32, u64 => 64);

/// A concolic integer: concrete value plus optional symbolic term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Concolic<T: ConcolicInt> {
    concrete: T,
    sym: Option<TermId>,
}

/// Convenience aliases for the common widths.
pub type CU8 = Concolic<u8>;
/// 16-bit concolic integer.
pub type CU16 = Concolic<u16>;
/// 32-bit concolic integer.
pub type CU32 = Concolic<u32>;
/// 64-bit concolic integer.
pub type CU64 = Concolic<u64>;

impl<T: ConcolicInt> Concolic<T> {
    /// Wraps a purely concrete value (no symbolic part).
    pub fn concrete(value: T) -> Self {
        Concolic {
            concrete: value,
            sym: None,
        }
    }

    /// Creates a value with both concrete and symbolic parts.
    pub fn with_term(value: T, term: TermId) -> Self {
        Concolic {
            concrete: value,
            sym: Some(term),
        }
    }

    /// The concrete value.
    pub fn value(&self) -> T {
        self.concrete
    }

    /// The symbolic term, if the value depends on symbolic input.
    pub fn term(&self) -> Option<TermId> {
        self.sym
    }

    /// Returns true if the value carries a symbolic term.
    pub fn is_symbolic(&self) -> bool {
        self.sym.is_some()
    }

    /// Drops the symbolic part, keeping only the concrete value.
    ///
    /// This is the mechanism the paper uses for operations whose constraints
    /// cannot be reversed by the solver (e.g. hash functions): execution
    /// continues with the concrete result and no constraint is recorded.
    pub fn concretize(&self) -> Self {
        Concolic {
            concrete: self.concrete,
            sym: None,
        }
    }

    fn term_or_const(&self, ctx: &mut ExecCtx) -> TermId {
        match self.sym {
            Some(t) => t,
            None => ctx.arena_mut().int_const(self.concrete.to_u64(), T::WIDTH),
        }
    }

    fn binop(
        &self,
        other: &Self,
        ctx: &mut ExecCtx,
        concrete: u64,
        build: impl FnOnce(&mut dice_solver::TermArena, TermId, TermId) -> TermId,
    ) -> Self {
        let concrete = T::from_u64(concrete);
        if self.sym.is_none() && other.sym.is_none() {
            return Concolic::concrete(concrete);
        }
        let a = self.term_or_const(ctx);
        let b = other.term_or_const(ctx);
        let t = build(ctx.arena_mut(), a, b);
        Concolic {
            concrete,
            sym: Some(t),
        }
    }

    fn cmpop(
        &self,
        other: &Self,
        ctx: &mut ExecCtx,
        concrete: bool,
        build: impl FnOnce(&mut dice_solver::TermArena, TermId, TermId) -> TermId,
    ) -> ConcolicBool {
        if self.sym.is_none() && other.sym.is_none() {
            return ConcolicBool::concrete(concrete);
        }
        let a = self.term_or_const(ctx);
        let b = other.term_or_const(ctx);
        let t = build(ctx.arena_mut(), a, b);
        ConcolicBool {
            concrete,
            sym: Some(t),
        }
    }

    /// Wrapping addition.
    pub fn add(&self, other: &Self, ctx: &mut ExecCtx) -> Self {
        let c = dice_solver::term::mask(
            self.concrete.to_u64().wrapping_add(other.concrete.to_u64()),
            T::WIDTH,
        );
        self.binop(other, ctx, c, |a, x, y| a.add(x, y))
    }

    /// Wrapping subtraction.
    pub fn sub(&self, other: &Self, ctx: &mut ExecCtx) -> Self {
        let c = dice_solver::term::mask(
            self.concrete.to_u64().wrapping_sub(other.concrete.to_u64()),
            T::WIDTH,
        );
        self.binop(other, ctx, c, |a, x, y| a.sub(x, y))
    }

    /// Wrapping multiplication.
    pub fn mul(&self, other: &Self, ctx: &mut ExecCtx) -> Self {
        let c = dice_solver::term::mask(
            self.concrete.to_u64().wrapping_mul(other.concrete.to_u64()),
            T::WIDTH,
        );
        self.binop(other, ctx, c, |a, x, y| a.mul(x, y))
    }

    /// Bitwise and.
    pub fn bitand(&self, other: &Self, ctx: &mut ExecCtx) -> Self {
        let c = self.concrete.to_u64() & other.concrete.to_u64();
        self.binop(other, ctx, c, |a, x, y| a.bitand(x, y))
    }

    /// Bitwise or.
    pub fn bitor(&self, other: &Self, ctx: &mut ExecCtx) -> Self {
        let c = self.concrete.to_u64() | other.concrete.to_u64();
        self.binop(other, ctx, c, |a, x, y| a.bitor(x, y))
    }

    /// Bitwise xor.
    pub fn bitxor(&self, other: &Self, ctx: &mut ExecCtx) -> Self {
        let c = self.concrete.to_u64() ^ other.concrete.to_u64();
        self.binop(other, ctx, c, |a, x, y| a.bitxor(x, y))
    }

    /// Logical shift left by a concrete amount.
    pub fn shl_const(&self, amount: u32, ctx: &mut ExecCtx) -> Self {
        let other = Concolic::concrete(T::from_u64(amount as u64));
        let c = dice_solver::term::TermArena::eval_bin(
            dice_solver::BinOp::Shl,
            self.concrete.to_u64(),
            amount as u64,
            T::WIDTH,
        );
        self.binop(&other, ctx, c, |a, x, y| a.shl(x, y))
    }

    /// Logical shift right by a concrete amount.
    pub fn shr_const(&self, amount: u32, ctx: &mut ExecCtx) -> Self {
        let other = Concolic::concrete(T::from_u64(amount as u64));
        let c = dice_solver::term::TermArena::eval_bin(
            dice_solver::BinOp::Lshr,
            self.concrete.to_u64(),
            amount as u64,
            T::WIDTH,
        );
        self.binop(&other, ctx, c, |a, x, y| a.lshr(x, y))
    }

    /// Equality comparison.
    pub fn eq(&self, other: &Self, ctx: &mut ExecCtx) -> ConcolicBool {
        self.cmpop(other, ctx, self.concrete == other.concrete, |a, x, y| {
            a.eq(x, y)
        })
    }

    /// Disequality comparison.
    pub fn ne(&self, other: &Self, ctx: &mut ExecCtx) -> ConcolicBool {
        self.cmpop(other, ctx, self.concrete != other.concrete, |a, x, y| {
            a.ne(x, y)
        })
    }

    /// Unsigned less-than.
    pub fn lt(&self, other: &Self, ctx: &mut ExecCtx) -> ConcolicBool {
        self.cmpop(other, ctx, self.concrete < other.concrete, |a, x, y| {
            a.ult(x, y)
        })
    }

    /// Unsigned less-or-equal.
    pub fn le(&self, other: &Self, ctx: &mut ExecCtx) -> ConcolicBool {
        self.cmpop(other, ctx, self.concrete <= other.concrete, |a, x, y| {
            a.ule(x, y)
        })
    }

    /// Unsigned greater-than.
    pub fn gt(&self, other: &Self, ctx: &mut ExecCtx) -> ConcolicBool {
        self.cmpop(other, ctx, self.concrete > other.concrete, |a, x, y| {
            a.ugt(x, y)
        })
    }

    /// Unsigned greater-or-equal.
    pub fn ge(&self, other: &Self, ctx: &mut ExecCtx) -> ConcolicBool {
        self.cmpop(other, ctx, self.concrete >= other.concrete, |a, x, y| {
            a.uge(x, y)
        })
    }

    /// Comparison against a concrete constant: equality.
    pub fn eq_const(&self, value: T, ctx: &mut ExecCtx) -> ConcolicBool {
        self.eq(&Concolic::concrete(value), ctx)
    }

    /// Comparison against a concrete constant: less-than.
    pub fn lt_const(&self, value: T, ctx: &mut ExecCtx) -> ConcolicBool {
        self.lt(&Concolic::concrete(value), ctx)
    }

    /// Comparison against a concrete constant: greater-than.
    pub fn gt_const(&self, value: T, ctx: &mut ExecCtx) -> ConcolicBool {
        self.gt(&Concolic::concrete(value), ctx)
    }
}

impl<T: ConcolicInt> From<T> for Concolic<T> {
    fn from(v: T) -> Self {
        Concolic::concrete(v)
    }
}

/// A concolic boolean: concrete truth value plus optional symbolic term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcolicBool {
    pub(crate) concrete: bool,
    pub(crate) sym: Option<TermId>,
}

impl ConcolicBool {
    /// Wraps a purely concrete boolean.
    pub fn concrete(value: bool) -> Self {
        ConcolicBool {
            concrete: value,
            sym: None,
        }
    }

    /// Creates a boolean with both concrete and symbolic parts.
    pub fn with_term(value: bool, term: TermId) -> Self {
        ConcolicBool {
            concrete: value,
            sym: Some(term),
        }
    }

    /// The concrete truth value.
    pub fn value(&self) -> bool {
        self.concrete
    }

    /// The symbolic term, if any.
    pub fn term(&self) -> Option<TermId> {
        self.sym
    }

    /// Returns true if the boolean carries a symbolic term.
    pub fn is_symbolic(&self) -> bool {
        self.sym.is_some()
    }

    /// Logical negation.
    pub fn not(&self, ctx: &mut ExecCtx) -> Self {
        match self.sym {
            None => ConcolicBool::concrete(!self.concrete),
            Some(t) => {
                let nt = ctx.arena_mut().not(t);
                ConcolicBool {
                    concrete: !self.concrete,
                    sym: Some(nt),
                }
            }
        }
    }

    /// Logical conjunction.
    pub fn and(&self, other: &Self, ctx: &mut ExecCtx) -> Self {
        let concrete = self.concrete && other.concrete;
        match (self.sym, other.sym) {
            (None, None) => ConcolicBool::concrete(concrete),
            _ => {
                let a = self.term_or_const(ctx);
                let b = other.term_or_const(ctx);
                let t = ctx.arena_mut().and(a, b);
                ConcolicBool {
                    concrete,
                    sym: Some(t),
                }
            }
        }
    }

    /// Logical disjunction.
    pub fn or(&self, other: &Self, ctx: &mut ExecCtx) -> Self {
        let concrete = self.concrete || other.concrete;
        match (self.sym, other.sym) {
            (None, None) => ConcolicBool::concrete(concrete),
            _ => {
                let a = self.term_or_const(ctx);
                let b = other.term_or_const(ctx);
                let t = ctx.arena_mut().or(a, b);
                ConcolicBool {
                    concrete,
                    sym: Some(t),
                }
            }
        }
    }

    fn term_or_const(&self, ctx: &mut ExecCtx) -> TermId {
        match self.sym {
            Some(t) => t,
            None => ctx.arena_mut().bool_const(self.concrete),
        }
    }
}

impl From<bool> for ConcolicBool {
    fn from(v: bool) -> Self {
        ConcolicBool::concrete(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecCtx;

    #[test]
    fn concrete_ops_stay_concrete() {
        let mut ctx = ExecCtx::new();
        let a = CU32::concrete(5);
        let b = CU32::concrete(7);
        let sum = a.add(&b, &mut ctx);
        assert_eq!(sum.value(), 12);
        assert!(!sum.is_symbolic());
        let cmp = a.lt(&b, &mut ctx);
        assert!(cmp.value());
        assert!(!cmp.is_symbolic());
        assert_eq!(ctx.arena().len(), 0, "no terms should be allocated");
    }

    #[test]
    fn symbolic_ops_build_terms() {
        let mut ctx = ExecCtx::new();
        let x = ctx.symbolic_u32("x", 10);
        let c = CU32::concrete(32);
        let sum = x.add(&c, &mut ctx);
        assert_eq!(sum.value(), 42);
        assert!(sum.is_symbolic());
        let cmp = sum.gt(&CU32::concrete(40), &mut ctx);
        assert!(cmp.value());
        assert!(cmp.is_symbolic());
    }

    #[test]
    fn wrapping_matches_machine_arithmetic() {
        let mut ctx = ExecCtx::new();
        let x = ctx.symbolic_u8("x", 250);
        let y = CU8::concrete(10);
        let sum = x.add(&y, &mut ctx);
        assert_eq!(sum.value(), 250u8.wrapping_add(10));
        let diff = y.sub(&x, &mut ctx);
        assert_eq!(diff.value(), 10u8.wrapping_sub(250));
    }

    #[test]
    fn concretize_drops_symbolic_part() {
        let mut ctx = ExecCtx::new();
        let x = ctx.symbolic_u32("x", 99);
        assert!(x.is_symbolic());
        let c = x.concretize();
        assert!(!c.is_symbolic());
        assert_eq!(c.value(), 99);
    }

    #[test]
    fn shifts_and_masks() {
        let mut ctx = ExecCtx::new();
        let x = ctx.symbolic_u32("addr", 0x0a01_0203);
        let hi = x.shr_const(24, &mut ctx);
        assert_eq!(hi.value(), 0x0a);
        assert!(hi.is_symbolic());
        let mask = CU32::concrete(0xff);
        let low = x.bitand(&mask, &mut ctx);
        assert_eq!(low.value(), 0x03);
    }

    #[test]
    fn bool_connectives() {
        let mut ctx = ExecCtx::new();
        let x = ctx.symbolic_u32("x", 5);
        let a = x.gt_const(3, &mut ctx);
        let b = x.lt_const(10, &mut ctx);
        let both = a.and(&b, &mut ctx);
        assert!(both.value());
        assert!(both.is_symbolic());
        let neg = both.not(&mut ctx);
        assert!(!neg.value());
        let concrete_or = ConcolicBool::concrete(false).or(&ConcolicBool::concrete(true), &mut ctx);
        assert!(concrete_or.value());
        assert!(!concrete_or.is_symbolic());
    }
}
