//! # dice-symexec
//!
//! A concolic execution engine for Rust code, playing the role of the Oasis
//! engine in the DiCE prototype (USENIX ATC 2011).
//!
//! The original system instruments C programs with CIL so that every branch
//! on symbolic data records a constraint at run time. In Rust there is no
//! equivalent source-instrumentation pipeline, so this crate uses a
//! *library embedding*: code under test manipulates [`Concolic`] values and
//! announces its branches through [`ExecCtx::branch`]. The observable
//! artifact is the same — a path condition per execution — and the
//! exploration loop (negate a predicate, solve, re-execute) is identical to
//! the one described in the paper's Figure 1.
//!
//! ## Quick example
//!
//! ```
//! use dice_symexec::{ConcolicEngine, ExecCtx, InputValues};
//!
//! // A handler with two paths: the engine discovers both from one seed.
//! let mut handler = |ctx: &mut ExecCtx, input: &InputValues| {
//!     let ttl = ctx.symbolic_u32("ttl", input.get_or("ttl", 0) as u32);
//!     let cond = ttl.gt_const(64, ctx);
//!     if ctx.branch_labeled("ttl-check", cond) {
//!         "drop"
//!     } else {
//!         "forward"
//!     }
//! };
//!
//! let engine = ConcolicEngine::new();
//! let result = engine.explore(&mut handler, &[InputValues::new().with("ttl", 10)]);
//! let outputs: std::collections::HashSet<_> = result.outputs().copied().collect();
//! assert!(outputs.contains("drop") && outputs.contains("forward"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod coverage;
pub mod engine;
pub mod input;
pub mod path;
pub mod strategy;
pub mod value;

pub use context::{BranchRecord, ExecCtx, SiteId};
pub use coverage::{Coverage, SiteCoverage};
pub use engine::{
    ConcolicEngine, EngineConfig, Exploration, ExplorationStats, RunRecord, SymbolicProgram,
};
pub use input::{InputField, InputSpec, InputValues};
pub use path::{path_id, ExecTrace, PathId};
pub use strategy::{Candidate, SearchStrategy, Worklist};
pub use value::{Concolic, ConcolicBool, ConcolicInt, CU16, CU32, CU64, CU8};

// Solver handles that appear in this crate's public API (branch records and
// policy arm traces carry `TermId` path constraints).
pub use dice_solver::TermId;
