//! Branch coverage accounting across exploration runs.
//!
//! The paper's exploration strategy "attempts to cover all execution paths
//! reachable by the set of controlled symbolic inputs"; coverage statistics
//! tell the engine (and the operator) how close it is, and drive the
//! coverage-guided search strategy.

use std::collections::{BTreeSet, HashMap};

use crate::context::SiteId;

/// Which directions of a branch site have been observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCoverage {
    /// The true/taken direction has been observed.
    pub taken: bool,
    /// The false/not-taken direction has been observed.
    pub not_taken: bool,
    /// Number of times the site was executed.
    pub hits: u64,
}

impl SiteCoverage {
    /// Returns true if both directions have been observed.
    pub fn is_complete(&self) -> bool {
        self.taken && self.not_taken
    }
}

/// Aggregate coverage over all branch sites seen so far.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    sites: HashMap<SiteId, SiteCoverage>,
    labels: HashMap<SiteId, String>,
    /// Sites that live in router *configuration* (filter arms) rather than
    /// code. Registration is independent of execution, so the denominator
    /// of [`Coverage::policy_branch_coverage`] includes arms no run has
    /// reached.
    policy: BTreeSet<SiteId>,
}

impl Coverage {
    /// Creates empty coverage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of a branch direction.
    pub fn record(&mut self, site: SiteId, taken: bool) {
        let entry = self.sites.entry(site).or_default();
        entry.hits += 1;
        if taken {
            entry.taken = true;
        } else {
            entry.not_taken = true;
        }
    }

    /// Records a human-readable label for a site.
    pub fn record_label(&mut self, site: SiteId, label: &str) {
        self.labels.entry(site).or_insert_with(|| label.to_string());
    }

    /// Returns the label of a site, if known.
    pub fn label(&self, site: SiteId) -> Option<&str> {
        self.labels.get(&site).map(String::as_str)
    }

    /// Returns the coverage entry for a site, if it was ever executed.
    pub fn site(&self, site: SiteId) -> Option<SiteCoverage> {
        self.sites.get(&site).copied()
    }

    /// Returns true if the given direction of the site has been observed.
    pub fn direction_covered(&self, site: SiteId, taken: bool) -> bool {
        match self.sites.get(&site) {
            None => false,
            Some(c) => {
                if taken {
                    c.taken
                } else {
                    c.not_taken
                }
            }
        }
    }

    /// Number of distinct branch sites observed.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Number of sites for which both directions were observed.
    pub fn complete_sites(&self) -> usize {
        self.sites.values().filter(|c| c.is_complete()).count()
    }

    /// Number of `(site, direction)` pairs observed.
    pub fn directions_covered(&self) -> usize {
        self.sites
            .values()
            .map(|c| usize::from(c.taken) + usize::from(c.not_taken))
            .sum()
    }

    /// Branch coverage ratio: observed directions over `2 * sites`.
    ///
    /// Returns 1.0 when no sites have been observed.
    pub fn branch_coverage(&self) -> f64 {
        if self.sites.is_empty() {
            return 1.0;
        }
        self.directions_covered() as f64 / (2 * self.sites.len()) as f64
    }

    /// Registers a policy branch site (a filter arm). Registering a site
    /// does not mark any direction covered — it only adds the site to the
    /// policy-coverage denominator.
    pub fn register_policy_site(&mut self, site: SiteId) {
        self.policy.insert(site);
    }

    /// Returns true if the site was registered as a policy site.
    pub fn is_policy_site(&self, site: SiteId) -> bool {
        self.policy.contains(&site)
    }

    /// Number of registered policy branch sites (executed or not).
    pub fn policy_site_count(&self) -> usize {
        self.policy.len()
    }

    /// Number of policy sites for which both directions were observed.
    pub fn policy_complete_sites(&self) -> usize {
        self.policy
            .iter()
            .filter(|s| self.sites.get(s).is_some_and(|c| c.is_complete()))
            .count()
    }

    /// Number of `(policy site, direction)` pairs observed.
    pub fn policy_directions_covered(&self) -> usize {
        self.policy
            .iter()
            .filter_map(|s| self.sites.get(s))
            .map(|c| usize::from(c.taken) + usize::from(c.not_taken))
            .sum()
    }

    /// Policy-branch coverage ratio: observed policy directions over
    /// `2 * registered policy sites`. Unlike [`Coverage::branch_coverage`],
    /// the denominator counts *registered* sites, so arms no execution has
    /// reached drag the ratio down.
    ///
    /// Returns 1.0 when no policy sites are registered.
    pub fn policy_branch_coverage(&self) -> f64 {
        if self.policy.is_empty() {
            return 1.0;
        }
        self.policy_directions_covered() as f64 / (2 * self.policy.len()) as f64
    }

    /// Iterates over `(site, coverage)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, SiteCoverage)> + '_ {
        self.sites.iter().map(|(&s, &c)| (s, c))
    }

    /// Merges another coverage map into this one.
    pub fn merge(&mut self, other: &Coverage) {
        for (&site, cov) in &other.sites {
            let entry = self.sites.entry(site).or_default();
            entry.hits += cov.hits;
            entry.taken |= cov.taken;
            entry.not_taken |= cov.not_taken;
        }
        for (&site, label) in &other.labels {
            self.labels.entry(site).or_insert_with(|| label.clone());
        }
        self.policy.extend(other.policy.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u64) -> SiteId {
        SiteId(n)
    }

    #[test]
    fn recording_accumulates_directions() {
        let mut cov = Coverage::new();
        cov.record(site(1), true);
        cov.record(site(1), true);
        cov.record(site(2), false);
        assert_eq!(cov.site_count(), 2);
        assert_eq!(cov.directions_covered(), 2);
        assert_eq!(cov.complete_sites(), 0);
        assert!((cov.branch_coverage() - 0.5).abs() < 1e-9);
        cov.record(site(1), false);
        assert_eq!(cov.complete_sites(), 1);
        assert!(cov.site(site(1)).expect("seen").is_complete());
        assert_eq!(cov.site(site(1)).expect("seen").hits, 3);
    }

    #[test]
    fn direction_covered_queries() {
        let mut cov = Coverage::new();
        cov.record(site(7), true);
        assert!(cov.direction_covered(site(7), true));
        assert!(!cov.direction_covered(site(7), false));
        assert!(!cov.direction_covered(site(8), true));
    }

    #[test]
    fn empty_coverage_is_fully_covered() {
        let cov = Coverage::new();
        assert_eq!(cov.branch_coverage(), 1.0);
        assert_eq!(cov.site_count(), 0);
    }

    #[test]
    fn policy_sites_count_registered_arms_even_when_unexecuted() {
        let mut cov = Coverage::new();
        assert_eq!(cov.policy_branch_coverage(), 1.0);
        cov.register_policy_site(site(1));
        cov.register_policy_site(site(2));
        assert_eq!(cov.policy_site_count(), 2);
        assert!(cov.is_policy_site(site(1)));
        assert!(!cov.is_policy_site(site(3)));
        // Nothing executed yet: 0 of 4 directions.
        assert_eq!(cov.policy_directions_covered(), 0);
        assert_eq!(cov.policy_branch_coverage(), 0.0);
        // One direction of one arm: 1/4. Message-field sites don't count.
        cov.record(site(1), true);
        cov.record(site(9), true);
        cov.record(site(9), false);
        assert_eq!(cov.policy_directions_covered(), 1);
        assert!((cov.policy_branch_coverage() - 0.25).abs() < 1e-9);
        assert_eq!(cov.policy_complete_sites(), 0);
        cov.record(site(1), false);
        assert_eq!(cov.policy_complete_sites(), 1);
        // Registration never marks directions covered by itself.
        assert!(cov.site(site(2)).is_none());
    }

    #[test]
    fn merge_unions_policy_registrations() {
        let mut a = Coverage::new();
        a.register_policy_site(site(1));
        let mut b = Coverage::new();
        b.register_policy_site(site(2));
        b.record(site(2), true);
        a.merge(&b);
        assert_eq!(a.policy_site_count(), 2);
        assert_eq!(a.policy_directions_covered(), 1);
    }

    #[test]
    fn merge_combines_sites_and_labels() {
        let mut a = Coverage::new();
        a.record(site(1), true);
        a.record_label(site(1), "first");
        let mut b = Coverage::new();
        b.record(site(1), false);
        b.record(site(2), true);
        b.record_label(site(2), "second");
        a.merge(&b);
        assert_eq!(a.site_count(), 2);
        assert_eq!(a.complete_sites(), 1);
        assert_eq!(a.label(site(1)), Some("first"));
        assert_eq!(a.label(site(2)), Some("second"));
    }
}
