//! Branch coverage accounting across exploration runs.
//!
//! The paper's exploration strategy "attempts to cover all execution paths
//! reachable by the set of controlled symbolic inputs"; coverage statistics
//! tell the engine (and the operator) how close it is, and drive the
//! coverage-guided search strategy.

use std::collections::HashMap;

use crate::context::SiteId;

/// Which directions of a branch site have been observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCoverage {
    /// The true/taken direction has been observed.
    pub taken: bool,
    /// The false/not-taken direction has been observed.
    pub not_taken: bool,
    /// Number of times the site was executed.
    pub hits: u64,
}

impl SiteCoverage {
    /// Returns true if both directions have been observed.
    pub fn is_complete(&self) -> bool {
        self.taken && self.not_taken
    }
}

/// Aggregate coverage over all branch sites seen so far.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    sites: HashMap<SiteId, SiteCoverage>,
    labels: HashMap<SiteId, String>,
}

impl Coverage {
    /// Creates empty coverage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of a branch direction.
    pub fn record(&mut self, site: SiteId, taken: bool) {
        let entry = self.sites.entry(site).or_default();
        entry.hits += 1;
        if taken {
            entry.taken = true;
        } else {
            entry.not_taken = true;
        }
    }

    /// Records a human-readable label for a site.
    pub fn record_label(&mut self, site: SiteId, label: &str) {
        self.labels.entry(site).or_insert_with(|| label.to_string());
    }

    /// Returns the label of a site, if known.
    pub fn label(&self, site: SiteId) -> Option<&str> {
        self.labels.get(&site).map(String::as_str)
    }

    /// Returns the coverage entry for a site, if it was ever executed.
    pub fn site(&self, site: SiteId) -> Option<SiteCoverage> {
        self.sites.get(&site).copied()
    }

    /// Returns true if the given direction of the site has been observed.
    pub fn direction_covered(&self, site: SiteId, taken: bool) -> bool {
        match self.sites.get(&site) {
            None => false,
            Some(c) => {
                if taken {
                    c.taken
                } else {
                    c.not_taken
                }
            }
        }
    }

    /// Number of distinct branch sites observed.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Number of sites for which both directions were observed.
    pub fn complete_sites(&self) -> usize {
        self.sites.values().filter(|c| c.is_complete()).count()
    }

    /// Number of `(site, direction)` pairs observed.
    pub fn directions_covered(&self) -> usize {
        self.sites
            .values()
            .map(|c| usize::from(c.taken) + usize::from(c.not_taken))
            .sum()
    }

    /// Branch coverage ratio: observed directions over `2 * sites`.
    ///
    /// Returns 1.0 when no sites have been observed.
    pub fn branch_coverage(&self) -> f64 {
        if self.sites.is_empty() {
            return 1.0;
        }
        self.directions_covered() as f64 / (2 * self.sites.len()) as f64
    }

    /// Iterates over `(site, coverage)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, SiteCoverage)> + '_ {
        self.sites.iter().map(|(&s, &c)| (s, c))
    }

    /// Merges another coverage map into this one.
    pub fn merge(&mut self, other: &Coverage) {
        for (&site, cov) in &other.sites {
            let entry = self.sites.entry(site).or_default();
            entry.hits += cov.hits;
            entry.taken |= cov.taken;
            entry.not_taken |= cov.not_taken;
        }
        for (&site, label) in &other.labels {
            self.labels.entry(site).or_insert_with(|| label.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u64) -> SiteId {
        SiteId(n)
    }

    #[test]
    fn recording_accumulates_directions() {
        let mut cov = Coverage::new();
        cov.record(site(1), true);
        cov.record(site(1), true);
        cov.record(site(2), false);
        assert_eq!(cov.site_count(), 2);
        assert_eq!(cov.directions_covered(), 2);
        assert_eq!(cov.complete_sites(), 0);
        assert!((cov.branch_coverage() - 0.5).abs() < 1e-9);
        cov.record(site(1), false);
        assert_eq!(cov.complete_sites(), 1);
        assert!(cov.site(site(1)).expect("seen").is_complete());
        assert_eq!(cov.site(site(1)).expect("seen").hits, 3);
    }

    #[test]
    fn direction_covered_queries() {
        let mut cov = Coverage::new();
        cov.record(site(7), true);
        assert!(cov.direction_covered(site(7), true));
        assert!(!cov.direction_covered(site(7), false));
        assert!(!cov.direction_covered(site(8), true));
    }

    #[test]
    fn empty_coverage_is_fully_covered() {
        let cov = Coverage::new();
        assert_eq!(cov.branch_coverage(), 1.0);
        assert_eq!(cov.site_count(), 0);
    }

    #[test]
    fn merge_combines_sites_and_labels() {
        let mut a = Coverage::new();
        a.record(site(1), true);
        a.record_label(site(1), "first");
        let mut b = Coverage::new();
        b.record(site(1), false);
        b.record(site(2), true);
        b.record_label(site(2), "second");
        a.merge(&b);
        assert_eq!(a.site_count(), 2);
        assert_eq!(a.complete_sites(), 1);
        assert_eq!(a.label(site(1)), Some("first"));
        assert_eq!(a.label(site(2)), Some("second"));
    }
}
