//! The concolic execution context.
//!
//! An [`ExecCtx`] is created for each execution of the program under test.
//! It owns the term arena, the registry of symbolic input variables and the
//! sequence of branch records observed along the current code path.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::Location;

use dice_solver::{Model, TermArena, TermId, VarId};

use crate::value::{Concolic, ConcolicBool, ConcolicInt, CU16, CU32, CU64, CU8};

/// A stable identifier of a branch site in the program under test.
///
/// Sites created from Rust code use the caller's source location (via
/// `#[track_caller]`), mirroring how CIL instrumentation identifies branches
/// by static program location. Sites created by the policy-filter
/// interpreter use the filter name and AST node index instead, so that the
/// *configuration* contributes its own branch sites, as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u64);

impl SiteId {
    /// Builds a site id from an arbitrary label.
    pub fn from_label(label: &str) -> Self {
        let mut h = DefaultHasher::new();
        label.hash(&mut h);
        SiteId(h.finish())
    }

    /// Builds a site id from a source location.
    pub fn from_location(loc: &Location<'_>) -> Self {
        let mut h = DefaultHasher::new();
        loc.file().hash(&mut h);
        loc.line().hash(&mut h);
        loc.column().hash(&mut h);
        SiteId(h.finish())
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{:016x}", self.0)
    }
}

/// A branch observed during one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchRecord {
    /// The branch site.
    pub site: SiteId,
    /// The symbolic condition term (boolean sort).
    pub condition: TermId,
    /// The direction the concrete execution took.
    pub taken: bool,
}

impl BranchRecord {
    /// The constraint that holds on the executed path.
    pub fn taken_constraint(&self, arena: &mut TermArena) -> TermId {
        if self.taken {
            self.condition
        } else {
            arena.not(self.condition)
        }
    }

    /// The constraint describing the *other* side of the branch.
    pub fn negated_constraint(&self, arena: &mut TermArena) -> TermId {
        if self.taken {
            arena.not(self.condition)
        } else {
            self.condition
        }
    }
}

/// Execution context for one concolic run.
///
/// # Examples
///
/// ```
/// use dice_symexec::ExecCtx;
///
/// let mut ctx = ExecCtx::new();
/// let med = ctx.symbolic_u32("med", 50);
/// let threshold = dice_symexec::CU32::concrete(100);
/// let cond = med.lt(&threshold, &mut ctx);
/// let taken = ctx.branch(cond);
/// assert!(taken);
/// assert_eq!(ctx.branches().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ExecCtx {
    arena: TermArena,
    vars: HashMap<String, VarId>,
    concrete: Model,
    branches: Vec<BranchRecord>,
    site_labels: HashMap<SiteId, String>,
    policy_sites: BTreeSet<SiteId>,
    recording: bool,
    max_branches: usize,
}

impl Default for ExecCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecCtx {
    /// Creates a fresh context with no symbolic variables.
    pub fn new() -> Self {
        ExecCtx {
            arena: TermArena::new(),
            vars: HashMap::new(),
            concrete: Model::new(),
            branches: Vec::new(),
            site_labels: HashMap::new(),
            policy_sites: BTreeSet::new(),
            recording: true,
            max_branches: 100_000,
        }
    }

    /// Limits the number of branch records kept for a single run (guards
    /// against pathological loops over symbolic data).
    pub fn with_max_branches(mut self, max: usize) -> Self {
        self.max_branches = max;
        self
    }

    /// Read access to the term arena.
    pub fn arena(&self) -> &TermArena {
        &self.arena
    }

    /// Mutable access to the term arena (used by [`Concolic`] operations).
    pub fn arena_mut(&mut self) -> &mut TermArena {
        &mut self.arena
    }

    /// Consumes the context, returning its arena, branches and input model.
    pub fn into_parts(self) -> (TermArena, Vec<BranchRecord>, Model, HashMap<String, VarId>) {
        (self.arena, self.branches, self.concrete, self.vars)
    }

    /// The branches recorded so far, in execution order.
    pub fn branches(&self) -> &[BranchRecord] {
        &self.branches
    }

    /// The concrete assignment of all symbolic inputs declared so far.
    pub fn concrete_model(&self) -> &Model {
        &self.concrete
    }

    /// The mapping from symbolic input names to solver variables.
    pub fn var_map(&self) -> &HashMap<String, VarId> {
        &self.vars
    }

    /// Human-readable labels for branch sites, when known.
    pub fn site_labels(&self) -> &HashMap<SiteId, String> {
        &self.site_labels
    }

    /// Returns whether constraint recording is currently enabled.
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Enables or disables constraint recording.
    ///
    /// The paper disables recording around operations whose constraints the
    /// solver cannot reverse (hash functions); handler code does the same by
    /// bracketing such regions with `set_recording(false)` / `(true)`, or by
    /// calling [`ExecCtx::without_recording`].
    pub fn set_recording(&mut self, enabled: bool) {
        self.recording = enabled;
    }

    /// Runs a closure with recording disabled, restoring the previous state.
    pub fn without_recording<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let prev = self.recording;
        self.recording = false;
        let r = f(self);
        self.recording = prev;
        r
    }

    fn declare<T: ConcolicInt>(&mut self, name: &str, concrete: T) -> Concolic<T> {
        let var = match self.vars.get(name) {
            Some(&v) => v,
            None => {
                let v = self.arena.declare_var(name, T::WIDTH);
                self.vars.insert(name.to_string(), v);
                v
            }
        };
        self.concrete.set(var, concrete.to_u64());
        let term = self.arena.var(var);
        Concolic::with_term(concrete, term)
    }

    /// Declares (or re-binds) an 8-bit symbolic input with a concrete value.
    pub fn symbolic_u8(&mut self, name: &str, concrete: u8) -> CU8 {
        self.declare(name, concrete)
    }

    /// Declares (or re-binds) a 16-bit symbolic input with a concrete value.
    pub fn symbolic_u16(&mut self, name: &str, concrete: u16) -> CU16 {
        self.declare(name, concrete)
    }

    /// Declares (or re-binds) a 32-bit symbolic input with a concrete value.
    pub fn symbolic_u32(&mut self, name: &str, concrete: u32) -> CU32 {
        self.declare(name, concrete)
    }

    /// Declares (or re-binds) a 64-bit symbolic input with a concrete value.
    pub fn symbolic_u64(&mut self, name: &str, concrete: u64) -> CU64 {
        self.declare(name, concrete)
    }

    /// Records a branch at the caller's source location and returns the
    /// concrete outcome, which the caller should use to decide control flow.
    #[track_caller]
    pub fn branch(&mut self, cond: ConcolicBool) -> bool {
        let loc = Location::caller();
        let site = SiteId::from_location(loc);
        self.site_labels
            .entry(site)
            .or_insert_with(|| format!("{}:{}:{}", loc.file(), loc.line(), loc.column()));
        self.branch_at(site, cond)
    }

    /// Records a branch at an explicitly-identified site (used by the
    /// policy-filter interpreter, where the site is a configuration AST
    /// node rather than a Rust source location).
    pub fn branch_at(&mut self, site: SiteId, cond: ConcolicBool) -> bool {
        if self.recording && cond.is_symbolic() && self.branches.len() < self.max_branches {
            // The symbolic term is present by the `is_symbolic` check.
            let condition = cond.term().expect("symbolic condition has a term");
            self.branches.push(BranchRecord {
                site,
                condition,
                taken: cond.value(),
            });
        }
        cond.value()
    }

    /// Records a labelled branch, remembering the label for reports.
    pub fn branch_labeled(&mut self, label: &str, cond: ConcolicBool) -> bool {
        let site = SiteId::from_label(label);
        self.site_labels
            .entry(site)
            .or_insert_with(|| label.to_string());
        self.branch_at(site, cond)
    }

    /// Declares a *policy* branch site — a site that lives in the router's
    /// configuration (a filter `if` arm) rather than in code. Declaration
    /// is independent of execution: the filter interpreter declares every
    /// arm of a filter up front, so arms no run has reached still count in
    /// the policy-coverage denominator.
    pub fn declare_policy_site(&mut self, label: &str) -> SiteId {
        let site = SiteId::from_label(label);
        self.site_labels
            .entry(site)
            .or_insert_with(|| label.to_string());
        self.policy_sites.insert(site);
        site
    }

    /// Records a labelled branch at a policy site (declaring it as such).
    pub fn policy_branch_labeled(&mut self, label: &str, cond: ConcolicBool) -> bool {
        let site = self.declare_policy_site(label);
        self.branch_at(site, cond)
    }

    /// The policy sites declared during this run, in stable order.
    pub fn policy_sites(&self) -> &BTreeSet<SiteId> {
        &self.policy_sites
    }

    /// The conjunction of constraints describing the executed path.
    pub fn path_constraints(&mut self) -> Vec<TermId> {
        let branches = self.branches.clone();
        branches
            .iter()
            .map(|b| b.taken_constraint(&mut self.arena))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbolic_inputs_are_registered() {
        let mut ctx = ExecCtx::new();
        let x = ctx.symbolic_u32("x", 7);
        assert!(x.is_symbolic());
        assert_eq!(x.value(), 7);
        assert_eq!(ctx.var_map().len(), 1);
        let var = ctx.var_map()["x"];
        assert_eq!(ctx.concrete_model().get(var), 7);
        // Re-declaring the same name reuses the variable.
        let x2 = ctx.symbolic_u32("x", 9);
        assert_eq!(ctx.var_map().len(), 1);
        assert_eq!(x2.value(), 9);
    }

    #[test]
    fn branches_are_recorded_with_direction() {
        let mut ctx = ExecCtx::new();
        let x = ctx.symbolic_u32("x", 5);
        let c10 = CU32::concrete(10);
        let cond = x.lt(&c10, &mut ctx);
        let taken = ctx.branch(cond);
        assert!(taken);
        let c3 = CU32::concrete(3);
        let cond2 = x.lt(&c3, &mut ctx);
        let taken2 = ctx.branch(cond2);
        assert!(!taken2);
        assert_eq!(ctx.branches().len(), 2);
        assert!(ctx.branches()[0].taken);
        assert!(!ctx.branches()[1].taken);
        // The two branch sites must be distinct (different source lines).
        assert_ne!(ctx.branches()[0].site, ctx.branches()[1].site);
    }

    #[test]
    fn concrete_conditions_are_not_recorded() {
        let mut ctx = ExecCtx::new();
        let a = CU32::concrete(1);
        let b = CU32::concrete(2);
        let cond = a.lt(&b, &mut ctx);
        let taken = ctx.branch(cond);
        assert!(taken);
        assert!(ctx.branches().is_empty());
    }

    #[test]
    fn recording_can_be_suppressed() {
        let mut ctx = ExecCtx::new();
        let x = ctx.symbolic_u32("x", 5);
        let c = CU32::concrete(10);
        let cond = x.lt(&c, &mut ctx);
        ctx.without_recording(|ctx| {
            let _ = ctx.branch(cond);
        });
        assert!(ctx.branches().is_empty());
        assert!(ctx.is_recording());
        let _ = ctx.branch(cond);
        assert_eq!(ctx.branches().len(), 1);
    }

    #[test]
    fn path_constraints_reflect_taken_directions() {
        let mut ctx = ExecCtx::new();
        let x = ctx.symbolic_u32("x", 5);
        let c10 = CU32::concrete(10);
        let c3 = CU32::concrete(3);
        let c1 = x.lt(&c10, &mut ctx);
        let c2 = x.lt(&c3, &mut ctx);
        ctx.branch(c1); // taken
        ctx.branch(c2); // not taken
        let constraints = ctx.path_constraints();
        assert_eq!(constraints.len(), 2);
        // The concrete model must satisfy the path constraints it generated.
        let model = ctx.concrete_model().clone();
        assert!(model.satisfies_all(ctx.arena(), &constraints));
    }

    #[test]
    fn labeled_branch_sites_are_stable() {
        let mut ctx = ExecCtx::new();
        let x = ctx.symbolic_u32("x", 1);
        let zero = CU32::concrete(0);
        let cond = x.gt(&zero, &mut ctx);
        ctx.branch_labeled("filter:line1", cond);
        ctx.branch_labeled("filter:line1", cond);
        assert_eq!(ctx.branches()[0].site, ctx.branches()[1].site);
        assert_eq!(ctx.site_labels()[&ctx.branches()[0].site], "filter:line1");
        assert_eq!(SiteId::from_label("filter:line1"), ctx.branches()[0].site);
    }

    #[test]
    fn policy_sites_are_declared_independently_of_execution() {
        let mut ctx = ExecCtx::new();
        let declared = ctx.declare_policy_site("filter:f:if0");
        let unexecuted = ctx.declare_policy_site("filter:f:if1");
        assert_eq!(declared, SiteId::from_label("filter:f:if0"));
        assert_eq!(ctx.policy_sites().len(), 2);
        assert!(ctx.branches().is_empty(), "declaration records no branch");
        // Executing one of them records a branch at the same site.
        let x = ctx.symbolic_u32("x", 1);
        let cond = x.gt(&CU32::concrete(0), &mut ctx);
        ctx.policy_branch_labeled("filter:f:if0", cond);
        assert_eq!(ctx.branches().len(), 1);
        assert_eq!(ctx.branches()[0].site, declared);
        assert!(ctx.policy_sites().contains(&unexecuted));
        assert_eq!(ctx.site_labels()[&unexecuted], "filter:f:if1");
    }

    #[test]
    fn max_branches_caps_recording() {
        let mut ctx = ExecCtx::new().with_max_branches(3);
        let x = ctx.symbolic_u32("x", 5);
        let c = CU32::concrete(10);
        for _ in 0..10 {
            let cond = x.lt(&c, &mut ctx);
            ctx.branch(cond);
        }
        assert_eq!(ctx.branches().len(), 3);
    }

    #[test]
    fn negated_constraint_flips_direction() {
        let mut ctx = ExecCtx::new();
        let x = ctx.symbolic_u32("x", 5);
        let c = CU32::concrete(10);
        let cond = x.lt(&c, &mut ctx);
        ctx.branch(cond);
        let rec = ctx.branches()[0];
        let (mut arena, _, model, _) = ctx.into_parts();
        let taken = rec.taken_constraint(&mut arena);
        let negated = rec.negated_constraint(&mut arena);
        assert!(model.holds(&arena, taken));
        assert!(!model.holds(&arena, negated));
    }
}
