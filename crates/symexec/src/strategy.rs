//! Search strategies for selecting the next branch to negate.
//!
//! Oasis (the engine the paper builds on) "has multiple search strategies";
//! the default "attempts to cover all execution paths reachable by the set
//! of controlled symbolic inputs". This module provides the equivalent
//! choices for the Rust engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::context::SiteId;
use crate::coverage::Coverage;

/// A pending exploration candidate: negate branch `branch_index` of run
/// `run_index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Index of the run (in the engine's run list) the branch belongs to.
    pub run_index: usize,
    /// Index of the branch within that run's trace.
    pub branch_index: usize,
    /// Exploration generation of the run (seeds are generation 0).
    pub generation: u32,
    /// Branch site, used for coverage-guided selection.
    pub site: SiteId,
    /// Direction the original run took at this branch.
    pub taken: bool,
    /// True when the branch site lives in router configuration (a policy
    /// filter arm) rather than code. Scheduling is identical either way;
    /// the flag attributes solver queries to policy exploration in
    /// [`dice_solver::SolverStats`]-style accounting.
    pub is_policy: bool,
}

/// Strategy used to pick the next candidate from the worklist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Negate the most recently discovered, deepest branch first (LIFO).
    DepthFirst,
    /// Explore runs generation by generation (FIFO), the default of the
    /// paper's engine and of SAGE-style whitebox fuzzing.
    #[default]
    Generational,
    /// Prefer candidates whose unexplored direction has never been covered
    /// at that site; fall back to generational order.
    CoverageGuided,
    /// Pick uniformly at random (deterministic given the seed).
    Random {
        /// RNG seed.
        seed: u64,
    },
}

impl SearchStrategy {
    /// Returns true if the strategy's pop order is unaffected by deferring
    /// the integration of executed runs, i.e. whether the engine may drain
    /// several candidates as one batch and still pop in exactly the order
    /// the sequential negate-solve-execute loop would.
    ///
    /// This holds for [`SearchStrategy::Generational`]: runs generated
    /// while a generation-`g` wave is in flight only enqueue
    /// generation-`g+1` candidates, which strict `(generation,
    /// branch_index)` ordering never prefers over remaining `g` candidates.
    /// The other strategies consult state that changes with every execution
    /// (depth frontier, coverage, RNG draws), so the engine runs them
    /// through the sequential loop instead.
    pub fn batchable(&self) -> bool {
        matches!(self, SearchStrategy::Generational)
    }

    /// Returns true if `next` may join a batch started by `first` without
    /// changing the sequential pop order. Only meaningful when
    /// [`SearchStrategy::batchable`] holds.
    pub fn same_wave(&self, first: &Candidate, next: &Candidate) -> bool {
        self.batchable() && first.generation == next.generation
    }
}

/// Worklist of pending candidates with strategy-driven selection.
#[derive(Debug)]
pub struct Worklist {
    strategy: SearchStrategy,
    items: Vec<Candidate>,
    rng: StdRng,
}

impl Worklist {
    /// Creates an empty worklist using the given strategy.
    pub fn new(strategy: SearchStrategy) -> Self {
        let seed = match strategy {
            SearchStrategy::Random { seed } => seed,
            _ => 0,
        };
        Worklist {
            strategy,
            items: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Adds a candidate.
    pub fn push(&mut self, c: Candidate) {
        self.items.push(c);
    }

    /// Number of pending candidates.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns true if no candidates are pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Selects and removes the next candidate according to the strategy.
    ///
    /// Removal preserves the insertion order of the remaining candidates,
    /// so ties (equal strategy keys) always break toward the earliest
    /// enqueued candidate — a property the batched engine relies on to pop
    /// in exactly the sequential order.
    pub fn pop(&mut self, coverage: &Coverage) -> Option<Candidate> {
        self.pop_if(coverage, |_| true)
    }

    /// Like [`Worklist::pop`], but lets the caller inspect the selected
    /// candidate first: if `accept` returns false the candidate stays in
    /// the worklist and `None` is returned.
    ///
    /// With [`SearchStrategy::Random`] a refusal still consumes an RNG
    /// draw, perturbing subsequent selections; callers batching waves
    /// should consult [`SearchStrategy::batchable`] and never probe
    /// non-batchable strategies.
    pub fn pop_if(
        &mut self,
        coverage: &Coverage,
        accept: impl FnOnce(&Candidate) -> bool,
    ) -> Option<Candidate> {
        if self.items.is_empty() {
            return None;
        }
        let idx = match self.strategy {
            SearchStrategy::DepthFirst => {
                // Last inserted, deepest branch.
                let mut best = self.items.len() - 1;
                for (i, c) in self.items.iter().enumerate() {
                    let b = &self.items[best];
                    if (c.generation, c.branch_index) > (b.generation, b.branch_index) {
                        best = i;
                    }
                }
                best
            }
            SearchStrategy::Generational => {
                // Lowest generation, then shallowest branch: breadth-first
                // over the execution tree.
                let mut best = 0;
                for (i, c) in self.items.iter().enumerate() {
                    let b = &self.items[best];
                    if (c.generation, c.branch_index) < (b.generation, b.branch_index) {
                        best = i;
                    }
                }
                best
            }
            SearchStrategy::CoverageGuided => {
                // Prefer candidates targeting a direction never covered.
                let mut best: Option<usize> = None;
                for (i, c) in self.items.iter().enumerate() {
                    let uncovered = !coverage.direction_covered(c.site, !c.taken);
                    let best_uncovered = best
                        .map(|b| {
                            !coverage.direction_covered(self.items[b].site, !self.items[b].taken)
                        })
                        .unwrap_or(false);
                    let better = match best {
                        None => true,
                        Some(b) => {
                            let bc = &self.items[b];
                            (uncovered, std::cmp::Reverse((c.generation, c.branch_index)))
                                > (
                                    best_uncovered,
                                    std::cmp::Reverse((bc.generation, bc.branch_index)),
                                )
                        }
                    };
                    if better {
                        best = Some(i);
                    }
                }
                best.unwrap_or(0)
            }
            SearchStrategy::Random { .. } => self.rng.gen_range(0..self.items.len()),
        };
        if !accept(&self.items[idx]) {
            return None;
        }
        Some(self.items.remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(run: usize, branch: usize, generation: u32, site: u64, taken: bool) -> Candidate {
        Candidate {
            run_index: run,
            branch_index: branch,
            generation,
            site: SiteId(site),
            taken,
            is_policy: false,
        }
    }

    #[test]
    fn generational_pops_lowest_generation_first() {
        let mut wl = Worklist::new(SearchStrategy::Generational);
        wl.push(cand(1, 3, 2, 10, true));
        wl.push(cand(0, 1, 0, 11, true));
        wl.push(cand(2, 0, 1, 12, false));
        let cov = Coverage::new();
        let first = wl.pop(&cov).expect("non-empty");
        assert_eq!(first.generation, 0);
        let second = wl.pop(&cov).expect("non-empty");
        assert_eq!(second.generation, 1);
    }

    #[test]
    fn depth_first_pops_deepest_latest() {
        let mut wl = Worklist::new(SearchStrategy::DepthFirst);
        wl.push(cand(0, 1, 0, 10, true));
        wl.push(cand(1, 5, 1, 11, true));
        wl.push(cand(1, 2, 1, 12, false));
        let cov = Coverage::new();
        let first = wl.pop(&cov).expect("non-empty");
        assert_eq!((first.generation, first.branch_index), (1, 5));
    }

    #[test]
    fn coverage_guided_prefers_uncovered_directions() {
        let mut wl = Worklist::new(SearchStrategy::CoverageGuided);
        wl.push(cand(0, 0, 0, 10, true)); // negation targets (10, false)
        wl.push(cand(0, 1, 0, 11, true)); // negation targets (11, false)
        let mut cov = Coverage::new();
        // Site 10's false direction is already covered; site 11's is not.
        cov.record(SiteId(10), false);
        cov.record(SiteId(10), true);
        cov.record(SiteId(11), true);
        let first = wl.pop(&cov).expect("non-empty");
        assert_eq!(first.site, SiteId(11));
    }

    #[test]
    fn random_is_deterministic_for_seed() {
        let order = |seed| {
            let mut wl = Worklist::new(SearchStrategy::Random { seed });
            for i in 0..8 {
                wl.push(cand(i, 0, 0, i as u64, true));
            }
            let cov = Coverage::new();
            let mut out = Vec::new();
            while let Some(c) = wl.pop(&cov) {
                out.push(c.run_index);
            }
            out
        };
        assert_eq!(order(42), order(42));
        assert_eq!(order(42).len(), 8);
    }

    #[test]
    fn pop_if_leaves_refused_candidates_in_place() {
        let mut wl = Worklist::new(SearchStrategy::Generational);
        wl.push(cand(0, 0, 0, 10, true));
        wl.push(cand(1, 0, 1, 11, true));
        let cov = Coverage::new();
        let first = wl.pop(&cov).expect("non-empty");
        assert_eq!(first.generation, 0);
        // The next selection is generation 1; a same-wave barrier refuses it.
        let strategy = SearchStrategy::Generational;
        let refused = wl.pop_if(&cov, |c| strategy.same_wave(&first, c));
        assert!(refused.is_none());
        assert_eq!(wl.len(), 1, "refused candidate stays queued");
        let accepted = wl.pop(&cov).expect("still there");
        assert_eq!(accepted.generation, 1);
    }

    #[test]
    fn only_generational_is_batchable() {
        assert!(SearchStrategy::Generational.batchable());
        assert!(!SearchStrategy::DepthFirst.batchable());
        assert!(!SearchStrategy::CoverageGuided.batchable());
        assert!(!SearchStrategy::Random { seed: 1 }.batchable());
        let a = cand(0, 0, 2, 10, true);
        let same = cand(1, 3, 2, 11, false);
        let other = cand(1, 3, 3, 11, false);
        assert!(SearchStrategy::Generational.same_wave(&a, &same));
        assert!(!SearchStrategy::Generational.same_wave(&a, &other));
        assert!(!SearchStrategy::DepthFirst.same_wave(&a, &same));
    }

    #[test]
    fn pop_breaks_ties_by_insertion_order() {
        let mut wl = Worklist::new(SearchStrategy::Generational);
        // Equal (generation, branch_index) keys: insertion order decides.
        wl.push(cand(7, 0, 0, 10, true));
        wl.push(cand(8, 0, 0, 11, true));
        wl.push(cand(9, 0, 0, 12, true));
        let cov = Coverage::new();
        let order: Vec<usize> = std::iter::from_fn(|| wl.pop(&cov))
            .map(|c| c.run_index)
            .collect();
        assert_eq!(order, vec![7, 8, 9]);
    }

    #[test]
    fn pop_on_empty_returns_none() {
        let mut wl = Worklist::new(SearchStrategy::default());
        assert!(wl.pop(&Coverage::new()).is_none());
        assert!(wl.is_empty());
        assert_eq!(wl.len(), 0);
    }
}
