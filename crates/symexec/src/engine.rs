//! The concolic execution engine.
//!
//! The engine drives the loop at the heart of DiCE (Figure 1 of the paper):
//!
//! 1. execute the program under test with a concrete input, recording the
//!    branch constraints along the executed path;
//! 2. pick a recorded branch (according to the search strategy) and ask the
//!    solver for an input that satisfies the path prefix plus the *negated*
//!    branch predicate;
//! 3. execute the program with the generated input, record its path, update
//!    the aggregate constraint/coverage set, and repeat until the path
//!    budget is exhausted or no unexplored branches remain.
//!
//! The program under test implements [`SymbolicProgram`]; in DiCE it is the
//! BGP UPDATE handler executing over a clone of the node checkpoint.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use dice_solver::{Solver, SolverConfig, SolverStats, Verdict};

use crate::context::ExecCtx;
use crate::coverage::Coverage;
use crate::input::InputValues;
use crate::path::{ExecTrace, PathId};
use crate::strategy::{Candidate, SearchStrategy, Worklist};

/// A program that can be executed concolically.
///
/// Implementations create their symbolic inputs through the provided
/// [`ExecCtx`] (typically by calling `ctx.symbolic_u32(name, value)` with
/// values taken from `input`), branch through [`ExecCtx::branch`] /
/// [`ExecCtx::branch_labeled`], and return an application-level outcome
/// that fault checkers can inspect.
pub trait SymbolicProgram {
    /// Application-level outcome of one execution.
    type Output;

    /// Executes the program once with the given concrete input.
    fn run(&mut self, ctx: &mut ExecCtx, input: &InputValues) -> Self::Output;
}

impl<F, O> SymbolicProgram for F
where
    F: FnMut(&mut ExecCtx, &InputValues) -> O,
{
    type Output = O;

    fn run(&mut self, ctx: &mut ExecCtx, input: &InputValues) -> O {
        self(ctx, input)
    }
}

/// Configuration of the exploration loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum number of program executions (including seed runs).
    pub max_runs: usize,
    /// Maximum number of branches recorded per run.
    pub max_branches_per_run: usize,
    /// Maximum number of negation candidates taken from a single run
    /// (0 means unlimited).
    pub max_candidates_per_run: usize,
    /// Search strategy for candidate selection.
    pub strategy: SearchStrategy,
    /// Solver configuration.
    pub solver: SolverConfig,
    /// If true, skip negation candidates whose target `(site, direction)`
    /// is already covered. This trades exhaustive path coverage for speed.
    pub prune_covered_directions: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_runs: 256,
            max_branches_per_run: 10_000,
            max_candidates_per_run: 0,
            strategy: SearchStrategy::Generational,
            solver: SolverConfig::default(),
            prune_covered_directions: false,
        }
    }
}

/// One completed execution: its trace, its output, and provenance.
#[derive(Debug, Clone)]
pub struct RunRecord<O> {
    /// The execution trace (arena, branches, inputs).
    pub trace: ExecTrace,
    /// The application-level output of the run.
    pub output: O,
    /// `None` for seed runs; otherwise `(run, branch)` that was negated to
    /// generate this run's input.
    pub parent: Option<(usize, usize)>,
    /// Exploration generation (seeds are 0).
    pub generation: u32,
}

/// Counters describing one exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExplorationStats {
    /// Number of program executions performed.
    pub runs: usize,
    /// Number of negation candidates generated.
    pub candidates: usize,
    /// Candidates skipped because their target path had already been tried.
    pub skipped_duplicates: usize,
    /// Candidates skipped by coverage pruning.
    pub skipped_covered: usize,
    /// Solver queries that produced a new input.
    pub solver_sat: usize,
    /// Solver queries proving the other side infeasible.
    pub solver_unsat: usize,
    /// Solver queries that timed out / were undecided.
    pub solver_unknown: usize,
    /// Total wall-clock time of the exploration, in nanoseconds.
    pub elapsed_ns: u64,
}

impl ExplorationStats {
    /// Total exploration wall-clock time.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_ns)
    }
}

/// The result of an exploration.
#[derive(Debug)]
pub struct Exploration<O> {
    /// All runs, in execution order (seed runs first).
    pub runs: Vec<RunRecord<O>>,
    /// Aggregate branch coverage.
    pub coverage: Coverage,
    /// Exploration counters.
    pub stats: ExplorationStats,
    /// Cumulative solver statistics.
    pub solver_stats: SolverStats,
}

impl<O> Exploration<O> {
    /// Iterates over the outputs of all runs.
    pub fn outputs(&self) -> impl Iterator<Item = &O> {
        self.runs.iter().map(|r| &r.output)
    }

    /// Number of distinct paths executed.
    pub fn distinct_paths(&self) -> usize {
        let ids: HashSet<PathId> = self.runs.iter().map(|r| r.trace.path_id()).collect();
        ids.len()
    }

    /// The inputs of all non-seed runs, i.e. the inputs the engine derived
    /// by negating branch predicates. In DiCE these become the exploratory
    /// messages sent to the cloned checkpoint.
    pub fn generated_inputs(&self) -> Vec<&InputValues> {
        self.runs
            .iter()
            .filter(|r| r.parent.is_some())
            .map(|r| &r.trace.input)
            .collect()
    }
}

/// The concolic execution engine.
#[derive(Debug, Default)]
pub struct ConcolicEngine {
    config: EngineConfig,
}

impl ConcolicEngine {
    /// Creates an engine with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine with the given configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        ConcolicEngine { config }
    }

    /// Returns the engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Explores the program starting from the given seed inputs.
    ///
    /// Each seed is executed once; every symbolic branch observed becomes a
    /// negation candidate. The engine then repeatedly selects a candidate,
    /// solves for an input on the unexplored side, and executes it, until
    /// `max_runs` executions have been performed or the worklist is empty.
    pub fn explore<P: SymbolicProgram>(
        &self,
        program: &mut P,
        seeds: &[InputValues],
    ) -> Exploration<P::Output> {
        let start = Instant::now();
        let mut solver = Solver::with_config(self.config.solver);
        let mut runs: Vec<RunRecord<P::Output>> = Vec::new();
        let mut coverage = Coverage::new();
        let mut stats = ExplorationStats::default();
        let mut worklist = Worklist::new(self.config.strategy);
        // Path identities we have executed or already queued a query for.
        let mut attempted: HashSet<PathId> = HashSet::new();

        // Seed executions (the paper's "previously observed inputs").
        for seed in seeds {
            if runs.len() >= self.config.max_runs {
                break;
            }
            let record = self.execute(program, seed.clone(), None, 0);
            self.integrate(
                record,
                &mut runs,
                &mut coverage,
                &mut worklist,
                &mut attempted,
                &mut stats,
            );
        }

        // Main negate-solve-execute loop.
        while runs.len() < self.config.max_runs {
            let Some(candidate) = worklist.pop(&coverage) else {
                break;
            };
            if self.config.prune_covered_directions
                && coverage.direction_covered(candidate.site, !candidate.taken)
            {
                stats.skipped_covered += 1;
                continue;
            }
            let target = runs[candidate.run_index]
                .trace
                .negated_path_id(candidate.branch_index);
            if !attempted.insert(target) {
                stats.skipped_duplicates += 1;
                continue;
            }
            // Build and solve the negation query against the originating
            // run's arena.
            let (query, seed_model, fallback_input) = {
                let run = &mut runs[candidate.run_index];
                let query = run.trace.negation_query(candidate.branch_index);
                (query, run.trace.concrete.clone(), run.trace.input.clone())
            };
            let verdict = {
                let run = &mut runs[candidate.run_index];
                solver.solve(&mut run.trace.arena, &query, Some(&seed_model))
            };
            match verdict {
                Verdict::Sat(model) => {
                    stats.solver_sat += 1;
                    let input = {
                        let run = &runs[candidate.run_index];
                        InputValues::from_model(&model, &run.trace.var_map, &fallback_input)
                    };
                    let generation = runs[candidate.run_index].generation + 1;
                    let record = self.execute(
                        program,
                        input,
                        Some((candidate.run_index, candidate.branch_index)),
                        generation,
                    );
                    self.integrate(
                        record,
                        &mut runs,
                        &mut coverage,
                        &mut worklist,
                        &mut attempted,
                        &mut stats,
                    );
                }
                Verdict::Unsat => stats.solver_unsat += 1,
                Verdict::Unknown => stats.solver_unknown += 1,
            }
        }

        stats.runs = runs.len();
        stats.elapsed_ns = start.elapsed().as_nanos() as u64;
        Exploration {
            runs,
            coverage,
            stats,
            solver_stats: *solver.stats(),
        }
    }

    /// Executes the program once and wraps the result in a [`RunRecord`].
    fn execute<P: SymbolicProgram>(
        &self,
        program: &mut P,
        input: InputValues,
        parent: Option<(usize, usize)>,
        generation: u32,
    ) -> RunRecord<P::Output> {
        let mut ctx = ExecCtx::new().with_max_branches(self.config.max_branches_per_run);
        let output = program.run(&mut ctx, &input);
        let trace = ExecTrace::from_ctx(ctx, input);
        RunRecord {
            trace,
            output,
            parent,
            generation,
        }
    }

    /// Adds a completed run to the exploration state: updates coverage,
    /// marks its path as attempted and enqueues its negation candidates.
    fn integrate<O>(
        &self,
        record: RunRecord<O>,
        runs: &mut Vec<RunRecord<O>>,
        coverage: &mut Coverage,
        worklist: &mut Worklist,
        attempted: &mut HashSet<PathId>,
        stats: &mut ExplorationStats,
    ) {
        let run_index = runs.len();
        for b in &record.trace.branches {
            coverage.record(b.site, b.taken);
            if let Some(label) = record.trace.site_labels.get(&b.site) {
                coverage.record_label(b.site, label);
            }
        }
        attempted.insert(record.trace.path_id());
        let candidate_count = record.trace.branches.len();
        let limit = if self.config.max_candidates_per_run == 0 {
            candidate_count
        } else {
            self.config.max_candidates_per_run.min(candidate_count)
        };
        for (branch_index, b) in record.trace.branches.iter().enumerate().take(limit) {
            worklist.push(Candidate {
                run_index,
                branch_index,
                generation: record.generation,
                site: b.site,
                taken: b.taken,
            });
            stats.candidates += 1;
        }
        runs.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The three-branch sample program from Figure 1 of the paper: the
    /// engine should discover all reachable paths by negating predicates.
    fn figure1_program(ctx: &mut ExecCtx, input: &InputValues) -> &'static str {
        let x = ctx.symbolic_u32("x", input.get_or("x", 0) as u32);
        let y = ctx.symbolic_u32("y", input.get_or("y", 0) as u32);
        let c1 = x.gt_const(100, ctx);
        if ctx.branch_labeled("p1", c1) {
            let c2 = y.eq_const(7, ctx);
            if ctx.branch_labeled("p2", c2) {
                "deep"
            } else {
                "mid"
            }
        } else {
            "shallow"
        }
    }

    #[test]
    fn explores_all_paths_of_figure1() {
        let engine = ConcolicEngine::new();
        let seeds = [InputValues::new().with("x", 5).with("y", 0)];
        let mut program = figure1_program;
        let result = engine.explore(&mut program, &seeds);
        let outputs: HashSet<&str> = result.outputs().copied().collect();
        assert!(outputs.contains("shallow"));
        assert!(outputs.contains("mid"));
        assert!(outputs.contains("deep"));
        assert!(result.distinct_paths() >= 3);
        assert_eq!(result.coverage.complete_sites(), 2);
        assert!(result.stats.solver_sat >= 2);
    }

    #[test]
    fn respects_run_budget() {
        let config = EngineConfig {
            max_runs: 2,
            ..Default::default()
        };
        let engine = ConcolicEngine::with_config(config);
        let seeds = [InputValues::new().with("x", 5).with("y", 0)];
        let mut program = figure1_program;
        let result = engine.explore(&mut program, &seeds);
        assert_eq!(result.runs.len(), 2);
        assert_eq!(result.stats.runs, 2);
    }

    #[test]
    fn unsat_branches_are_counted_not_explored() {
        // The second branch is infeasible to negate: x > 100 && x <= 100.
        fn program(ctx: &mut ExecCtx, input: &InputValues) -> u32 {
            let x = ctx.symbolic_u32("x", input.get_or("x", 0) as u32);
            let c1 = x.gt_const(100, ctx);
            if ctx.branch_labeled("outer", c1) {
                let c2 = x.gt_const(100, ctx);
                if ctx.branch_labeled("inner-dup", c2) {
                    2
                } else {
                    1
                }
            } else {
                0
            }
        }
        let engine = ConcolicEngine::new();
        let seeds = [InputValues::new().with("x", 200)];
        let mut p = program;
        let result = engine.explore(&mut p, &seeds);
        // The inner branch negation (x <= 100 while x > 100) must be unsat.
        assert!(result.stats.solver_unsat >= 1);
        let outputs: HashSet<u32> = result.outputs().copied().collect();
        assert!(outputs.contains(&2));
        assert!(outputs.contains(&0));
        assert!(!outputs.contains(&1));
    }

    #[test]
    fn generated_inputs_differ_from_seed() {
        let engine = ConcolicEngine::new();
        let seed = InputValues::new().with("x", 5).with("y", 0);
        let mut program = figure1_program;
        let result = engine.explore(&mut program, std::slice::from_ref(&seed));
        let generated = result.generated_inputs();
        assert!(!generated.is_empty());
        assert!(generated.iter().any(|g| **g != seed));
    }

    #[test]
    fn closure_with_state_can_be_explored() {
        let mut observed = Vec::new();
        {
            let mut program = |ctx: &mut ExecCtx, input: &InputValues| {
                let v = ctx.symbolic_u32("v", input.get_or("v", 0) as u32);
                let c = v.eq_const(0xdead, ctx);
                let hit = ctx.branch_labeled("magic", c);
                observed.push(hit);
                hit
            };
            let engine = ConcolicEngine::new();
            let result = engine.explore(&mut program, &[InputValues::new().with("v", 0)]);
            assert!(result.outputs().any(|&o| o));
        }
        assert!(observed.iter().any(|&b| b));
    }

    #[test]
    fn pruning_reduces_work() {
        let full = ConcolicEngine::with_config(EngineConfig {
            prune_covered_directions: false,
            ..Default::default()
        });
        let pruned = ConcolicEngine::with_config(EngineConfig {
            prune_covered_directions: true,
            ..Default::default()
        });
        // Several runs hit the same branch sites.
        fn program(ctx: &mut ExecCtx, input: &InputValues) -> bool {
            let a = ctx.symbolic_u32("a", input.get_or("a", 0) as u32);
            let b = ctx.symbolic_u32("b", input.get_or("b", 0) as u32);
            let c1 = a.gt_const(10, ctx);
            let c2 = b.gt_const(10, ctx);
            let r1 = ctx.branch_labeled("a>10", c1);
            let r2 = ctx.branch_labeled("b>10", c2);
            r1 && r2
        }
        let seeds = [
            InputValues::new().with("a", 0).with("b", 0),
            InputValues::new().with("a", 20).with("b", 0),
        ];
        let mut p1 = program;
        let mut p2 = program;
        let r_full = full.explore(&mut p1, &seeds);
        let r_pruned = pruned.explore(&mut p2, &seeds);
        assert!(r_pruned.stats.runs <= r_full.stats.runs);
        // Both cover every direction of both sites.
        assert_eq!(r_pruned.coverage.complete_sites(), 2);
        assert_eq!(r_full.coverage.complete_sites(), 2);
    }

    #[test]
    fn aggregate_constraints_grow_across_runs() {
        // The paper: "Updating the aggregate set is important for achieving
        // full coverage, since the previous runs might not have reached all
        // branches". The nested branch only exists on the x>100 path; it
        // must still be discovered starting from x=5.
        let engine = ConcolicEngine::new();
        let seeds = [InputValues::new().with("x", 5).with("y", 0)];
        let mut program = figure1_program;
        let result = engine.explore(&mut program, &seeds);
        // Site "p2" is only reachable after negating "p1"; coverage proves
        // the aggregate set was extended with constraints from later runs.
        assert_eq!(result.coverage.site_count(), 2);
    }
}
