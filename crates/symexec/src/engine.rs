//! The concolic execution engine.
//!
//! The engine drives the loop at the heart of DiCE (Figure 1 of the paper):
//!
//! 1. execute the program under test with a concrete input, recording the
//!    branch constraints along the executed path;
//! 2. pick a recorded branch (according to the search strategy) and ask the
//!    solver for an input that satisfies the path prefix plus the *negated*
//!    branch predicate;
//! 3. execute the program with the generated input, record its path, update
//!    the aggregate constraint/coverage set, and repeat until the path
//!    budget is exhausted or no unexplored branches remain.
//!
//! The program under test implements [`SymbolicProgram`]; in DiCE it is the
//! BGP UPDATE handler executing over a clone of the node checkpoint.
//!
//! # Batched worklist mode
//!
//! By default the engine runs steps 2–3 as a *batched worklist* rather
//! than strictly one candidate at a time: it drains a wave of independent
//! candidates from the worklist, groups them by originating run, solves
//! each group incrementally against its shared path prefix
//! ([`dice_solver::IncrementalSolver`]) on worker threads, and overlaps
//! that solving with concrete execution — solved inputs are executed on
//! the main thread, in wave order, while later candidates are still being
//! solved. Runs, coverage and per-candidate engine counters are identical
//! to the sequential loop (`EngineConfig::batch_size == 0`); only
//! wall-clock time and the *solver-internal* statistics differ (the
//! batched mode may solve a candidate whose result the sequential loop
//! would have skipped as a duplicate before solving — the result is
//! discarded, and the engine-level skip counters match).

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use dice_solver::{IncrementalSolver, Solver, SolverConfig, SolverStats, Verdict};

use crate::context::ExecCtx;
use crate::coverage::Coverage;
use crate::input::InputValues;
use crate::path::{ExecTrace, PathId};
use crate::strategy::{Candidate, SearchStrategy, Worklist};

/// A program that can be executed concolically.
///
/// Implementations create their symbolic inputs through the provided
/// [`ExecCtx`] (typically by calling `ctx.symbolic_u32(name, value)` with
/// values taken from `input`), branch through [`ExecCtx::branch`] /
/// [`ExecCtx::branch_labeled`], and return an application-level outcome
/// that fault checkers can inspect.
pub trait SymbolicProgram {
    /// Application-level outcome of one execution.
    type Output;

    /// Executes the program once with the given concrete input.
    fn run(&mut self, ctx: &mut ExecCtx, input: &InputValues) -> Self::Output;
}

impl<F, O> SymbolicProgram for F
where
    F: FnMut(&mut ExecCtx, &InputValues) -> O,
{
    type Output = O;

    fn run(&mut self, ctx: &mut ExecCtx, input: &InputValues) -> O {
        self(ctx, input)
    }
}

/// Configuration of the exploration loop.
///
/// `#[non_exhaustive]`: construct via [`EngineConfig::default`] and the
/// `with_*` builder methods so future fields are not breaking changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Maximum number of program executions (including seed runs).
    pub max_runs: usize,
    /// Maximum number of branches recorded per run.
    pub max_branches_per_run: usize,
    /// Maximum number of negation candidates taken from a single run
    /// (0 means unlimited).
    pub max_candidates_per_run: usize,
    /// Search strategy for candidate selection.
    pub strategy: SearchStrategy,
    /// Solver configuration.
    pub solver: SolverConfig,
    /// If true, skip negation candidates whose target `(site, direction)`
    /// is already covered. This trades exhaustive path coverage for speed.
    ///
    /// Pruning consults coverage at pop time, which the batched worklist
    /// cannot replay exactly; enabling it forces the sequential loop.
    pub prune_covered_directions: bool,
    /// Maximum number of candidates drained from the worklist per wave in
    /// the batched worklist mode. `0` disables batching entirely and runs
    /// the sequential negate-solve-execute loop.
    ///
    /// Only [`SearchStrategy::Generational`] pops are order-stable under
    /// batching (see [`SearchStrategy::batchable`]); configurations with
    /// other strategies fall back to the sequential loop regardless of
    /// this setting.
    pub batch_size: usize,
    /// Worker threads solving candidate groups in batched mode; the main
    /// thread concurrently executes solved inputs. `0` uses the machine's
    /// available parallelism; the count is never higher than the number of
    /// candidate groups in a wave.
    pub solver_workers: usize,
}

/// Resolves a configured core count: `0` (the codebase-wide "all cores"
/// convention) becomes the machine's available parallelism, anything else
/// passes through.
fn resolve_cores(configured: usize) -> usize {
    match configured {
        0 => std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        n => n,
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_runs: 256,
            max_branches_per_run: 10_000,
            max_candidates_per_run: 0,
            strategy: SearchStrategy::Generational,
            solver: SolverConfig::default(),
            prune_covered_directions: false,
            batch_size: 16,
            solver_workers: 1,
        }
    }
}

impl EngineConfig {
    /// Sets the maximum number of program executions (including seeds).
    pub fn with_max_runs(mut self, max_runs: usize) -> Self {
        self.max_runs = max_runs;
        self
    }

    /// Sets the maximum number of branches recorded per run.
    pub fn with_max_branches_per_run(mut self, max: usize) -> Self {
        self.max_branches_per_run = max;
        self
    }

    /// Sets the maximum number of negation candidates taken from a single
    /// run (0 means unlimited).
    pub fn with_max_candidates_per_run(mut self, max: usize) -> Self {
        self.max_candidates_per_run = max;
        self
    }

    /// Sets the search strategy for candidate selection.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the solver configuration.
    pub fn with_solver(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// Enables or disables skipping candidates whose target direction is
    /// already covered (forces the sequential inner loop when enabled).
    pub fn with_prune_covered_directions(mut self, prune: bool) -> Self {
        self.prune_covered_directions = prune;
        self
    }

    /// Sets the batched-worklist wave size (0 disables batching and runs
    /// the sequential negate-solve-execute loop).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the number of worker threads solving candidate groups in
    /// batched mode (0 uses the machine's available parallelism).
    pub fn with_solver_workers(mut self, workers: usize) -> Self {
        self.solver_workers = workers;
        self
    }

    /// Resolves `solver_workers` against a shared core budget and returns
    /// the capped configuration: an orchestrator running many explorations
    /// concurrently (per observed input, per topology node) hands each
    /// engine a slice of the machine so nested parallelism never
    /// oversubscribes. A `budget` of 0 means the machine's available
    /// parallelism (the codebase-wide "0 = all cores" convention);
    /// `solver_workers == 0` (auto) resolves to the budget itself. The
    /// result is always at least one worker, and the cap only changes
    /// thread counts — explorations are report-identical for every worker
    /// count.
    pub fn with_core_budget(mut self, budget: usize) -> Self {
        let budget = resolve_cores(budget);
        self.solver_workers = match self.solver_workers {
            0 => budget,
            n => n.min(budget),
        };
        self
    }
}

/// One completed execution: its trace, its output, and provenance.
#[derive(Debug, Clone)]
pub struct RunRecord<O> {
    /// The execution trace (arena, branches, inputs).
    pub trace: ExecTrace,
    /// The application-level output of the run.
    pub output: O,
    /// `None` for seed runs; otherwise `(run, branch)` that was negated to
    /// generate this run's input.
    pub parent: Option<(usize, usize)>,
    /// Exploration generation (seeds are 0).
    pub generation: u32,
}

/// Counters describing one exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExplorationStats {
    /// Number of program executions performed.
    pub runs: usize,
    /// Number of negation candidates generated.
    pub candidates: usize,
    /// Of those, candidates targeting *policy* branch sites (filter arms).
    pub policy_candidates: usize,
    /// Candidates skipped because their target path had already been tried.
    pub skipped_duplicates: usize,
    /// Candidates skipped by coverage pruning.
    pub skipped_covered: usize,
    /// Solver queries that produced a new input.
    pub solver_sat: usize,
    /// Solver queries proving the other side infeasible.
    pub solver_unsat: usize,
    /// Solver queries that timed out / were undecided.
    pub solver_unknown: usize,
    /// Worklist waves processed by the batched engine (0 when sequential).
    pub waves: usize,
    /// Total wall-clock time of the exploration, in nanoseconds.
    pub elapsed_ns: u64,
}

impl ExplorationStats {
    /// Total exploration wall-clock time.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_ns)
    }
}

/// The result of an exploration.
#[derive(Debug)]
pub struct Exploration<O> {
    /// All runs, in execution order (seed runs first).
    pub runs: Vec<RunRecord<O>>,
    /// Aggregate branch coverage.
    pub coverage: Coverage,
    /// Exploration counters.
    pub stats: ExplorationStats,
    /// Cumulative solver statistics.
    pub solver_stats: SolverStats,
    /// Wall-clock latency distribution of batched solver waves (one sample
    /// per wave; empty for the sequential loop). Purely observational:
    /// kept out of [`ExplorationStats`] so the batched-vs-sequential
    /// equivalence contract stays a field-for-field comparison.
    pub wave_latency: dice_obs::Histogram,
}

impl<O> Exploration<O> {
    /// Iterates over the outputs of all runs.
    pub fn outputs(&self) -> impl Iterator<Item = &O> {
        self.runs.iter().map(|r| &r.output)
    }

    /// Number of distinct paths executed.
    pub fn distinct_paths(&self) -> usize {
        let ids: HashSet<PathId> = self.runs.iter().map(|r| r.trace.path_id()).collect();
        ids.len()
    }

    /// Consumes the exploration and returns every run's application-level
    /// output, preserving execution order (seed runs first, generated runs
    /// in the order they were committed — identical between the batched
    /// and sequential inner loops).
    ///
    /// This is the plumbing surface for *sequence-aware* fault checkers:
    /// outputs carry whatever the program recorded per run (in DiCE, the
    /// intercepted message sequence), and the order they are returned in is
    /// the order the round executed them.
    pub fn into_outputs(self) -> Vec<O> {
        self.runs.into_iter().map(|r| r.output).collect()
    }

    /// The inputs of all non-seed runs, i.e. the inputs the engine derived
    /// by negating branch predicates. In DiCE these become the exploratory
    /// messages sent to the cloned checkpoint.
    pub fn generated_inputs(&self) -> Vec<&InputValues> {
        self.runs
            .iter()
            .filter(|r| r.parent.is_some())
            .map(|r| &r.trace.input)
            .collect()
    }
}

/// One drained worklist entry: the candidate plus the path identity its
/// negation targets (already recorded in the attempted set).
#[derive(Debug, Clone, Copy)]
struct WaveItem {
    candidate: Candidate,
    target: PathId,
}

/// A group of same-run wave candidates together with the run's trace,
/// lent to a solver worker for the duration of the wave.
struct SolveUnit {
    run_index: usize,
    /// `(wave position, candidate)`, sorted by branch index so the shared
    /// prefix is asserted monotonically.
    items: Vec<(usize, Candidate)>,
    trace: ExecTrace,
}

/// A solver worker's answer for one wave position.
enum SolveMsg {
    /// The negation is satisfiable; execute this input.
    Sat(InputValues),
    Unsat,
    Unknown,
}

/// The mutable exploration state threaded through both engine loops: the
/// run list, aggregate coverage, counters, the candidate worklist and the
/// set of attempted path identities.
struct ExplorationState<O> {
    runs: Vec<RunRecord<O>>,
    coverage: Coverage,
    stats: ExplorationStats,
    worklist: Worklist,
    /// Path identities we have executed or already queued a query for.
    attempted: HashSet<PathId>,
}

impl<O> ExplorationState<O> {
    fn new(strategy: SearchStrategy) -> Self {
        ExplorationState {
            runs: Vec::new(),
            coverage: Coverage::new(),
            stats: ExplorationStats::default(),
            worklist: Worklist::new(strategy),
            attempted: HashSet::new(),
        }
    }

    /// Finalizes counters and packages the exploration result.
    fn finish(
        mut self,
        started: Instant,
        solver_stats: SolverStats,
        wave_latency: dice_obs::Histogram,
    ) -> Exploration<O> {
        self.stats.runs = self.runs.len();
        self.stats.elapsed_ns = started.elapsed().as_nanos() as u64;
        Exploration {
            runs: self.runs,
            coverage: self.coverage,
            stats: self.stats,
            solver_stats,
            wave_latency,
        }
    }
}

/// The concolic execution engine.
#[derive(Debug, Default)]
pub struct ConcolicEngine {
    config: EngineConfig,
}

impl ConcolicEngine {
    /// Creates an engine with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine with the given configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        ConcolicEngine { config }
    }

    /// Returns the engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Explores the program starting from the given seed inputs.
    ///
    /// Each seed is executed once; every symbolic branch observed becomes a
    /// negation candidate. The engine then repeatedly selects candidates,
    /// solves for inputs on the unexplored side, and executes them, until
    /// `max_runs` executions have been performed or the worklist is empty.
    ///
    /// With [`EngineConfig::batch_size`] > 0 (the default) candidates are
    /// processed by the batched worklist pipeline — grouped by originating
    /// run, solved incrementally against the shared path prefix, and
    /// overlapped with execution — producing the same runs, coverage and
    /// engine counters as the sequential loop.
    pub fn explore<P: SymbolicProgram>(
        &self,
        program: &mut P,
        seeds: &[InputValues],
    ) -> Exploration<P::Output> {
        // Batching requires a strategy whose pop order survives deferred
        // integration; coverage pruning additionally consults state the
        // wave pipeline cannot replay. Everything else gains nothing from
        // single-candidate waves (no shared prefix, per-wave thread setup),
        // so those configurations run the plain sequential loop.
        if self.config.batch_size == 0
            || self.config.prune_covered_directions
            || !self.config.strategy.batchable()
        {
            self.explore_sequential(program, seeds)
        } else {
            self.explore_batched(program, seeds)
        }
    }

    /// The strictly sequential negate-solve-execute loop: one candidate at
    /// a time, each solved from scratch. Reference semantics for the
    /// batched mode, and the only mode supporting coverage pruning.
    fn explore_sequential<P: SymbolicProgram>(
        &self,
        program: &mut P,
        seeds: &[InputValues],
    ) -> Exploration<P::Output> {
        let start = Instant::now();
        let mut solver = Solver::with_config(self.config.solver);
        let mut state = ExplorationState::new(self.config.strategy);

        self.execute_seeds(program, seeds, &mut state);

        // Main negate-solve-execute loop.
        while state.runs.len() < self.config.max_runs {
            let Some(candidate) = state.worklist.pop(&state.coverage) else {
                break;
            };
            if self.config.prune_covered_directions
                && state
                    .coverage
                    .direction_covered(candidate.site, !candidate.taken)
            {
                state.stats.skipped_covered += 1;
                continue;
            }
            let target = state.runs[candidate.run_index]
                .trace
                .negated_path_id(candidate.branch_index);
            if !state.attempted.insert(target) {
                state.stats.skipped_duplicates += 1;
                continue;
            }
            // Build and solve the negation query against the originating
            // run's arena.
            let (query, seed_model) = {
                let run = &mut state.runs[candidate.run_index];
                let query = run.trace.negation_query(candidate.branch_index);
                (query, run.trace.concrete.clone())
            };
            let reused_before = solver.stats().assertions_reused;
            let verdict = {
                let run = &mut state.runs[candidate.run_index];
                solver.solve(&mut run.trace.arena, &query, Some(&seed_model))
            };
            if candidate.is_policy {
                let reused = solver.stats().assertions_reused - reused_before;
                let stats = solver.stats_mut();
                stats.policy_queries += 1;
                stats.policy_assertions_reused += reused;
            }
            match verdict {
                Verdict::Sat(model) => {
                    state.stats.solver_sat += 1;
                    let input = {
                        let run = &state.runs[candidate.run_index];
                        InputValues::from_model(&model, &run.trace.var_map, &run.trace.input)
                    };
                    let generation = state.runs[candidate.run_index].generation + 1;
                    let record = self.execute(
                        program,
                        input,
                        Some((candidate.run_index, candidate.branch_index)),
                        generation,
                    );
                    self.integrate(record, &mut state);
                }
                Verdict::Unsat => state.stats.solver_unsat += 1,
                Verdict::Unknown => state.stats.solver_unknown += 1,
            }
        }

        state.finish(start, *solver.stats(), dice_obs::Histogram::new())
    }

    /// The batched worklist loop: drain a wave, solve candidate groups
    /// incrementally on worker threads, execute solved inputs on this
    /// thread in wave order while later candidates are still solving.
    fn explore_batched<P: SymbolicProgram>(
        &self,
        program: &mut P,
        seeds: &[InputValues],
    ) -> Exploration<P::Output> {
        let start = Instant::now();
        let mut state = ExplorationState::new(self.config.strategy);
        let mut solver_stats = SolverStats::new();
        let mut wave_latency = dice_obs::Histogram::new();

        self.execute_seeds(program, seeds, &mut state);

        while state.runs.len() < self.config.max_runs {
            let budget = self.config.max_runs - state.runs.len();
            let wave = self.drain_wave(&mut state, budget);
            if wave.is_empty() {
                break;
            }
            state.stats.waves += 1;
            let mut wave_span = dice_obs::span("symexec", "symexec.wave");
            wave_span.set_detail(wave.len() as u64);
            let wave_started = Instant::now();
            self.solve_and_commit(program, &wave, &mut state, &mut solver_stats);
            wave_latency.record_duration(wave_started.elapsed());
        }

        state.finish(start, solver_stats, wave_latency)
    }

    /// Executes the seed inputs (the paper's "previously observed inputs").
    fn execute_seeds<P: SymbolicProgram>(
        &self,
        program: &mut P,
        seeds: &[InputValues],
        state: &mut ExplorationState<P::Output>,
    ) {
        for seed in seeds {
            if state.runs.len() >= self.config.max_runs {
                break;
            }
            let record = self.execute(program, seed.clone(), None, 0);
            self.integrate(record, state);
        }
    }

    /// Drains the next wave of candidates: up to `budget` (and at most
    /// [`EngineConfig::batch_size`]) entries the strategy would pop
    /// consecutively regardless of interleaved executions, with
    /// already-attempted targets filtered out exactly as the sequential
    /// loop does at pop time.
    fn drain_wave<O>(&self, state: &mut ExplorationState<O>, budget: usize) -> Vec<WaveItem> {
        // `explore` only routes batchable strategies here.
        debug_assert!(self.config.strategy.batchable());
        let limit = budget.min(self.config.batch_size);
        let mut wave: Vec<WaveItem> = Vec::new();
        while wave.len() < limit {
            let first = wave.first().map(|w| w.candidate);
            let popped = state.worklist.pop_if(&state.coverage, |c| match &first {
                None => true,
                Some(f) => self.config.strategy.same_wave(f, c),
            });
            let Some(candidate) = popped else {
                break;
            };
            let target = state.runs[candidate.run_index]
                .trace
                .negated_path_id(candidate.branch_index);
            if !state.attempted.insert(target) {
                state.stats.skipped_duplicates += 1;
                continue;
            }
            wave.push(WaveItem { candidate, target });
        }
        wave
    }

    /// Solves a wave's candidates on worker threads (one incremental
    /// session per originating run, shared prefix asserted once) and
    /// commits the results — executing satisfiable inputs — on the current
    /// thread, in wave order, while solving continues.
    fn solve_and_commit<P: SymbolicProgram>(
        &self,
        program: &mut P,
        wave: &[WaveItem],
        state: &mut ExplorationState<P::Output>,
        solver_stats: &mut SolverStats,
    ) {
        // Group wave positions by originating run; each group becomes one
        // incremental solver session over that run's trace.
        let mut grouped: BTreeMap<usize, Vec<(usize, Candidate)>> = BTreeMap::new();
        for (pos, item) in wave.iter().enumerate() {
            grouped
                .entry(item.candidate.run_index)
                .or_default()
                .push((pos, item.candidate));
        }
        // Lend each group its originating trace for the duration of the
        // wave; commits below only append new runs, never touch these.
        let units: Vec<Mutex<Option<SolveUnit>>> = grouped
            .into_iter()
            .map(|(run_index, mut items)| {
                items.sort_by_key(|(_, c)| c.branch_index);
                let trace = std::mem::replace(&mut state.runs[run_index].trace, ExecTrace::empty());
                Mutex::new(Some(SolveUnit {
                    run_index,
                    items,
                    trace,
                }))
            })
            .collect();

        let workers = self.effective_solver_workers(units.len());
        let next_unit = AtomicUsize::new(0);
        let solver_config = self.config.solver;
        let (tx, rx) = mpsc::channel::<(usize, SolveMsg)>();

        let mut returned: Vec<(usize, ExecTrace, SolverStats)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let tx = tx.clone();
                    let (next_unit, units) = (&next_unit, &units);
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let i = next_unit.fetch_add(1, Ordering::Relaxed);
                            let Some(unit) = units.get(i) else {
                                return done;
                            };
                            let unit = unit
                                .lock()
                                .expect("solve unit lock")
                                .take()
                                .expect("solve unit claimed exactly once");
                            done.push(solve_unit(solver_config, unit, &tx));
                        }
                    })
                })
                .collect();
            drop(tx);

            // Commit pump: results arrive in solver-completion order but
            // are applied strictly in wave order, so exploration state
            // evolves exactly as in the sequential loop.
            let mut pending: Vec<Option<SolveMsg>> = (0..wave.len()).map(|_| None).collect();
            let mut next_commit = 0usize;
            let mut wave_paths: HashSet<PathId> = HashSet::new();
            for (pos, msg) in rx {
                pending[pos] = Some(msg);
                while next_commit < wave.len() {
                    let Some(ready) = pending[next_commit].take() else {
                        break;
                    };
                    self.commit(program, &wave[next_commit], ready, state, &mut wave_paths);
                    next_commit += 1;
                }
            }

            for handle in handles {
                returned.extend(handle.join().expect("solver worker panicked"));
            }
        });

        // Hand the lent traces back and fold in the sessions' statistics.
        for (run_index, trace, unit_stats) in returned {
            state.runs[run_index].trace = trace;
            solver_stats.merge(&unit_stats);
        }
    }

    /// Applies one wave entry's solver result, replicating the sequential
    /// loop's pop-time checks against the now-current exploration state.
    fn commit<P: SymbolicProgram>(
        &self,
        program: &mut P,
        item: &WaveItem,
        msg: SolveMsg,
        state: &mut ExplorationState<P::Output>,
        wave_paths: &mut HashSet<PathId>,
    ) {
        // The sequential loop would not even have popped this candidate
        // once the run budget filled.
        if state.runs.len() >= self.config.max_runs {
            return;
        }
        // A run executed earlier in this wave may have claimed the target
        // path; the sequential loop skips such candidates before solving.
        // The (already computed) result is discarded and, like there, does
        // not count as a solver outcome.
        if wave_paths.contains(&item.target) {
            state.stats.skipped_duplicates += 1;
            return;
        }
        match msg {
            SolveMsg::Sat(input) => {
                state.stats.solver_sat += 1;
                let record = self.execute(
                    program,
                    input,
                    Some((item.candidate.run_index, item.candidate.branch_index)),
                    item.candidate.generation + 1,
                );
                wave_paths.insert(record.trace.path_id());
                self.integrate(record, state);
            }
            SolveMsg::Unsat => state.stats.solver_unsat += 1,
            SolveMsg::Unknown => state.stats.solver_unknown += 1,
        }
    }

    /// The solver worker count for a wave of `unit_count` candidate
    /// groups: the configured count, or available parallelism when the
    /// configuration says `0`, never more threads than groups.
    fn effective_solver_workers(&self, unit_count: usize) -> usize {
        resolve_cores(self.config.solver_workers)
            .min(unit_count)
            .max(1)
    }

    /// Executes the program once and wraps the result in a [`RunRecord`].
    fn execute<P: SymbolicProgram>(
        &self,
        program: &mut P,
        input: InputValues,
        parent: Option<(usize, usize)>,
        generation: u32,
    ) -> RunRecord<P::Output> {
        let mut ctx = ExecCtx::new().with_max_branches(self.config.max_branches_per_run);
        let output = program.run(&mut ctx, &input);
        let trace = ExecTrace::from_ctx(ctx, input);
        RunRecord {
            trace,
            output,
            parent,
            generation,
        }
    }

    /// Adds a completed run to the exploration state: updates coverage,
    /// marks its path as attempted and enqueues its negation candidates.
    fn integrate<O>(&self, record: RunRecord<O>, state: &mut ExplorationState<O>) {
        let run_index = state.runs.len();
        // Policy sites are registered (denominator) independently of which
        // branches the run actually executed, so never-reached filter arms
        // still show up as uncovered in the policy-coverage report.
        for &site in &record.trace.policy_sites {
            state.coverage.register_policy_site(site);
            if let Some(label) = record.trace.site_labels.get(&site) {
                state.coverage.record_label(site, label);
            }
        }
        for b in &record.trace.branches {
            state.coverage.record(b.site, b.taken);
            if let Some(label) = record.trace.site_labels.get(&b.site) {
                state.coverage.record_label(b.site, label);
            }
        }
        state.attempted.insert(record.trace.path_id());
        let candidate_count = record.trace.branches.len();
        let limit = if self.config.max_candidates_per_run == 0 {
            candidate_count
        } else {
            self.config.max_candidates_per_run.min(candidate_count)
        };
        for (branch_index, b) in record.trace.branches.iter().enumerate().take(limit) {
            let is_policy = record.trace.policy_sites.contains(&b.site);
            state.worklist.push(Candidate {
                run_index,
                branch_index,
                generation: record.generation,
                site: b.site,
                taken: b.taken,
                is_policy,
            });
            state.stats.candidates += 1;
            if is_policy {
                state.stats.policy_candidates += 1;
            }
        }
        state.runs.push(record);
    }
}

/// Solves one candidate group as a batched incremental session: the shared
/// path prefix is asserted (and propagated) once, each candidate's negated
/// branch solved in its own push/pop frame. Results stream to the commit
/// pump as they are produced.
fn solve_unit(
    config: SolverConfig,
    mut unit: SolveUnit,
    tx: &mpsc::Sender<(usize, SolveMsg)>,
) -> (usize, ExecTrace, SolverStats) {
    let mut session = IncrementalSolver::with_config(config);
    let seed_model = unit.trace.concrete.clone();
    let mut next_branch = 0usize;
    for &(pos, candidate) in &unit.items {
        let index = candidate.branch_index;
        // Extend the shared prefix up to (excluding) the negated branch.
        while next_branch < index {
            let branch = unit.trace.branches[next_branch];
            let taken = branch.taken_constraint(&mut unit.trace.arena);
            session.assert_term(&mut unit.trace.arena, taken);
            next_branch += 1;
        }
        session.push(&unit.trace.arena);
        let branch = unit.trace.branches[index];
        let negated = branch.negated_constraint(&mut unit.trace.arena);
        session.assert_term(&mut unit.trace.arena, negated);
        let reused_before = session.stats().assertions_reused;
        let verdict = session.check(&unit.trace.arena, Some(&seed_model));
        if candidate.is_policy {
            let reused = session.stats().assertions_reused - reused_before;
            let stats = session.stats_mut();
            stats.policy_queries += 1;
            stats.policy_assertions_reused += reused;
        }
        session.pop();

        let msg = match verdict {
            Verdict::Sat(model) => SolveMsg::Sat(InputValues::from_model(
                &model,
                &unit.trace.var_map,
                &unit.trace.input,
            )),
            Verdict::Unsat => SolveMsg::Unsat,
            Verdict::Unknown => SolveMsg::Unknown,
        };
        if tx.send((pos, msg)).is_err() {
            // The engine stopped listening (it is unwinding); no point
            // solving the rest of the group.
            break;
        }
    }
    (unit.run_index, unit.trace, *session.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The three-branch sample program from Figure 1 of the paper: the
    /// engine should discover all reachable paths by negating predicates.
    fn figure1_program(ctx: &mut ExecCtx, input: &InputValues) -> &'static str {
        let x = ctx.symbolic_u32("x", input.get_or("x", 0) as u32);
        let y = ctx.symbolic_u32("y", input.get_or("y", 0) as u32);
        let c1 = x.gt_const(100, ctx);
        if ctx.branch_labeled("p1", c1) {
            let c2 = y.eq_const(7, ctx);
            if ctx.branch_labeled("p2", c2) {
                "deep"
            } else {
                "mid"
            }
        } else {
            "shallow"
        }
    }

    #[test]
    fn explores_all_paths_of_figure1() {
        let engine = ConcolicEngine::new();
        let seeds = [InputValues::new().with("x", 5).with("y", 0)];
        let mut program = figure1_program;
        let result = engine.explore(&mut program, &seeds);
        let outputs: HashSet<&str> = result.outputs().copied().collect();
        assert!(outputs.contains("shallow"));
        assert!(outputs.contains("mid"));
        assert!(outputs.contains("deep"));
        assert!(result.distinct_paths() >= 3);
        assert_eq!(result.coverage.complete_sites(), 2);
        assert!(result.stats.solver_sat >= 2);
    }

    #[test]
    fn respects_run_budget() {
        let config = EngineConfig {
            max_runs: 2,
            ..Default::default()
        };
        let engine = ConcolicEngine::with_config(config);
        let seeds = [InputValues::new().with("x", 5).with("y", 0)];
        let mut program = figure1_program;
        let result = engine.explore(&mut program, &seeds);
        assert_eq!(result.runs.len(), 2);
        assert_eq!(result.stats.runs, 2);
    }

    #[test]
    fn unsat_branches_are_counted_not_explored() {
        // The second branch is infeasible to negate: x > 100 && x <= 100.
        fn program(ctx: &mut ExecCtx, input: &InputValues) -> u32 {
            let x = ctx.symbolic_u32("x", input.get_or("x", 0) as u32);
            let c1 = x.gt_const(100, ctx);
            if ctx.branch_labeled("outer", c1) {
                let c2 = x.gt_const(100, ctx);
                if ctx.branch_labeled("inner-dup", c2) {
                    2
                } else {
                    1
                }
            } else {
                0
            }
        }
        let engine = ConcolicEngine::new();
        let seeds = [InputValues::new().with("x", 200)];
        let mut p = program;
        let result = engine.explore(&mut p, &seeds);
        // The inner branch negation (x <= 100 while x > 100) must be unsat.
        assert!(result.stats.solver_unsat >= 1);
        let outputs: HashSet<u32> = result.outputs().copied().collect();
        assert!(outputs.contains(&2));
        assert!(outputs.contains(&0));
        assert!(!outputs.contains(&1));
    }

    #[test]
    fn into_outputs_preserves_execution_order() {
        let engine = ConcolicEngine::new();
        let seeds = [InputValues::new().with("x", 5).with("y", 0)];
        let mut program = figure1_program;
        let result = engine.explore(&mut program, &seeds);
        let by_ref: Vec<&str> = result.outputs().copied().collect();
        let owned = result.into_outputs();
        assert_eq!(owned, by_ref, "ownership transfer keeps run order");
        assert_eq!(owned.first().copied(), Some("shallow"), "seed runs first");
    }

    #[test]
    fn generated_inputs_differ_from_seed() {
        let engine = ConcolicEngine::new();
        let seed = InputValues::new().with("x", 5).with("y", 0);
        let mut program = figure1_program;
        let result = engine.explore(&mut program, std::slice::from_ref(&seed));
        let generated = result.generated_inputs();
        assert!(!generated.is_empty());
        assert!(generated.iter().any(|g| **g != seed));
    }

    #[test]
    fn closure_with_state_can_be_explored() {
        let mut observed = Vec::new();
        {
            let mut program = |ctx: &mut ExecCtx, input: &InputValues| {
                let v = ctx.symbolic_u32("v", input.get_or("v", 0) as u32);
                let c = v.eq_const(0xdead, ctx);
                let hit = ctx.branch_labeled("magic", c);
                observed.push(hit);
                hit
            };
            let engine = ConcolicEngine::new();
            let result = engine.explore(&mut program, &[InputValues::new().with("v", 0)]);
            assert!(result.outputs().any(|&o| o));
        }
        assert!(observed.iter().any(|&b| b));
    }

    #[test]
    fn pruning_reduces_work() {
        let full = ConcolicEngine::with_config(EngineConfig {
            prune_covered_directions: false,
            ..Default::default()
        });
        let pruned = ConcolicEngine::with_config(EngineConfig {
            prune_covered_directions: true,
            ..Default::default()
        });
        // Several runs hit the same branch sites.
        fn program(ctx: &mut ExecCtx, input: &InputValues) -> bool {
            let a = ctx.symbolic_u32("a", input.get_or("a", 0) as u32);
            let b = ctx.symbolic_u32("b", input.get_or("b", 0) as u32);
            let c1 = a.gt_const(10, ctx);
            let c2 = b.gt_const(10, ctx);
            let r1 = ctx.branch_labeled("a>10", c1);
            let r2 = ctx.branch_labeled("b>10", c2);
            r1 && r2
        }
        let seeds = [
            InputValues::new().with("a", 0).with("b", 0),
            InputValues::new().with("a", 20).with("b", 0),
        ];
        let mut p1 = program;
        let mut p2 = program;
        let r_full = full.explore(&mut p1, &seeds);
        let r_pruned = pruned.explore(&mut p2, &seeds);
        assert!(r_pruned.stats.runs <= r_full.stats.runs);
        // Both cover every direction of both sites.
        assert_eq!(r_pruned.coverage.complete_sites(), 2);
        assert_eq!(r_full.coverage.complete_sites(), 2);
    }

    #[test]
    fn aggregate_constraints_grow_across_runs() {
        // The paper: "Updating the aggregate set is important for achieving
        // full coverage, since the previous runs might not have reached all
        // branches". The nested branch only exists on the x>100 path; it
        // must still be discovered starting from x=5.
        let engine = ConcolicEngine::new();
        let seeds = [InputValues::new().with("x", 5).with("y", 0)];
        let mut program = figure1_program;
        let result = engine.explore(&mut program, &seeds);
        // Site "p2" is only reachable after negating "p1"; coverage proves
        // the aggregate set was extended with constraints from later runs.
        assert_eq!(result.coverage.site_count(), 2);
    }

    #[test]
    fn batched_mode_uses_incremental_sessions() {
        let engine = ConcolicEngine::new();
        let seeds = [InputValues::new().with("x", 5).with("y", 0)];
        let mut program = figure1_program;
        let result = engine.explore(&mut program, &seeds);
        assert!(result.stats.waves > 0, "default engine batches waves");
        assert!(
            result.solver_stats.incremental_queries > 0,
            "candidates are solved through incremental sessions"
        );
    }

    #[test]
    fn sequential_mode_has_no_waves() {
        let engine = ConcolicEngine::with_config(EngineConfig {
            batch_size: 0,
            ..Default::default()
        });
        let seeds = [InputValues::new().with("x", 5).with("y", 0)];
        let mut program = figure1_program;
        let result = engine.explore(&mut program, &seeds);
        assert_eq!(result.stats.waves, 0);
        assert_eq!(result.solver_stats.incremental_queries, 0);
    }

    #[test]
    fn solver_worker_count_is_bounded() {
        let auto = ConcolicEngine::new();
        assert_eq!(auto.effective_solver_workers(0), 1);
        assert_eq!(auto.effective_solver_workers(1), 1);
        let wide = ConcolicEngine::with_config(EngineConfig {
            solver_workers: 8,
            ..Default::default()
        });
        assert_eq!(wide.effective_solver_workers(3), 3);
        let unlimited = ConcolicEngine::with_config(EngineConfig {
            solver_workers: 0,
            ..Default::default()
        });
        assert!(unlimited.effective_solver_workers(1_000) >= 1);
    }

    #[test]
    fn core_budget_caps_solver_workers() {
        // Explicit budgets cap explicit worker counts and resolve auto (0).
        let capped = EngineConfig::default()
            .with_solver_workers(8)
            .with_core_budget(2);
        assert_eq!(capped.solver_workers, 2);
        let auto_workers = EngineConfig::default()
            .with_solver_workers(0)
            .with_core_budget(3);
        assert_eq!(auto_workers.solver_workers, 3);
        // Budget 0 follows the codebase-wide "0 = all cores" convention.
        let all_cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        let auto_budget = EngineConfig::default()
            .with_solver_workers(0)
            .with_core_budget(0);
        assert_eq!(auto_budget.solver_workers, all_cores);
        // Never below one worker.
        assert_eq!(
            EngineConfig::default()
                .with_solver_workers(1)
                .with_core_budget(1)
                .solver_workers,
            1
        );
    }
}
