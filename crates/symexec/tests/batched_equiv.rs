//! Sequential-vs-batched engine equivalence.
//!
//! The batched worklist engine must produce exactly the runs the
//! sequential negate-solve-execute loop produces — same inputs, same
//! paths, same provenance, in the same order — for any batch size and
//! solver worker count. Coverage and fault-relevant outputs follow from
//! that, but every dimension is asserted explicitly here.

use std::collections::HashSet;

use dice_symexec::{
    ConcolicEngine, EngineConfig, ExecCtx, Exploration, InputValues, SearchStrategy,
};

/// Figure 1 of the paper: nested branches, three reachable paths.
fn figure1(ctx: &mut ExecCtx, input: &InputValues) -> u32 {
    let x = ctx.symbolic_u32("x", input.get_or("x", 0) as u32);
    let y = ctx.symbolic_u32("y", input.get_or("y", 0) as u32);
    let c1 = x.gt_const(100, ctx);
    if ctx.branch_labeled("p1", c1) {
        let c2 = y.eq_const(7, ctx);
        if ctx.branch_labeled("p2", c2) {
            2
        } else {
            1
        }
    } else {
        0
    }
}

/// A deep comparison chain: every run enqueues many sibling candidates
/// sharing a long path prefix — the shape batched solving accelerates.
fn chain(ctx: &mut ExecCtx, input: &InputValues) -> u32 {
    let v = ctx.symbolic_u32("v", input.get_or("v", 0) as u32);
    let mut crossed = 0u32;
    for step in 0..12u32 {
        let c = v.gt_const(step * 10, ctx);
        if ctx.branch_labeled(&format!("step{step}"), c) {
            crossed += 1;
        }
    }
    crossed
}

/// Re-merging paths plus an infeasible negation: exercises duplicate-target
/// skipping and unsat accounting, the edge cases of wave commit order.
fn remerge(ctx: &mut ExecCtx, input: &InputValues) -> u32 {
    let a = ctx.symbolic_u32("a", input.get_or("a", 0) as u32);
    let b = ctx.symbolic_u32("b", input.get_or("b", 0) as u32);
    let ca = a.gt_const(50, ctx);
    let cb = b.gt_const(50, ctx);
    let ra = ctx.branch_labeled("a>50", ca);
    let rb = ctx.branch_labeled("b>50", cb);
    // A duplicated predicate: its negation is infeasible on the taken side.
    let ca2 = a.gt_const(50, ctx);
    let dup = ctx.branch_labeled("a>50 again", ca2);
    u32::from(ra) + 2 * u32::from(rb) + 4 * u32::from(dup)
}

fn explore<P, O>(program: P, seeds: &[InputValues], config: EngineConfig) -> Exploration<O>
where
    P: FnMut(&mut ExecCtx, &InputValues) -> O,
{
    let mut program = program;
    ConcolicEngine::with_config(config).explore(&mut program, seeds)
}

/// Asserts that two explorations are observably identical: run for run,
/// candidate for candidate. Wall-clock and wave counters are exempt.
fn assert_equivalent<O: std::fmt::Debug + PartialEq>(
    sequential: &Exploration<O>,
    batched: &Exploration<O>,
    what: &str,
) {
    assert_eq!(
        sequential.runs.len(),
        batched.runs.len(),
        "{what}: run count"
    );
    for (i, (s, b)) in sequential.runs.iter().zip(batched.runs.iter()).enumerate() {
        assert_eq!(s.output, b.output, "{what}: output of run {i}");
        assert_eq!(s.parent, b.parent, "{what}: parent of run {i}");
        assert_eq!(s.generation, b.generation, "{what}: generation of run {i}");
        assert_eq!(
            s.trace.input, b.trace.input,
            "{what}: generated input of run {i}"
        );
        assert_eq!(
            s.trace.path_id(),
            b.trace.path_id(),
            "{what}: path of run {i}"
        );
    }
    assert_eq!(
        sequential.coverage.site_count(),
        batched.coverage.site_count(),
        "{what}: branch sites"
    );
    assert_eq!(
        sequential.coverage.complete_sites(),
        batched.coverage.complete_sites(),
        "{what}: complete sites"
    );
    let s = &sequential.stats;
    let b = &batched.stats;
    assert_eq!(s.runs, b.runs, "{what}: stats.runs");
    assert_eq!(s.candidates, b.candidates, "{what}: stats.candidates");
    assert_eq!(
        s.skipped_duplicates, b.skipped_duplicates,
        "{what}: stats.skipped_duplicates"
    );
    assert_eq!(
        s.skipped_covered, b.skipped_covered,
        "{what}: stats.skipped_covered"
    );
    assert_eq!(s.solver_sat, b.solver_sat, "{what}: stats.solver_sat");
    assert_eq!(s.solver_unsat, b.solver_unsat, "{what}: stats.solver_unsat");
    assert_eq!(
        s.solver_unknown, b.solver_unknown,
        "{what}: stats.solver_unknown"
    );
}

fn sequential_config() -> EngineConfig {
    EngineConfig::default().with_batch_size(0)
}

#[test]
fn figure1_is_identical_across_batch_sizes_and_workers() {
    let seeds = [InputValues::new().with("x", 5).with("y", 0)];
    let reference = explore(figure1, &seeds, sequential_config());
    for batch_size in [1, 2, 4, 16] {
        for solver_workers in [1, 3] {
            let batched = explore(
                figure1,
                &seeds,
                EngineConfig::default()
                    .with_batch_size(batch_size)
                    .with_solver_workers(solver_workers),
            );
            assert_equivalent(
                &reference,
                &batched,
                &format!("figure1 batch={batch_size} workers={solver_workers}"),
            );
        }
    }
    let outputs: HashSet<u32> = reference.outputs().copied().collect();
    assert_eq!(outputs, HashSet::from([0, 1, 2]));
}

#[test]
fn deep_chain_is_identical_and_batches_widely() {
    let seeds = [InputValues::new().with("v", 0)];
    let config = EngineConfig::default().with_max_runs(64);
    let reference = explore(chain, &seeds, config.with_batch_size(0));
    let batched = explore(
        chain,
        &seeds,
        config.with_batch_size(16).with_solver_workers(2),
    );
    assert_equivalent(&reference, &batched, "deep chain");
    assert!(batched.stats.waves > 1, "the chain spans several waves");
    assert!(
        batched.solver_stats.assertions_reused > 0,
        "sibling candidates reused the shared prefix"
    );
    // Every chain threshold was crossed somewhere.
    assert_eq!(reference.coverage.complete_sites(), 12);
}

#[test]
fn remerging_paths_and_unsat_negations_are_identical() {
    let seeds = [
        InputValues::new().with("a", 0).with("b", 0),
        InputValues::new().with("a", 100).with("b", 100),
    ];
    let reference = explore(remerge, &seeds, sequential_config());
    for batch_size in [1, 3, 16] {
        let batched = explore(
            remerge,
            &seeds,
            EngineConfig::default()
                .with_batch_size(batch_size)
                .with_solver_workers(2),
        );
        assert_equivalent(&reference, &batched, &format!("remerge batch={batch_size}"));
    }
    assert!(
        reference.stats.solver_unsat >= 1,
        "the duplicated predicate's negation is infeasible"
    );
    assert!(
        reference.stats.skipped_duplicates >= 1,
        "re-merging paths produce duplicate targets"
    );
}

#[test]
fn non_batchable_strategies_remain_identical() {
    // Non-generational strategies fall back to the sequential loop even
    // with a batch size configured; this pins both that dispatch and the
    // resulting equivalence.
    let seeds = [InputValues::new().with("v", 0)];
    for strategy in [
        SearchStrategy::DepthFirst,
        SearchStrategy::CoverageGuided,
        SearchStrategy::Random { seed: 42 },
    ] {
        let config = EngineConfig::default()
            .with_max_runs(32)
            .with_strategy(strategy);
        let reference = explore(chain, &seeds, config.with_batch_size(0));
        let batched = explore(
            chain,
            &seeds,
            config.with_batch_size(16).with_solver_workers(2),
        );
        assert_equivalent(&reference, &batched, &format!("{strategy:?}"));
    }
}

#[test]
fn tight_run_budgets_are_identical() {
    let seeds = [InputValues::new().with("v", 0)];
    for max_runs in 1..10 {
        let config = EngineConfig::default().with_max_runs(max_runs);
        let reference = explore(chain, &seeds, config.with_batch_size(0));
        let batched = explore(chain, &seeds, config);
        assert_equivalent(&reference, &batched, &format!("max_runs={max_runs}"));
        assert!(batched.runs.len() <= max_runs);
    }
}
