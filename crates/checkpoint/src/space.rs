//! Copy-on-write address spaces built from shared pages.

use crate::page::{Page, PAGE_SIZE};
use crate::stats::MemoryStats;

/// A paged image of a process's state.
///
/// Cloning an address space is the model's `fork()`: every page is shared
/// until one side writes to it.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    pages: Vec<Page>,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an address space holding `data`, split into pages.
    pub fn from_bytes(data: &[u8]) -> Self {
        let mut space = AddressSpace::new();
        space.load(data);
        space
    }

    /// Number of pages mapped.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Returns true if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total mapped bytes.
    pub fn size_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Returns a page by index.
    pub fn page(&self, index: usize) -> Option<&Page> {
        self.pages.get(index)
    }

    /// Replaces the whole image with `data`, page by page.
    ///
    /// Pages whose contents are unchanged keep their sharing; pages whose
    /// contents differ are copied (COW). Growing the image appends fresh
    /// pages; shrinking drops trailing pages.
    pub fn load(&mut self, data: &[u8]) {
        let needed = data
            .len()
            .div_ceil(PAGE_SIZE)
            .max(if data.is_empty() { 0 } else { 1 });
        self.pages.truncate(needed);
        for i in 0..needed {
            let start = i * PAGE_SIZE;
            let end = (start + PAGE_SIZE).min(data.len());
            let chunk = &data[start..end];
            if i < self.pages.len() {
                self.pages[i].write(chunk);
            } else {
                self.pages.push(Page::from_bytes(chunk));
            }
        }
    }

    /// Reads the full image back as a byte vector (zero-padded to pages).
    pub fn read_all(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_bytes());
        for p in &self.pages {
            out.extend_from_slice(p.bytes());
        }
        out
    }

    /// Number of this space's pages that are *not* shared with `other`
    /// (either modified since the clone, or not present in `other`).
    pub fn unique_pages_vs(&self, other: &AddressSpace) -> usize {
        self.pages
            .iter()
            .enumerate()
            .filter(|(i, p)| match other.pages.get(*i) {
                Some(q) => !p.is_shared_with(q),
                None => true,
            })
            .count()
    }

    /// Number of this space's pages still shared with `other`.
    pub fn shared_pages_vs(&self, other: &AddressSpace) -> usize {
        self.page_count() - self.unique_pages_vs(other)
    }

    /// Full memory statistics of this space relative to `other`.
    pub fn stats_vs(&self, other: &AddressSpace) -> MemoryStats {
        let unique = self.unique_pages_vs(other);
        MemoryStats {
            total_pages: self.page_count(),
            unique_pages: unique,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(len: usize, fill: u8) -> Vec<u8> {
        vec![fill; len]
    }

    #[test]
    fn load_and_read_roundtrip() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let space = AddressSpace::from_bytes(&data);
        assert_eq!(space.page_count(), 3);
        let read = space.read_all();
        assert_eq!(&read[..data.len()], &data[..]);
        assert!(read[data.len()..].iter().all(|&b| b == 0));
        assert!(AddressSpace::new().is_empty());
    }

    #[test]
    fn clone_shares_every_page() {
        let space = AddressSpace::from_bytes(&image(PAGE_SIZE * 8, 3));
        let forked = space.clone();
        assert_eq!(forked.unique_pages_vs(&space), 0);
        assert_eq!(forked.shared_pages_vs(&space), 8);
        assert_eq!(forked.stats_vs(&space).unique_fraction(), 0.0);
    }

    #[test]
    fn writes_break_sharing_per_page() {
        let mut data = image(PAGE_SIZE * 10, 1);
        let space = AddressSpace::from_bytes(&data);
        let mut forked = space.clone();
        // Modify bytes in pages 2 and 7 of the fork.
        data[2 * PAGE_SIZE + 5] = 99;
        data[7 * PAGE_SIZE + 123] = 42;
        forked.load(&data);
        assert_eq!(forked.unique_pages_vs(&space), 2);
        assert_eq!(space.unique_pages_vs(&forked), 2);
        assert_eq!(forked.shared_pages_vs(&space), 8);
        let stats = forked.stats_vs(&space);
        assert!((stats.unique_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn reloading_identical_data_preserves_sharing() {
        let data = image(PAGE_SIZE * 4, 9);
        let space = AddressSpace::from_bytes(&data);
        let mut forked = space.clone();
        forked.load(&data);
        assert_eq!(forked.unique_pages_vs(&space), 0);
    }

    #[test]
    fn growth_and_shrink() {
        let space = AddressSpace::from_bytes(&image(PAGE_SIZE * 2, 1));
        let mut grown = space.clone();
        grown.load(&image(PAGE_SIZE * 4, 1));
        assert_eq!(grown.page_count(), 4);
        // The two original pages stay shared; the new ones are unique.
        assert_eq!(grown.unique_pages_vs(&space), 2);
        let mut shrunk = space.clone();
        shrunk.load(&image(PAGE_SIZE, 1));
        assert_eq!(shrunk.page_count(), 1);
        assert_eq!(shrunk.unique_pages_vs(&space), 0);
    }
}
