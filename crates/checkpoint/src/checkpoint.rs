//! Fork-style checkpointing of node state.
//!
//! The paper implements checkpointing "by simply using the `fork` system
//! call", which "allows us to create a large number of checkpoints with a
//! small memory footprint" (§3.2). [`TrackedProcess`] reproduces that
//! model: the node state is any [`Checkpointable`] value whose serialized
//! image lives in a copy-on-write [`AddressSpace`]; `fork` clones the value
//! and shares every page, and `sync` re-serializes the state so only the
//! pages that actually changed get copied.

use crate::space::AddressSpace;
use crate::stats::MemoryStats;

/// State that can be serialized into a process image.
///
/// The serialization must be deterministic (same logical state, same
/// bytes); `dice-core` implements this for the BGP router by serializing
/// its RIB in prefix order.
pub trait Checkpointable {
    /// Appends a deterministic serialization of the state to `out`.
    fn serialize_state(&self, out: &mut Vec<u8>);

    /// Convenience wrapper returning the serialized bytes.
    fn state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.serialize_state(&mut out);
        out
    }
}

/// A process-like container pairing node state with its paged memory image.
#[derive(Debug, Clone)]
pub struct TrackedProcess<T> {
    state: T,
    memory: AddressSpace,
}

impl<T: Checkpointable> TrackedProcess<T> {
    /// Wraps live state, building its initial memory image.
    pub fn new(state: T) -> Self {
        let memory = AddressSpace::from_bytes(&state.state_bytes());
        TrackedProcess { state, memory }
    }

    /// Read access to the state.
    pub fn state(&self) -> &T {
        &self.state
    }

    /// Mutable access to the state. Call [`TrackedProcess::sync`] after a
    /// batch of mutations to bring the memory image up to date.
    pub fn state_mut(&mut self) -> &mut T {
        &mut self.state
    }

    /// The paged memory image.
    pub fn memory(&self) -> &AddressSpace {
        &self.memory
    }

    /// Re-serializes the state into the memory image, copying only the
    /// pages whose contents changed.
    pub fn sync(&mut self) {
        let bytes = self.state.state_bytes();
        self.memory.load(&bytes);
    }

    /// Forks the process: clones the state and shares every memory page
    /// with the parent (the checkpoint operation).
    pub fn fork(&self) -> TrackedProcess<T>
    where
        T: Clone,
    {
        TrackedProcess {
            state: self.state.clone(),
            memory: self.memory.clone(),
        }
    }

    /// Memory statistics of this process relative to the process it was
    /// forked from.
    pub fn memory_stats_vs(&self, parent: &TrackedProcess<T>) -> MemoryStats {
        self.memory.stats_vs(&parent.memory)
    }
}

/// A checkpoint manager that keeps the live process and hands out clones
/// for exploration, tracking their memory overhead.
#[derive(Debug)]
pub struct CheckpointManager<T> {
    live: TrackedProcess<T>,
}

impl<T: Checkpointable + Clone> CheckpointManager<T> {
    /// Wraps the live node state.
    pub fn new(state: T) -> Self {
        CheckpointManager {
            live: TrackedProcess::new(state),
        }
    }

    /// The live process.
    pub fn live(&self) -> &TrackedProcess<T> {
        &self.live
    }

    /// Mutable access to the live process (message processing continues
    /// while exploration runs on clones).
    pub fn live_mut(&mut self) -> &mut TrackedProcess<T> {
        &mut self.live
    }

    /// Takes a checkpoint of the live process (a fork).
    pub fn take_checkpoint(&self) -> TrackedProcess<T> {
        self.live.fork()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Encoder;
    use crate::page::PAGE_SIZE;

    /// A toy routing table: a sorted list of (prefix, origin) pairs.
    #[derive(Debug, Clone, Default)]
    struct ToyRib {
        routes: Vec<(u32, u32)>,
    }

    impl ToyRib {
        fn with_routes(n: u32) -> Self {
            ToyRib {
                routes: (0..n).map(|i| (i, 100 + i)).collect(),
            }
        }

        fn add(&mut self, prefix: u32, origin: u32) {
            self.routes.push((prefix, origin));
            self.routes.sort_unstable();
        }
    }

    impl Checkpointable for ToyRib {
        fn serialize_state(&self, out: &mut Vec<u8>) {
            let mut e = Encoder::new();
            e.put_u32(self.routes.len() as u32);
            for (p, o) in &self.routes {
                e.put_u32(*p);
                e.put_u32(*o);
            }
            out.extend_from_slice(&e.finish());
        }
    }

    #[test]
    fn checkpoint_shares_all_pages_initially() {
        let manager = CheckpointManager::new(ToyRib::with_routes(10_000));
        let checkpoint = manager.take_checkpoint();
        let stats = checkpoint.memory_stats_vs(manager.live());
        assert_eq!(stats.unique_pages, 0);
        assert!(stats.total_pages > 10);
        assert_eq!(stats.unique_fraction(), 0.0);
    }

    #[test]
    fn live_writes_after_checkpoint_create_few_unique_pages() {
        // Mirrors the paper's 3.45%: the live router keeps processing a few
        // updates after the checkpoint, touching a small part of its image.
        let mut manager = CheckpointManager::new(ToyRib::with_routes(20_000));
        let checkpoint = manager.take_checkpoint();
        for i in 0..50 {
            manager.live_mut().state_mut().add(1_000_000 + i, 7);
        }
        manager.live_mut().sync();
        let stats = checkpoint.memory_stats_vs(manager.live());
        assert!(stats.unique_pages > 0);
        assert!(
            stats.unique_fraction() < 0.25,
            "small update burst should touch few pages"
        );
    }

    #[test]
    fn exploration_clone_writes_more_pages_than_checkpoint() {
        let manager = CheckpointManager::new(ToyRib::with_routes(20_000));
        let checkpoint = manager.take_checkpoint();
        // An exploration clone accepts many exploratory routes.
        let mut clone = checkpoint.fork();
        for i in 0..8_000 {
            clone.state_mut().add(2_000_000 + i, 666);
        }
        clone.sync();
        let clone_stats = clone.memory_stats_vs(&checkpoint);
        let checkpoint_stats = checkpoint.memory_stats_vs(manager.live());
        assert!(clone_stats.unique_fraction() > checkpoint_stats.unique_fraction());
        assert!(clone_stats.unique_pages > 0);
    }

    #[test]
    fn sync_without_changes_keeps_sharing() {
        let mut process = TrackedProcess::new(ToyRib::with_routes(5_000));
        let fork = process.fork();
        process.sync();
        assert_eq!(process.memory_stats_vs(&fork).unique_pages, 0);
        assert_eq!(process.memory().page_count(), fork.memory().page_count());
        assert!(process.memory().size_bytes() >= 5_000 * 8);
        assert_eq!(process.memory().size_bytes() % PAGE_SIZE, 0);
    }

    #[test]
    fn state_accessors() {
        let mut process = TrackedProcess::new(ToyRib::default());
        assert!(process.state().routes.is_empty());
        process.state_mut().add(1, 2);
        assert_eq!(process.state().routes.len(), 1);
    }
}
