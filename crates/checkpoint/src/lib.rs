//! # dice-checkpoint
//!
//! Fork-style, copy-on-write checkpointing of node state with page-level
//! memory accounting.
//!
//! The DiCE prototype checkpoints the BIRD daemon with `fork()`, so
//! checkpoints and exploration clones share memory pages with the live
//! process until they diverge; the paper's §4.1 reports the resulting
//! overhead as percentages of unique pages. This crate reproduces the same
//! mechanism in user space: node state implements [`Checkpointable`]
//! (deterministic serialization), lives in a paged [`AddressSpace`], and
//! [`TrackedProcess::fork`] creates clones whose unique-page counts are the
//! experiment's metric.
//!
//! ## Example
//!
//! ```
//! use dice_checkpoint::{Checkpointable, CheckpointManager};
//!
//! #[derive(Clone)]
//! struct Counter(u64);
//! impl Checkpointable for Counter {
//!     fn serialize_state(&self, out: &mut Vec<u8>) {
//!         out.extend_from_slice(&self.0.to_be_bytes());
//!     }
//! }
//!
//! let mut manager = CheckpointManager::new(Counter(1));
//! let checkpoint = manager.take_checkpoint();
//! manager.live_mut().state_mut().0 = 2;
//! manager.live_mut().sync();
//! // The single page diverged once the live process wrote to it.
//! assert_eq!(checkpoint.memory_stats_vs(manager.live()).unique_pages, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod page;
pub mod space;
pub mod stats;

pub use checkpoint::{CheckpointManager, Checkpointable, TrackedProcess};
pub use codec::{DecodeError, Decoder, Encoder};
pub use page::{Page, PAGE_SIZE};
pub use space::AddressSpace;
pub use stats::{CloneOverhead, CowForkStats, MemoryStats};
