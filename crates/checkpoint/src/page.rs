//! Pages: fixed-size, reference-counted chunks of a process image.
//!
//! The paper checkpoints BIRD with `fork()`, relying on the kernel's
//! copy-on-write page sharing to make checkpoints cheap and to keep the
//! memory overhead of exploration clones small. This module models the same
//! mechanism at user level: an address space is a vector of `Arc`-shared
//! pages, cloning shares every page, and writing copies only the touched
//! pages. "Unique pages" — the metric reported in §4.1 — are pages no
//! longer shared with the process a snapshot was cloned from.

use std::sync::Arc;

/// The page size used by the model (the usual 4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// A reference-counted page of memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    data: Arc<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page {
            data: Arc::new([0u8; PAGE_SIZE]),
        }
    }
}

impl Page {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        Self::default()
    }

    /// Builds a page from up to [`PAGE_SIZE`] bytes (zero-padded).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut buf = [0u8; PAGE_SIZE];
        let n = bytes.len().min(PAGE_SIZE);
        buf[..n].copy_from_slice(&bytes[..n]);
        Page {
            data: Arc::new(buf),
        }
    }

    /// Read access to the page contents.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Returns true if both handles refer to the same physical page
    /// (i.e. the page is still shared, as under kernel COW).
    pub fn is_shared_with(&self, other: &Page) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Returns true if the contents are byte-for-byte equal (regardless of
    /// sharing).
    pub fn same_contents(&self, other: &Page) -> bool {
        self.data.as_ref() == other.data.as_ref()
    }

    /// Number of live references to the physical page.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }

    /// Overwrites the page with new contents, breaking sharing (COW).
    ///
    /// If the new contents equal the current contents the page is left
    /// untouched and sharing is preserved — this mirrors the kernel
    /// behaviour where a write fault is only taken when the data actually
    /// changes through the serialization path used here.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut buf = [0u8; PAGE_SIZE];
        let n = bytes.len().min(PAGE_SIZE);
        buf[..n].copy_from_slice(&bytes[..n]);
        if *self.data == buf {
            return;
        }
        self.data = Arc::new(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_start_shared_after_clone() {
        let a = Page::from_bytes(b"routing table state");
        let b = a.clone();
        assert!(a.is_shared_with(&b));
        assert!(a.same_contents(&b));
        assert!(a.ref_count() >= 2);
    }

    #[test]
    fn write_breaks_sharing_only_on_change() {
        let a = Page::from_bytes(b"original");
        let mut b = a.clone();
        // Writing identical contents keeps the page shared.
        b.write(b"original");
        assert!(a.is_shared_with(&b));
        // Writing different contents copies the page.
        b.write(b"modified");
        assert!(!a.is_shared_with(&b));
        assert!(!a.same_contents(&b));
        assert_eq!(&a.bytes()[..8], b"original");
        assert_eq!(&b.bytes()[..8], b"modified");
    }

    #[test]
    fn from_bytes_truncates_and_pads() {
        let short = Page::from_bytes(b"ab");
        assert_eq!(short.bytes()[0], b'a');
        assert_eq!(short.bytes()[2], 0);
        let long = vec![7u8; PAGE_SIZE + 100];
        let page = Page::from_bytes(&long);
        assert_eq!(page.bytes()[PAGE_SIZE - 1], 7);
        assert!(Page::zeroed().bytes().iter().all(|&b| b == 0));
    }
}
