//! A small binary encoder/decoder used to serialize node state into a
//! paged address space.
//!
//! The layout is deterministic: serializing the same logical state twice
//! produces identical bytes, so unchanged state maps to unchanged pages and
//! copy-on-write sharing is preserved across [`crate::space::AddressSpace::load`]
//! calls.

/// Binary encoder with big-endian fixed-width integers and
/// length-prefixed byte strings.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes encoding, returning the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns true if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Errors produced when decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// Offset at which the input ran out.
    pub offset: usize,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "truncated input at offset {}", self.offset)
    }
}

impl std::error::Error for DecodeError {}

/// Binary decoder matching [`Encoder`].
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over the buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Remaining bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError { offset: self.pos });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_be_bytes(arr))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string (lossy on invalid UTF-8).
    pub fn get_string(&mut self) -> Result<String, DecodeError> {
        Ok(String::from_utf8_lossy(self.get_bytes()?).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u16(0xbeef);
        e.put_u32(0xdead_beef);
        e.put_u64(0x0123_4567_89ab_cdef);
        e.put_bytes(&[1, 2, 3]);
        e.put_str("loc-rib");
        let bytes = e.finish();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().expect("u8"), 7);
        assert_eq!(d.get_u16().expect("u16"), 0xbeef);
        assert_eq!(d.get_u32().expect("u32"), 0xdead_beef);
        assert_eq!(d.get_u64().expect("u64"), 0x0123_4567_89ab_cdef);
        assert_eq!(d.get_bytes().expect("bytes"), &[1, 2, 3]);
        assert_eq!(d.get_string().expect("string"), "loc-rib");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn truncated_input_errors() {
        let mut e = Encoder::new();
        e.put_u32(5);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(d.get_u64().is_err());
        let mut d2 = Decoder::new(&bytes);
        // Length prefix of 5 with no payload.
        assert!(d2.get_bytes().is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let encode = || {
            let mut e = Encoder::new();
            e.put_str("prefix");
            e.put_u32(42);
            e.finish()
        };
        assert_eq!(encode(), encode());
    }

    #[test]
    fn length_tracking() {
        let mut e = Encoder::new();
        assert!(e.is_empty());
        e.put_u8(1);
        assert_eq!(e.len(), 1);
        assert!(!e.is_empty());
    }
}
