//! Memory accounting for checkpoints and exploration clones (the §4.1
//! memory-overhead metric).

use std::fmt;

/// Page-level statistics of one process image relative to the image it was
/// forked from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Total pages mapped by the process.
    pub total_pages: usize,
    /// Pages not shared with the parent (the paper's "unique memory pages").
    pub unique_pages: usize,
}

impl MemoryStats {
    /// Fraction of pages that are unique, in `[0, 1]`.
    pub fn unique_fraction(&self) -> f64 {
        if self.total_pages == 0 {
            0.0
        } else {
            self.unique_pages as f64 / self.total_pages as f64
        }
    }

    /// Unique pages as a percentage, as reported in the paper
    /// ("the checkpoint process has 3.45% unique memory pages").
    pub fn unique_percent(&self) -> f64 {
        self.unique_fraction() * 100.0
    }

    /// Pages still shared with the parent.
    pub fn shared_pages(&self) -> usize {
        self.total_pages - self.unique_pages
    }

    /// Approximate unique memory in bytes.
    pub fn unique_bytes(&self) -> usize {
        self.unique_pages * crate::page::PAGE_SIZE
    }
}

impl fmt::Display for MemoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} pages unique ({:.2}%)",
            self.unique_pages,
            self.total_pages,
            self.unique_percent()
        )
    }
}

/// Copy-on-write accounting for structure-level forks (the paper's `fork`
/// model applied at data-structure granularity rather than page
/// granularity): of the `units_total` independently shareable units a fork
/// comprises — e.g. the RIB shards of a router checkpoint — how many are
/// still physically shared with the process it was forked from.
///
/// The page-level counterpart is [`MemoryStats`]; this type reports the
/// same shape of number for in-memory `Arc`-shard forks, where the unit of
/// copy-on-write is a shard instead of a page.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowForkStats {
    /// Independently shareable units in the fork.
    pub units_total: usize,
    /// Units still shared with the fork's parent.
    pub units_shared: usize,
}

impl CowForkStats {
    /// Builds stats from a `(shared, total)` pair as reported by a
    /// structure's sharing probe.
    pub fn from_sharing(shared: usize, total: usize) -> Self {
        CowForkStats {
            units_total: total,
            units_shared: shared.min(total),
        }
    }

    /// Units the fork has copied (diverged from the parent).
    pub fn units_copied(&self) -> usize {
        self.units_total - self.units_shared
    }

    /// Fraction of units still shared, in `[0, 1]`; `0.0` for an empty
    /// fork.
    pub fn shared_fraction(&self) -> f64 {
        if self.units_total == 0 {
            0.0
        } else {
            self.units_shared as f64 / self.units_total as f64
        }
    }

    /// Fraction of units copied, in `[0, 1]` — the analogue of
    /// [`MemoryStats::unique_fraction`].
    pub fn copied_fraction(&self) -> f64 {
        if self.units_total == 0 {
            0.0
        } else {
            self.units_copied() as f64 / self.units_total as f64
        }
    }
}

impl fmt::Display for CowForkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} units shared ({:.2}% copied)",
            self.units_shared,
            self.units_total,
            self.copied_fraction() * 100.0
        )
    }
}

/// Aggregate over many exploration clones: the paper reports the average
/// and maximum additional unique pages across the processes forked for
/// exploration.
#[derive(Debug, Clone, Default)]
pub struct CloneOverhead {
    samples: Vec<MemoryStats>,
}

impl CloneOverhead {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one clone's statistics.
    pub fn record(&mut self, stats: MemoryStats) {
        self.samples.push(stats);
    }

    /// Number of clones recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns true if no clones were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean unique-page percentage across clones.
    pub fn mean_unique_percent(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(MemoryStats::unique_percent)
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Maximum unique-page percentage across clones.
    pub fn max_unique_percent(&self) -> f64 {
        self.samples
            .iter()
            .map(MemoryStats::unique_percent)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_percentages() {
        let s = MemoryStats {
            total_pages: 200,
            unique_pages: 7,
        };
        assert!((s.unique_fraction() - 0.035).abs() < 1e-9);
        assert!((s.unique_percent() - 3.5).abs() < 1e-9);
        assert_eq!(s.shared_pages(), 193);
        assert_eq!(s.unique_bytes(), 7 * 4096);
        assert_eq!(MemoryStats::default().unique_fraction(), 0.0);
        assert!(s.to_string().contains("3.50%"));
    }

    #[test]
    fn cow_fork_stats_fractions() {
        let s = CowForkStats::from_sharing(9, 10);
        assert_eq!(s.units_copied(), 1);
        assert!((s.shared_fraction() - 0.9).abs() < 1e-9);
        assert!((s.copied_fraction() - 0.1).abs() < 1e-9);
        assert!(s.to_string().contains("9/10 units shared"));
        // Clamped and empty cases.
        assert_eq!(CowForkStats::from_sharing(5, 3).units_shared, 3);
        assert_eq!(CowForkStats::default().shared_fraction(), 0.0);
        assert_eq!(CowForkStats::default().copied_fraction(), 0.0);
    }

    #[test]
    fn clone_overhead_aggregates() {
        let mut agg = CloneOverhead::new();
        assert!(agg.is_empty());
        agg.record(MemoryStats {
            total_pages: 100,
            unique_pages: 30,
        });
        agg.record(MemoryStats {
            total_pages: 100,
            unique_pages: 40,
        });
        agg.record(MemoryStats {
            total_pages: 100,
            unique_pages: 38,
        });
        assert_eq!(agg.len(), 3);
        assert!((agg.mean_unique_percent() - 36.0).abs() < 1e-9);
        assert!((agg.max_unique_percent() - 40.0).abs() < 1e-9);
    }
}
