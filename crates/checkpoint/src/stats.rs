//! Memory accounting for checkpoints and exploration clones (the §4.1
//! memory-overhead metric).

use std::fmt;

/// Page-level statistics of one process image relative to the image it was
/// forked from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Total pages mapped by the process.
    pub total_pages: usize,
    /// Pages not shared with the parent (the paper's "unique memory pages").
    pub unique_pages: usize,
}

impl MemoryStats {
    /// Fraction of pages that are unique, in `[0, 1]`.
    pub fn unique_fraction(&self) -> f64 {
        if self.total_pages == 0 {
            0.0
        } else {
            self.unique_pages as f64 / self.total_pages as f64
        }
    }

    /// Unique pages as a percentage, as reported in the paper
    /// ("the checkpoint process has 3.45% unique memory pages").
    pub fn unique_percent(&self) -> f64 {
        self.unique_fraction() * 100.0
    }

    /// Pages still shared with the parent.
    pub fn shared_pages(&self) -> usize {
        self.total_pages - self.unique_pages
    }

    /// Approximate unique memory in bytes.
    pub fn unique_bytes(&self) -> usize {
        self.unique_pages * crate::page::PAGE_SIZE
    }
}

impl fmt::Display for MemoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} pages unique ({:.2}%)",
            self.unique_pages,
            self.total_pages,
            self.unique_percent()
        )
    }
}

/// Aggregate over many exploration clones: the paper reports the average
/// and maximum additional unique pages across the processes forked for
/// exploration.
#[derive(Debug, Clone, Default)]
pub struct CloneOverhead {
    samples: Vec<MemoryStats>,
}

impl CloneOverhead {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one clone's statistics.
    pub fn record(&mut self, stats: MemoryStats) {
        self.samples.push(stats);
    }

    /// Number of clones recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns true if no clones were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean unique-page percentage across clones.
    pub fn mean_unique_percent(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(MemoryStats::unique_percent)
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Maximum unique-page percentage across clones.
    pub fn max_unique_percent(&self) -> f64 {
        self.samples
            .iter()
            .map(MemoryStats::unique_percent)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_percentages() {
        let s = MemoryStats {
            total_pages: 200,
            unique_pages: 7,
        };
        assert!((s.unique_fraction() - 0.035).abs() < 1e-9);
        assert!((s.unique_percent() - 3.5).abs() < 1e-9);
        assert_eq!(s.shared_pages(), 193);
        assert_eq!(s.unique_bytes(), 7 * 4096);
        assert_eq!(MemoryStats::default().unique_fraction(), 0.0);
        assert!(s.to_string().contains("3.50%"));
    }

    #[test]
    fn clone_overhead_aggregates() {
        let mut agg = CloneOverhead::new();
        assert!(agg.is_empty());
        agg.record(MemoryStats {
            total_pages: 100,
            unique_pages: 30,
        });
        agg.record(MemoryStats {
            total_pages: 100,
            unique_pages: 40,
        });
        agg.record(MemoryStats {
            total_pages: 100,
            unique_pages: 38,
        });
        assert_eq!(agg.len(), 3);
        assert!((agg.mean_unique_percent() - 36.0).abs() < 1e-9);
        assert!((agg.max_unique_percent() - 40.0).abs() < 1e-9);
    }
}
