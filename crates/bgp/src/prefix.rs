//! IPv4 prefixes (NLRI entries).
//!
//! A prefix is the unit of reachability information that BGP UPDATE
//! messages announce and withdraw, and the unit over which the DiCE hijack
//! checker reasons ("which prefix ranges can be leaked").

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Errors produced when parsing or constructing prefixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// The prefix length was greater than 32.
    InvalidLength(u8),
    /// The textual form could not be parsed.
    Malformed(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::InvalidLength(l) => write!(f, "invalid prefix length {l}"),
            PrefixError::Malformed(s) => write!(f, "malformed prefix: {s}"),
        }
    }
}

impl std::error::Error for PrefixError {}

/// An IPv4 prefix: a network address and a mask length.
///
/// The host bits of the address are always zero; constructors mask them.
///
/// # Examples
///
/// ```
/// use dice_bgp::prefix::Ipv4Prefix;
///
/// let p: Ipv4Prefix = "208.65.152.0/22".parse().unwrap();
/// assert_eq!(p.len(), 22);
/// let more_specific: Ipv4Prefix = "208.65.153.0/24".parse().unwrap();
/// assert!(p.contains(&more_specific));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { addr: 0, len: 0 };

    /// Creates a prefix from a raw address and length, masking host bits.
    ///
    /// Returns an error if `len > 32`.
    pub fn new(addr: u32, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::InvalidLength(len));
        }
        Ok(Ipv4Prefix {
            addr: addr & mask(len),
            len,
        })
    }

    /// Creates a prefix, panicking on an invalid length.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`. Intended for literals in tests and examples.
    pub fn must(addr: u32, len: u8) -> Self {
        Self::new(addr, len).expect("valid prefix length")
    }

    /// Creates a prefix from dotted-quad octets and a length.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8, len: u8) -> Result<Self, PrefixError> {
        Self::new(u32::from_be_bytes([a, b, c, d]), len)
    }

    /// The network address as a raw big-endian integer.
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// The network address as an [`Ipv4Addr`].
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// The prefix length in bits.
    ///
    /// (Not a container length — there is deliberately no `is_empty`.)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Returns true for the zero-length default route.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The netmask as a raw integer.
    pub fn netmask(&self) -> u32 {
        mask(self.len)
    }

    /// The last address covered by the prefix.
    pub fn broadcast(&self) -> u32 {
        self.addr | !mask(self.len)
    }

    /// Returns true if `ip` falls within this prefix.
    pub fn contains_ip(&self, ip: u32) -> bool {
        ip & mask(self.len) == self.addr
    }

    /// Returns true if `other` is equal to or more specific than `self`.
    pub fn contains(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && other.addr & mask(self.len) == self.addr
    }

    /// Returns true if the two prefixes share any address.
    pub fn overlaps(&self, other: &Ipv4Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// Returns the bit at position `i` (0 = most significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn bit(&self, i: u8) -> bool {
        assert!(i < 32);
        (self.addr >> (31 - i)) & 1 == 1
    }

    /// The two halves obtained by extending the prefix by one bit, or
    /// `None` for a /32.
    pub fn split(&self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let left = Ipv4Prefix {
            addr: self.addr,
            len: self.len + 1,
        };
        let right = Ipv4Prefix {
            addr: self.addr | (1 << (31 - self.len)),
            len: self.len + 1,
        };
        Some((left, right))
    }

    /// The immediate covering prefix (one bit shorter), or `None` for /0.
    pub fn parent(&self) -> Option<Ipv4Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Ipv4Prefix {
                addr: self.addr & mask(self.len - 1),
                len: self.len - 1,
            })
        }
    }

    /// Number of bytes needed to encode the prefix on the wire.
    pub fn wire_len(&self) -> usize {
        (self.len as usize).div_ceil(8)
    }
}

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else if len >= 32 {
        u32::MAX
    } else {
        u32::MAX << (32 - len)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Malformed(s.to_string()))?;
        let addr: Ipv4Addr = addr_s
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        let len: u8 = len_s
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        Ipv4Prefix::new(u32::from(addr), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let p: Ipv4Prefix = "10.1.2.0/24".parse().expect("valid");
        assert_eq!(p.to_string(), "10.1.2.0/24");
        assert_eq!(p.len(), 24);
        assert_eq!(p.network(), Ipv4Addr::new(10, 1, 2, 0));
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("not-an-ip/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn host_bits_are_masked() {
        let p = Ipv4Prefix::from_octets(10, 1, 2, 3, 16).expect("valid");
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert_eq!(
            Ipv4Prefix::must(0xffff_ffff, 8).network(),
            Ipv4Addr::new(255, 0, 0, 0)
        );
    }

    #[test]
    fn containment_and_overlap() {
        let p8: Ipv4Prefix = "10.0.0.0/8".parse().expect("valid");
        let p24: Ipv4Prefix = "10.5.5.0/24".parse().expect("valid");
        let other: Ipv4Prefix = "192.168.0.0/16".parse().expect("valid");
        assert!(p8.contains(&p24));
        assert!(!p24.contains(&p8));
        assert!(p8.overlaps(&p24) && p24.overlaps(&p8));
        assert!(!p8.overlaps(&other));
        assert!(p8.contains_ip(u32::from(Ipv4Addr::new(10, 200, 1, 1))));
        assert!(!p8.contains_ip(u32::from(Ipv4Addr::new(11, 0, 0, 1))));
        assert!(Ipv4Prefix::DEFAULT.contains(&other));
    }

    #[test]
    fn split_and_parent() {
        let p: Ipv4Prefix = "10.0.0.0/8".parse().expect("valid");
        let (l, r) = p.split().expect("splittable");
        assert_eq!(l.to_string(), "10.0.0.0/9");
        assert_eq!(r.to_string(), "10.128.0.0/9");
        assert_eq!(l.parent(), Some(p));
        assert_eq!(r.parent(), Some(p));
        let host: Ipv4Prefix = "1.2.3.4/32".parse().expect("valid");
        assert!(host.split().is_none());
        assert!(Ipv4Prefix::DEFAULT.parent().is_none());
    }

    #[test]
    fn bits_are_msb_first() {
        let p: Ipv4Prefix = "128.0.0.0/1".parse().expect("valid");
        assert!(p.bit(0));
        let q: Ipv4Prefix = "64.0.0.0/2".parse().expect("valid");
        assert!(!q.bit(0));
        assert!(q.bit(1));
    }

    #[test]
    fn wire_len_rounds_up() {
        assert_eq!(
            "0.0.0.0/0".parse::<Ipv4Prefix>().expect("valid").wire_len(),
            0
        );
        assert_eq!(
            "10.0.0.0/8"
                .parse::<Ipv4Prefix>()
                .expect("valid")
                .wire_len(),
            1
        );
        assert_eq!(
            "10.0.0.0/9"
                .parse::<Ipv4Prefix>()
                .expect("valid")
                .wire_len(),
            2
        );
        assert_eq!(
            "10.0.0.0/24"
                .parse::<Ipv4Prefix>()
                .expect("valid")
                .wire_len(),
            3
        );
        assert_eq!(
            "10.0.0.1/32"
                .parse::<Ipv4Prefix>()
                .expect("valid")
                .wire_len(),
            4
        );
    }

    #[test]
    fn broadcast_and_netmask() {
        let p: Ipv4Prefix = "192.168.4.0/22".parse().expect("valid");
        assert_eq!(p.netmask(), 0xffff_fc00);
        assert_eq!(
            Ipv4Addr::from(p.broadcast()),
            Ipv4Addr::new(192, 168, 7, 255)
        );
    }
}
