//! # dice-bgp
//!
//! BGP-4 (RFC 4271) protocol types for the DiCE reproduction: prefixes,
//! autonomous-system paths, path attributes, the four message types, a
//! strict wire codec and the session finite state machine.
//!
//! The paper integrates DiCE with the BIRD routing daemon; this crate is
//! the protocol layer under the `dice-router` daemon that plays BIRD's
//! role. The UPDATE message defined here is the input DiCE marks as
//! symbolic (selectively: NLRI prefixes, netmask lengths and path-attribute
//! values) to derive exploratory messages that are always syntactically
//! valid.
//!
//! ## Example
//!
//! ```
//! use dice_bgp::prelude::*;
//! use std::net::Ipv4Addr;
//!
//! // Build the (in)famous /24 announcement from the YouTube hijack.
//! let attrs = RouteAttrs::originated(17557, Ipv4Addr::new(192, 0, 2, 1));
//! let prefix: Ipv4Prefix = "208.65.153.0/24".parse().unwrap();
//! let update = UpdateMessage::announce(vec![prefix], &attrs);
//! let bytes = wire::encode(&BgpMessage::Update(update.clone()));
//! let (decoded, _) = wire::decode(&bytes).unwrap();
//! assert_eq!(decoded.as_update(), Some(&update));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod attributes;
pub mod error;
pub mod fsm;
pub mod message;
pub mod prefix;
pub mod route;
pub mod wire;

pub use asn::{AsPath, AsPathSegment, Asn};
pub use attributes::{Aggregator, AttrCode, Community, Origin, PathAttribute, RouteAttrs};
pub use error::{BgpError, ErrorCode, NotificationData, UpdateErrorSubcode};
pub use fsm::{SessionAction, SessionEvent, SessionFsm, SessionState};
pub use message::{
    BgpMessage, KeepaliveMessage, MessageType, NotificationMessage, OpenMessage, UpdateMessage,
};
pub use prefix::{Ipv4Prefix, PrefixError};
pub use route::{PeerId, Route};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::asn::{AsPath, Asn};
    pub use crate::attributes::{Community, Origin, PathAttribute, RouteAttrs};
    pub use crate::message::{BgpMessage, UpdateMessage};
    pub use crate::prefix::Ipv4Prefix;
    pub use crate::route::{PeerId, Route};
    pub use crate::wire;
}
