//! Routes: a prefix bound to path attributes and provenance.

use std::fmt;

use crate::asn::Asn;
use crate::attributes::RouteAttrs;
use crate::prefix::Ipv4Prefix;

/// Identifier of the peer a route was learned from.
///
/// `PeerId(0)` is reserved for locally-originated routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u32);

impl PeerId {
    /// The local router itself (static / originated routes).
    pub const LOCAL: PeerId = PeerId(0);

    /// Returns true for locally-originated routes.
    pub fn is_local(self) -> bool {
        self == PeerId::LOCAL
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_local() {
            write!(f, "local")
        } else {
            write!(f, "peer{}", self.0)
        }
    }
}

/// A route: one prefix with its attributes and the peer it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The destination prefix.
    pub prefix: Ipv4Prefix,
    /// Path attributes.
    pub attrs: RouteAttrs,
    /// The peer the route was learned from.
    pub learned_from: PeerId,
    /// Router id of the advertising router (decision-process tie breaker).
    pub peer_router_id: u32,
}

impl Route {
    /// Creates a route.
    pub fn new(
        prefix: Ipv4Prefix,
        attrs: RouteAttrs,
        learned_from: PeerId,
        peer_router_id: u32,
    ) -> Self {
        Route {
            prefix,
            attrs,
            learned_from,
            peer_router_id,
        }
    }

    /// Creates a locally-originated route.
    pub fn local(prefix: Ipv4Prefix, attrs: RouteAttrs) -> Self {
        Route {
            prefix,
            attrs,
            learned_from: PeerId::LOCAL,
            peer_router_id: 0,
        }
    }

    /// The origin AS of the route (the AS that injected it into BGP).
    pub fn origin_as(&self) -> Option<Asn> {
        self.attrs.origin_as()
    }

    /// Returns true if the route was learned from an external peer.
    pub fn is_learned(&self) -> bool {
        !self.learned_from.is_local()
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} via {} path [{}] lp={} med={}",
            self.prefix,
            self.attrs.next_hop,
            self.attrs.as_path,
            self.attrs.effective_local_pref(),
            self.attrs.effective_med()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn peer_id_local_sentinel() {
        assert!(PeerId::LOCAL.is_local());
        assert!(!PeerId(3).is_local());
        assert_eq!(PeerId::LOCAL.to_string(), "local");
        assert_eq!(PeerId(3).to_string(), "peer3");
    }

    #[test]
    fn route_accessors() {
        let attrs = RouteAttrs::originated(36561, Ipv4Addr::new(192, 0, 2, 1));
        let prefix: Ipv4Prefix = "208.65.152.0/22".parse().expect("valid");
        let r = Route::new(prefix, attrs.clone(), PeerId(2), 0x0a000002);
        assert_eq!(r.origin_as(), Some(Asn(36561)));
        assert!(r.is_learned());
        let local = Route::local(prefix, attrs);
        assert!(!local.is_learned());
    }

    #[test]
    fn display_contains_prefix_and_path() {
        let attrs = RouteAttrs::originated(65001, Ipv4Addr::new(10, 0, 0, 1));
        let prefix: Ipv4Prefix = "10.1.0.0/16".parse().expect("valid");
        let r = Route::local(prefix, attrs);
        let s = r.to_string();
        assert!(s.contains("10.1.0.0/16"));
        assert!(s.contains("65001"));
    }
}
