//! BGP path attributes (RFC 4271 §4.3 and §5).

use std::fmt;
use std::net::Ipv4Addr;

use crate::asn::{AsPath, Asn};

/// The ORIGIN attribute: how the route entered BGP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Origin {
    /// Interior gateway protocol (value 0) — preferred by the decision
    /// process.
    Igp,
    /// Exterior gateway protocol (value 1).
    Egp,
    /// Unknown provenance (value 2).
    Incomplete,
}

impl Origin {
    /// The RFC 4271 wire value.
    pub fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Parses the wire value.
    pub fn from_code(code: u8) -> Option<Origin> {
        match code {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Origin::Igp => "IGP",
            Origin::Egp => "EGP",
            Origin::Incomplete => "incomplete",
        };
        f.write_str(s)
    }
}

/// A BGP community value (RFC 1997), conventionally written `asn:value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Community(pub u32);

impl Community {
    /// Builds a community from its `asn:value` halves.
    pub fn new(asn: u16, value: u16) -> Self {
        Community(((asn as u32) << 16) | value as u32)
    }

    /// The high 16 bits (the AS part).
    pub fn asn_part(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low 16 bits (the value part).
    pub fn value_part(self) -> u16 {
        self.0 as u16
    }

    /// The well-known NO_EXPORT community.
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
    /// The well-known NO_ADVERTISE community.
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn_part(), self.value_part())
    }
}

/// The AGGREGATOR attribute: the AS and router that formed an aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Aggregator {
    /// The aggregating AS.
    pub asn: Asn,
    /// The aggregating router id.
    pub router_id: u32,
}

/// Attribute type codes defined by RFC 4271 and RFC 1997.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AttrCode {
    /// ORIGIN (type 1).
    Origin = 1,
    /// AS_PATH (type 2).
    AsPath = 2,
    /// NEXT_HOP (type 3).
    NextHop = 3,
    /// MULTI_EXIT_DISC (type 4).
    Med = 4,
    /// LOCAL_PREF (type 5).
    LocalPref = 5,
    /// ATOMIC_AGGREGATE (type 6).
    AtomicAggregate = 6,
    /// AGGREGATOR (type 7).
    Aggregator = 7,
    /// COMMUNITIES (type 8, RFC 1997).
    Communities = 8,
}

impl AttrCode {
    /// Parses a type code.
    pub fn from_code(code: u8) -> Option<AttrCode> {
        match code {
            1 => Some(AttrCode::Origin),
            2 => Some(AttrCode::AsPath),
            3 => Some(AttrCode::NextHop),
            4 => Some(AttrCode::Med),
            5 => Some(AttrCode::LocalPref),
            6 => Some(AttrCode::AtomicAggregate),
            7 => Some(AttrCode::Aggregator),
            8 => Some(AttrCode::Communities),
            _ => None,
        }
    }

    /// RFC 4271 attribute flags (optional/transitive bits) used when
    /// encoding the attribute.
    pub fn default_flags(self) -> u8 {
        match self {
            // Well-known mandatory / discretionary: transitive only.
            AttrCode::Origin
            | AttrCode::AsPath
            | AttrCode::NextHop
            | AttrCode::LocalPref
            | AttrCode::AtomicAggregate => flags::TRANSITIVE,
            // Optional non-transitive.
            AttrCode::Med => flags::OPTIONAL,
            // Optional transitive.
            AttrCode::Aggregator | AttrCode::Communities => flags::OPTIONAL | flags::TRANSITIVE,
        }
    }
}

/// Attribute flag bits (the high nibble of the flags octet).
pub mod flags {
    /// The attribute is optional (not well-known).
    pub const OPTIONAL: u8 = 0x80;
    /// The attribute is transitive.
    pub const TRANSITIVE: u8 = 0x40;
    /// A partial optional-transitive attribute.
    pub const PARTIAL: u8 = 0x20;
    /// The length field is two octets.
    pub const EXTENDED_LENGTH: u8 = 0x10;
}

/// A single decoded path attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathAttribute {
    /// ORIGIN.
    Origin(Origin),
    /// AS_PATH.
    AsPath(AsPath),
    /// NEXT_HOP.
    NextHop(Ipv4Addr),
    /// MULTI_EXIT_DISC.
    Med(u32),
    /// LOCAL_PREF.
    LocalPref(u32),
    /// ATOMIC_AGGREGATE.
    AtomicAggregate,
    /// AGGREGATOR.
    Aggregator(Aggregator),
    /// COMMUNITIES.
    Communities(Vec<Community>),
}

impl PathAttribute {
    /// The attribute's type code.
    pub fn code(&self) -> AttrCode {
        match self {
            PathAttribute::Origin(_) => AttrCode::Origin,
            PathAttribute::AsPath(_) => AttrCode::AsPath,
            PathAttribute::NextHop(_) => AttrCode::NextHop,
            PathAttribute::Med(_) => AttrCode::Med,
            PathAttribute::LocalPref(_) => AttrCode::LocalPref,
            PathAttribute::AtomicAggregate => AttrCode::AtomicAggregate,
            PathAttribute::Aggregator(_) => AttrCode::Aggregator,
            PathAttribute::Communities(_) => AttrCode::Communities,
        }
    }
}

/// The complete, typed attribute set attached to a route.
///
/// This is the in-memory representation the router and the DiCE symbolic
/// handler operate on; [`RouteAttrs::to_attributes`] /
/// [`RouteAttrs::from_attributes`] convert to and from the wire-level list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteAttrs {
    /// ORIGIN (mandatory).
    pub origin: Origin,
    /// AS_PATH (mandatory; empty for locally-originated routes).
    pub as_path: AsPath,
    /// NEXT_HOP (mandatory).
    pub next_hop: Ipv4Addr,
    /// MULTI_EXIT_DISC, if present.
    pub med: Option<u32>,
    /// LOCAL_PREF, if present (set on iBGP sessions / by import policy).
    pub local_pref: Option<u32>,
    /// ATOMIC_AGGREGATE marker.
    pub atomic_aggregate: bool,
    /// AGGREGATOR, if present.
    pub aggregator: Option<Aggregator>,
    /// COMMUNITIES, possibly empty.
    pub communities: Vec<Community>,
}

impl Default for RouteAttrs {
    fn default() -> Self {
        RouteAttrs {
            origin: Origin::Igp,
            as_path: AsPath::empty(),
            next_hop: Ipv4Addr::UNSPECIFIED,
            med: None,
            local_pref: None,
            atomic_aggregate: false,
            aggregator: None,
            communities: Vec::new(),
        }
    }
}

impl RouteAttrs {
    /// Creates attributes for a route originated by `origin_as` at
    /// `next_hop`.
    pub fn originated(origin_as: u32, next_hop: Ipv4Addr) -> Self {
        RouteAttrs {
            origin: Origin::Igp,
            as_path: AsPath::from_sequence([origin_as]),
            next_hop,
            ..Default::default()
        }
    }

    /// The origin AS of the route, if the AS path carries one.
    pub fn origin_as(&self) -> Option<Asn> {
        self.as_path.origin_as()
    }

    /// Effective LOCAL_PREF with the RFC default of 100.
    pub fn effective_local_pref(&self) -> u32 {
        self.local_pref.unwrap_or(100)
    }

    /// Effective MED with the "missing is lowest" convention (0).
    pub fn effective_med(&self) -> u32 {
        self.med.unwrap_or(0)
    }

    /// Converts to the wire-level attribute list in canonical code order.
    pub fn to_attributes(&self) -> Vec<PathAttribute> {
        let mut out = vec![
            PathAttribute::Origin(self.origin),
            PathAttribute::AsPath(self.as_path.clone()),
            PathAttribute::NextHop(self.next_hop),
        ];
        if let Some(med) = self.med {
            out.push(PathAttribute::Med(med));
        }
        if let Some(lp) = self.local_pref {
            out.push(PathAttribute::LocalPref(lp));
        }
        if self.atomic_aggregate {
            out.push(PathAttribute::AtomicAggregate);
        }
        if let Some(agg) = self.aggregator {
            out.push(PathAttribute::Aggregator(agg));
        }
        if !self.communities.is_empty() {
            out.push(PathAttribute::Communities(self.communities.clone()));
        }
        out
    }

    /// Builds typed attributes from a wire-level list. Later duplicates
    /// overwrite earlier ones; unknown attributes are not representable
    /// here and must be filtered by the caller.
    pub fn from_attributes(attrs: &[PathAttribute]) -> Self {
        let mut out = RouteAttrs::default();
        for a in attrs {
            match a {
                PathAttribute::Origin(o) => out.origin = *o,
                PathAttribute::AsPath(p) => out.as_path = p.clone(),
                PathAttribute::NextHop(n) => out.next_hop = *n,
                PathAttribute::Med(m) => out.med = Some(*m),
                PathAttribute::LocalPref(l) => out.local_pref = Some(*l),
                PathAttribute::AtomicAggregate => out.atomic_aggregate = true,
                PathAttribute::Aggregator(g) => out.aggregator = Some(*g),
                PathAttribute::Communities(c) => out.communities = c.clone(),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_codes_roundtrip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_code(o.code()), Some(o));
        }
        assert_eq!(Origin::from_code(7), None);
        assert_eq!(Origin::Igp.to_string(), "IGP");
    }

    #[test]
    fn community_packing() {
        let c = Community::new(65000, 120);
        assert_eq!(c.asn_part(), 65000);
        assert_eq!(c.value_part(), 120);
        assert_eq!(c.to_string(), "65000:120");
        assert_eq!(Community::NO_EXPORT.asn_part(), 0xffff);
    }

    #[test]
    fn attr_code_roundtrip_and_flags() {
        for code in 1..=8u8 {
            let c = AttrCode::from_code(code).expect("known code");
            assert_eq!(c as u8, code);
        }
        assert_eq!(AttrCode::from_code(99), None);
        assert_eq!(AttrCode::Origin.default_flags(), flags::TRANSITIVE);
        assert_eq!(AttrCode::Med.default_flags(), flags::OPTIONAL);
        assert_eq!(
            AttrCode::Communities.default_flags(),
            flags::OPTIONAL | flags::TRANSITIVE
        );
    }

    #[test]
    fn route_attrs_roundtrip_through_attribute_list() {
        let attrs = RouteAttrs {
            origin: Origin::Egp,
            as_path: AsPath::from_sequence([3491, 17557]),
            next_hop: Ipv4Addr::new(192, 0, 2, 1),
            med: Some(50),
            local_pref: Some(200),
            atomic_aggregate: true,
            aggregator: Some(Aggregator {
                asn: Asn(17557),
                router_id: 0x0a000001,
            }),
            communities: vec![Community::new(3491, 100), Community::NO_EXPORT],
        };
        let list = attrs.to_attributes();
        assert_eq!(list.len(), 8);
        let back = RouteAttrs::from_attributes(&list);
        assert_eq!(back, attrs);
    }

    #[test]
    fn defaults_follow_rfc_conventions() {
        let attrs = RouteAttrs::default();
        assert_eq!(attrs.effective_local_pref(), 100);
        assert_eq!(attrs.effective_med(), 0);
        assert!(attrs.origin_as().is_none());
        let originated = RouteAttrs::originated(65001, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(originated.origin_as(), Some(Asn(65001)));
    }

    #[test]
    fn minimal_attribute_list_omits_optionals() {
        let attrs = RouteAttrs::originated(65001, Ipv4Addr::new(10, 0, 0, 1));
        let list = attrs.to_attributes();
        assert_eq!(list.len(), 3);
        assert!(matches!(list[0], PathAttribute::Origin(_)));
        assert!(matches!(list[1], PathAttribute::AsPath(_)));
        assert!(matches!(list[2], PathAttribute::NextHop(_)));
    }
}
