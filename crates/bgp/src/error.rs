//! BGP error and NOTIFICATION codes (RFC 4271 §4.5 and §6).

use std::fmt;

/// Top-level NOTIFICATION error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// Message header error (code 1).
    MessageHeader = 1,
    /// OPEN message error (code 2).
    OpenMessage = 2,
    /// UPDATE message error (code 3).
    UpdateMessage = 3,
    /// Hold timer expired (code 4).
    HoldTimerExpired = 4,
    /// Finite state machine error (code 5).
    FiniteStateMachine = 5,
    /// Administrative cease (code 6).
    Cease = 6,
}

impl ErrorCode {
    /// Parses the wire code.
    pub fn from_code(code: u8) -> Option<ErrorCode> {
        match code {
            1 => Some(ErrorCode::MessageHeader),
            2 => Some(ErrorCode::OpenMessage),
            3 => Some(ErrorCode::UpdateMessage),
            4 => Some(ErrorCode::HoldTimerExpired),
            5 => Some(ErrorCode::FiniteStateMachine),
            6 => Some(ErrorCode::Cease),
            _ => None,
        }
    }
}

/// UPDATE message error subcodes (RFC 4271 §6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum UpdateErrorSubcode {
    /// Malformed attribute list.
    MalformedAttributeList = 1,
    /// Unrecognized well-known attribute.
    UnrecognizedWellKnownAttribute = 2,
    /// Missing well-known attribute.
    MissingWellKnownAttribute = 3,
    /// Attribute flags error.
    AttributeFlagsError = 4,
    /// Attribute length error.
    AttributeLengthError = 5,
    /// Invalid ORIGIN attribute.
    InvalidOriginAttribute = 6,
    /// Invalid NEXT_HOP attribute.
    InvalidNextHopAttribute = 8,
    /// Optional attribute error.
    OptionalAttributeError = 9,
    /// Invalid network field.
    InvalidNetworkField = 10,
    /// Malformed AS_PATH.
    MalformedAsPath = 11,
}

/// The payload of a NOTIFICATION message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationData {
    /// The error code.
    pub code: ErrorCode,
    /// The error subcode (0 when unspecific).
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

impl NotificationData {
    /// Creates a NOTIFICATION payload with no diagnostic data.
    pub fn new(code: ErrorCode, subcode: u8) -> Self {
        NotificationData {
            code,
            subcode,
            data: Vec::new(),
        }
    }
}

impl fmt::Display for NotificationData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/{}", self.code, self.subcode)
    }
}

/// Errors produced while encoding or decoding BGP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpError {
    /// The message was shorter than its header or declared length.
    Truncated {
        /// How many bytes were expected.
        expected: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// The 16-octet marker was not all-ones.
    BadMarker,
    /// The declared message length is outside [19, 4096].
    BadLength(u16),
    /// Unknown message type code.
    UnknownMessageType(u8),
    /// A prefix length larger than 32 appeared in NLRI or withdrawn routes.
    BadPrefixLength(u8),
    /// A path attribute could not be decoded.
    BadAttribute {
        /// The attribute type code.
        code: u8,
        /// Description of the problem.
        reason: &'static str,
    },
    /// An UPDATE-level semantic error, reportable as a NOTIFICATION.
    Update(UpdateErrorSubcode),
}

impl fmt::Display for BgpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpError::Truncated {
                expected,
                available,
            } => {
                write!(
                    f,
                    "truncated message: need {expected} bytes, have {available}"
                )
            }
            BgpError::BadMarker => write!(f, "bad marker"),
            BgpError::BadLength(l) => write!(f, "bad message length {l}"),
            BgpError::UnknownMessageType(t) => write!(f, "unknown message type {t}"),
            BgpError::BadPrefixLength(l) => write!(f, "bad prefix length {l}"),
            BgpError::BadAttribute { code, reason } => {
                write!(f, "bad attribute {code}: {reason}")
            }
            BgpError::Update(sub) => write!(f, "update error: {sub:?}"),
        }
    }
}

impl std::error::Error for BgpError {}

impl BgpError {
    /// Maps the error to the NOTIFICATION it should trigger.
    pub fn to_notification(&self) -> NotificationData {
        match self {
            BgpError::Truncated { .. } | BgpError::BadLength(_) => {
                NotificationData::new(ErrorCode::MessageHeader, 2)
            }
            BgpError::BadMarker => NotificationData::new(ErrorCode::MessageHeader, 1),
            BgpError::UnknownMessageType(_) => NotificationData::new(ErrorCode::MessageHeader, 3),
            BgpError::BadPrefixLength(_) => NotificationData::new(
                ErrorCode::UpdateMessage,
                UpdateErrorSubcode::InvalidNetworkField as u8,
            ),
            BgpError::BadAttribute { .. } => NotificationData::new(
                ErrorCode::UpdateMessage,
                UpdateErrorSubcode::AttributeLengthError as u8,
            ),
            BgpError::Update(sub) => NotificationData::new(ErrorCode::UpdateMessage, *sub as u8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_code_roundtrip() {
        for code in 1..=6u8 {
            let c = ErrorCode::from_code(code).expect("known");
            assert_eq!(c as u8, code);
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(7), None);
    }

    #[test]
    fn notification_mapping() {
        let e = BgpError::BadMarker;
        let n = e.to_notification();
        assert_eq!(n.code, ErrorCode::MessageHeader);
        assert_eq!(n.subcode, 1);

        let e = BgpError::BadPrefixLength(40);
        let n = e.to_notification();
        assert_eq!(n.code, ErrorCode::UpdateMessage);
        assert_eq!(n.subcode, UpdateErrorSubcode::InvalidNetworkField as u8);

        let e = BgpError::Update(UpdateErrorSubcode::MalformedAsPath);
        assert_eq!(e.to_notification().subcode, 11);
    }

    #[test]
    fn errors_display() {
        let e = BgpError::Truncated {
            expected: 23,
            available: 10,
        };
        assert!(e.to_string().contains("23"));
        assert!(BgpError::UnknownMessageType(9).to_string().contains('9'));
        assert_eq!(
            NotificationData::new(ErrorCode::Cease, 0).to_string(),
            "Cease/0"
        );
    }
}
