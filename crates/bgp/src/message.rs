//! BGP message types (RFC 4271 §4).

use std::fmt;
use std::net::Ipv4Addr;

use crate::attributes::{PathAttribute, RouteAttrs};
use crate::error::NotificationData;
use crate::prefix::Ipv4Prefix;

/// BGP message type codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MessageType {
    /// OPEN (type 1).
    Open = 1,
    /// UPDATE (type 2).
    Update = 2,
    /// NOTIFICATION (type 3).
    Notification = 3,
    /// KEEPALIVE (type 4).
    Keepalive = 4,
}

impl MessageType {
    /// Parses a wire type code.
    pub fn from_code(code: u8) -> Option<MessageType> {
        match code {
            1 => Some(MessageType::Open),
            2 => Some(MessageType::Update),
            3 => Some(MessageType::Notification),
            4 => Some(MessageType::Keepalive),
            _ => None,
        }
    }
}

/// An OPEN message: session parameters exchanged at startup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMessage {
    /// Protocol version; always 4.
    pub version: u8,
    /// The sender's autonomous system number.
    pub my_as: u32,
    /// Proposed hold time in seconds.
    pub hold_time: u16,
    /// The sender's BGP identifier (router id).
    pub bgp_identifier: u32,
}

impl OpenMessage {
    /// Creates a version-4 OPEN message.
    pub fn new(my_as: u32, hold_time: u16, bgp_identifier: u32) -> Self {
        OpenMessage {
            version: 4,
            my_as,
            hold_time,
            bgp_identifier,
        }
    }
}

/// An UPDATE message: withdrawn routes, path attributes and announced NLRI.
///
/// UPDATE messages are "the main drivers for state change" (paper §3.2) and
/// the messages DiCE marks as symbolic to derive exploratory inputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateMessage {
    /// Prefixes no longer reachable through the sender.
    pub withdrawn: Vec<Ipv4Prefix>,
    /// Path attributes applying to all announced prefixes.
    pub attributes: Vec<PathAttribute>,
    /// Announced prefixes (Network Layer Reachability Information).
    pub nlri: Vec<Ipv4Prefix>,
}

impl UpdateMessage {
    /// Creates an announcement of `nlri` with the given typed attributes.
    pub fn announce(nlri: Vec<Ipv4Prefix>, attrs: &RouteAttrs) -> Self {
        UpdateMessage {
            withdrawn: Vec::new(),
            attributes: attrs.to_attributes(),
            nlri,
        }
    }

    /// Creates a withdrawal of the given prefixes.
    pub fn withdraw(withdrawn: Vec<Ipv4Prefix>) -> Self {
        UpdateMessage {
            withdrawn,
            attributes: Vec::new(),
            nlri: Vec::new(),
        }
    }

    /// Returns true if the message neither announces nor withdraws routes.
    pub fn is_empty(&self) -> bool {
        self.withdrawn.is_empty() && self.nlri.is_empty()
    }

    /// The typed view of the attribute list.
    pub fn route_attrs(&self) -> RouteAttrs {
        RouteAttrs::from_attributes(&self.attributes)
    }
}

/// A KEEPALIVE message (header only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeepaliveMessage;

/// A NOTIFICATION message: the error that closes the session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMessage {
    /// The error code/subcode plus diagnostic data.
    pub error: NotificationData,
}

/// Any BGP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpMessage {
    /// OPEN.
    Open(OpenMessage),
    /// UPDATE.
    Update(UpdateMessage),
    /// NOTIFICATION.
    Notification(NotificationMessage),
    /// KEEPALIVE.
    Keepalive(KeepaliveMessage),
}

impl BgpMessage {
    /// The message type code.
    pub fn message_type(&self) -> MessageType {
        match self {
            BgpMessage::Open(_) => MessageType::Open,
            BgpMessage::Update(_) => MessageType::Update,
            BgpMessage::Notification(_) => MessageType::Notification,
            BgpMessage::Keepalive(_) => MessageType::Keepalive,
        }
    }

    /// Returns the UPDATE payload if this is an UPDATE message.
    pub fn as_update(&self) -> Option<&UpdateMessage> {
        match self {
            BgpMessage::Update(u) => Some(u),
            _ => None,
        }
    }
}

impl fmt::Display for BgpMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpMessage::Open(o) => write!(
                f,
                "OPEN(as={}, id={})",
                o.my_as,
                Ipv4Addr::from(o.bgp_identifier)
            ),
            BgpMessage::Update(u) => write!(
                f,
                "UPDATE(+{} -{} prefixes)",
                u.nlri.len(),
                u.withdrawn.len()
            ),
            BgpMessage::Notification(n) => write!(f, "NOTIFICATION({})", n.error),
            BgpMessage::Keepalive(_) => write!(f, "KEEPALIVE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::RouteAttrs;

    #[test]
    fn message_type_codes() {
        assert_eq!(MessageType::from_code(1), Some(MessageType::Open));
        assert_eq!(MessageType::from_code(2), Some(MessageType::Update));
        assert_eq!(MessageType::from_code(3), Some(MessageType::Notification));
        assert_eq!(MessageType::from_code(4), Some(MessageType::Keepalive));
        assert_eq!(MessageType::from_code(0), None);
        assert_eq!(MessageType::Update as u8, 2);
    }

    #[test]
    fn announce_and_withdraw_constructors() {
        let attrs = RouteAttrs::originated(65001, Ipv4Addr::new(10, 0, 0, 1));
        let p: Ipv4Prefix = "203.0.113.0/24".parse().expect("valid");
        let ann = UpdateMessage::announce(vec![p], &attrs);
        assert_eq!(ann.nlri, vec![p]);
        assert!(!ann.is_empty());
        assert_eq!(
            ann.route_attrs().origin_as().map(|a| a.value()),
            Some(65001)
        );

        let wd = UpdateMessage::withdraw(vec![p]);
        assert_eq!(wd.withdrawn, vec![p]);
        assert!(wd.nlri.is_empty());
        assert!(UpdateMessage::default().is_empty());
    }

    #[test]
    fn display_summaries() {
        let open = BgpMessage::Open(OpenMessage::new(65001, 90, 0x0a000001));
        assert!(open.to_string().contains("as=65001"));
        assert_eq!(open.message_type(), MessageType::Open);
        let ka = BgpMessage::Keepalive(KeepaliveMessage);
        assert_eq!(ka.to_string(), "KEEPALIVE");
        assert!(ka.as_update().is_none());
    }

    #[test]
    fn as_update_accessor() {
        let attrs = RouteAttrs::originated(65001, Ipv4Addr::new(10, 0, 0, 1));
        let p: Ipv4Prefix = "198.51.100.0/24".parse().expect("valid");
        let msg = BgpMessage::Update(UpdateMessage::announce(vec![p], &attrs));
        assert_eq!(msg.as_update().map(|u| u.nlri.len()), Some(1));
    }
}
