//! The BGP session finite state machine (RFC 4271 §8), simplified to the
//! transitions the simulator exercises.

use std::fmt;

/// Session states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionState {
    /// No resources allocated; refuse connections.
    Idle,
    /// Waiting for the transport connection to complete.
    Connect,
    /// Listening for a connection after a connect failure.
    Active,
    /// OPEN sent, waiting for the peer's OPEN.
    OpenSent,
    /// OPEN received, waiting for KEEPALIVE.
    OpenConfirm,
    /// Session established; UPDATE exchange allowed.
    Established,
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SessionState::Idle => "Idle",
            SessionState::Connect => "Connect",
            SessionState::Active => "Active",
            SessionState::OpenSent => "OpenSent",
            SessionState::OpenConfirm => "OpenConfirm",
            SessionState::Established => "Established",
        };
        f.write_str(s)
    }
}

/// Events driving the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionEvent {
    /// Operator starts the session.
    ManualStart,
    /// Operator stops the session.
    ManualStop,
    /// The transport connection succeeded.
    TransportConnected,
    /// The transport connection failed or was torn down.
    TransportFailed,
    /// An OPEN message was received.
    OpenReceived,
    /// A KEEPALIVE message was received.
    KeepaliveReceived,
    /// An UPDATE message was received.
    UpdateReceived,
    /// A NOTIFICATION was received or a fatal error occurred.
    NotificationReceived,
    /// The hold timer expired.
    HoldTimerExpired,
}

/// Actions the router should perform as a result of a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionAction {
    /// Do nothing.
    None,
    /// Initiate the transport connection.
    StartTransport,
    /// Send an OPEN message.
    SendOpen,
    /// Send a KEEPALIVE message.
    SendKeepalive,
    /// Process the received UPDATE.
    ProcessUpdate,
    /// Tear the session down and release resources.
    TearDown,
}

/// The session FSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionFsm {
    state: SessionState,
}

impl Default for SessionFsm {
    fn default() -> Self {
        SessionFsm {
            state: SessionState::Idle,
        }
    }
}

impl SessionFsm {
    /// Creates a new FSM in the `Idle` state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Returns true if UPDATE messages may be exchanged.
    pub fn is_established(&self) -> bool {
        self.state == SessionState::Established
    }

    /// Applies an event, returning the action the router should take.
    pub fn handle(&mut self, event: SessionEvent) -> SessionAction {
        use SessionAction as A;
        use SessionEvent as E;
        use SessionState as S;
        let (next, action) = match (self.state, event) {
            (S::Idle, E::ManualStart) => (S::Connect, A::StartTransport),
            (S::Idle, _) => (S::Idle, A::None),

            (S::Connect, E::TransportConnected) => (S::OpenSent, A::SendOpen),
            (S::Connect, E::TransportFailed) => (S::Active, A::None),
            (S::Connect, E::ManualStop) => (S::Idle, A::TearDown),
            (S::Connect, _) => (S::Connect, A::None),

            (S::Active, E::TransportConnected) => (S::OpenSent, A::SendOpen),
            (S::Active, E::ManualStop) => (S::Idle, A::TearDown),
            (S::Active, E::HoldTimerExpired) => (S::Idle, A::TearDown),
            (S::Active, _) => (S::Active, A::None),

            (S::OpenSent, E::OpenReceived) => (S::OpenConfirm, A::SendKeepalive),
            (S::OpenSent, E::TransportFailed) => (S::Active, A::None),
            (S::OpenSent, E::ManualStop | E::NotificationReceived | E::HoldTimerExpired) => {
                (S::Idle, A::TearDown)
            }
            (S::OpenSent, _) => (S::OpenSent, A::None),

            (S::OpenConfirm, E::KeepaliveReceived) => (S::Established, A::None),
            (
                S::OpenConfirm,
                E::ManualStop | E::NotificationReceived | E::HoldTimerExpired | E::TransportFailed,
            ) => (S::Idle, A::TearDown),
            (S::OpenConfirm, _) => (S::OpenConfirm, A::None),

            (S::Established, E::UpdateReceived) => (S::Established, A::ProcessUpdate),
            (S::Established, E::KeepaliveReceived) => (S::Established, A::None),
            (
                S::Established,
                E::ManualStop | E::NotificationReceived | E::HoldTimerExpired | E::TransportFailed,
            ) => (S::Idle, A::TearDown),
            (S::Established, _) => (S::Established, A::None),
        };
        self.state = next;
        action
    }

    /// Drives the FSM through the happy path to `Established`.
    pub fn establish(&mut self) {
        self.handle(SessionEvent::ManualStart);
        self.handle(SessionEvent::TransportConnected);
        self.handle(SessionEvent::OpenReceived);
        self.handle(SessionEvent::KeepaliveReceived);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_reaches_established() {
        let mut fsm = SessionFsm::new();
        assert_eq!(fsm.state(), SessionState::Idle);
        assert_eq!(
            fsm.handle(SessionEvent::ManualStart),
            SessionAction::StartTransport
        );
        assert_eq!(
            fsm.handle(SessionEvent::TransportConnected),
            SessionAction::SendOpen
        );
        assert_eq!(
            fsm.handle(SessionEvent::OpenReceived),
            SessionAction::SendKeepalive
        );
        assert_eq!(
            fsm.handle(SessionEvent::KeepaliveReceived),
            SessionAction::None
        );
        assert!(fsm.is_established());
    }

    #[test]
    fn establish_helper() {
        let mut fsm = SessionFsm::new();
        fsm.establish();
        assert!(fsm.is_established());
    }

    #[test]
    fn updates_only_processed_when_established() {
        let mut fsm = SessionFsm::new();
        assert_eq!(
            fsm.handle(SessionEvent::UpdateReceived),
            SessionAction::None
        );
        fsm.establish();
        assert_eq!(
            fsm.handle(SessionEvent::UpdateReceived),
            SessionAction::ProcessUpdate
        );
    }

    #[test]
    fn errors_tear_the_session_down() {
        let mut fsm = SessionFsm::new();
        fsm.establish();
        assert_eq!(
            fsm.handle(SessionEvent::NotificationReceived),
            SessionAction::TearDown
        );
        assert_eq!(fsm.state(), SessionState::Idle);

        let mut fsm2 = SessionFsm::new();
        fsm2.establish();
        assert_eq!(
            fsm2.handle(SessionEvent::HoldTimerExpired),
            SessionAction::TearDown
        );
        assert_eq!(fsm2.state(), SessionState::Idle);
    }

    #[test]
    fn connect_failure_falls_back_to_active() {
        let mut fsm = SessionFsm::new();
        fsm.handle(SessionEvent::ManualStart);
        assert_eq!(
            fsm.handle(SessionEvent::TransportFailed),
            SessionAction::None
        );
        assert_eq!(fsm.state(), SessionState::Active);
        // A later successful connection still reaches Established.
        assert_eq!(
            fsm.handle(SessionEvent::TransportConnected),
            SessionAction::SendOpen
        );
        fsm.handle(SessionEvent::OpenReceived);
        fsm.handle(SessionEvent::KeepaliveReceived);
        assert!(fsm.is_established());
    }

    #[test]
    fn idle_ignores_everything_but_start() {
        let mut fsm = SessionFsm::new();
        for e in [
            SessionEvent::UpdateReceived,
            SessionEvent::KeepaliveReceived,
            SessionEvent::OpenReceived,
            SessionEvent::TransportConnected,
        ] {
            assert_eq!(fsm.handle(e), SessionAction::None);
            assert_eq!(fsm.state(), SessionState::Idle);
        }
    }
}
