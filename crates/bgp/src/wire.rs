//! RFC 4271 wire encoding and decoding of BGP messages.
//!
//! The codec is strict on decode: syntactically invalid messages produce a
//! [`BgpError`] that maps to the NOTIFICATION the router would send. The
//! DiCE symbolic-input layer deliberately generates only *syntactically
//! valid* messages (paper §3.2), so this layer is exercised by the live
//! message path and by tests, not by exploration.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

use crate::asn::{AsPath, AsPathSegment, Asn};
use crate::attributes::{flags, Aggregator, AttrCode, Community, Origin, PathAttribute};
use crate::error::{BgpError, NotificationData, UpdateErrorSubcode};
use crate::message::{
    BgpMessage, KeepaliveMessage, MessageType, NotificationMessage, OpenMessage, UpdateMessage,
};
use crate::prefix::Ipv4Prefix;

/// Fixed header length (marker + length + type).
pub const HEADER_LEN: usize = 19;
/// Maximum BGP message length.
pub const MAX_MESSAGE_LEN: usize = 4096;

/// Encodes a message into a fresh byte buffer.
pub fn encode(msg: &BgpMessage) -> Bytes {
    let mut body = BytesMut::new();
    match msg {
        BgpMessage::Open(o) => encode_open(o, &mut body),
        BgpMessage::Update(u) => encode_update(u, &mut body),
        BgpMessage::Notification(n) => encode_notification(n, &mut body),
        BgpMessage::Keepalive(_) => {}
    }
    let mut out = BytesMut::with_capacity(HEADER_LEN + body.len());
    out.put_bytes(0xff, 16);
    out.put_u16((HEADER_LEN + body.len()) as u16);
    out.put_u8(msg.message_type() as u8);
    out.extend_from_slice(&body);
    out.freeze()
}

/// Decodes one message from the front of `buf`.
///
/// Returns the message and the number of bytes consumed.
pub fn decode(buf: &[u8]) -> Result<(BgpMessage, usize), BgpError> {
    if buf.len() < HEADER_LEN {
        return Err(BgpError::Truncated {
            expected: HEADER_LEN,
            available: buf.len(),
        });
    }
    if buf[..16].iter().any(|&b| b != 0xff) {
        return Err(BgpError::BadMarker);
    }
    let len = u16::from_be_bytes([buf[16], buf[17]]) as usize;
    if !(HEADER_LEN..=MAX_MESSAGE_LEN).contains(&len) {
        return Err(BgpError::BadLength(len as u16));
    }
    if buf.len() < len {
        return Err(BgpError::Truncated {
            expected: len,
            available: buf.len(),
        });
    }
    let msg_type = MessageType::from_code(buf[18]).ok_or(BgpError::UnknownMessageType(buf[18]))?;
    let mut body = &buf[HEADER_LEN..len];
    let msg = match msg_type {
        MessageType::Open => BgpMessage::Open(decode_open(&mut body)?),
        MessageType::Update => BgpMessage::Update(decode_update(&mut body)?),
        MessageType::Notification => BgpMessage::Notification(decode_notification(&mut body)?),
        MessageType::Keepalive => BgpMessage::Keepalive(KeepaliveMessage),
    };
    if !body.is_empty() {
        // The header's length field promises more body than the message
        // type accounts for (a KEEPALIVE with a body, an OPEN with bytes
        // after its optional parameters).
        return Err(BgpError::BadLength(len as u16));
    }
    Ok((msg, len))
}

fn need(buf: &[u8], n: usize) -> Result<(), BgpError> {
    if buf.len() < n {
        Err(BgpError::Truncated {
            expected: n,
            available: buf.len(),
        })
    } else {
        Ok(())
    }
}

fn encode_open(o: &OpenMessage, out: &mut BytesMut) {
    out.put_u8(o.version);
    // Classic 2-octet AS field; 4-byte ASNs are truncated here and carried
    // in full inside AS_PATH (see DESIGN.md deviation note).
    out.put_u16(o.my_as.min(u16::MAX as u32) as u16);
    out.put_u16(o.hold_time);
    out.put_u32(o.bgp_identifier);
    out.put_u8(0); // No optional parameters.
}

fn decode_open(buf: &mut &[u8]) -> Result<OpenMessage, BgpError> {
    need(buf, 10)?;
    let version = buf.get_u8();
    let my_as = buf.get_u16() as u32;
    let hold_time = buf.get_u16();
    let bgp_identifier = buf.get_u32();
    let opt_len = buf.get_u8() as usize;
    if buf.len() < opt_len {
        // The declared optional-parameters length disagrees with the
        // header's message length.
        return Err(BgpError::BadLength(opt_len as u16));
    }
    buf.advance(opt_len);
    Ok(OpenMessage {
        version,
        my_as,
        hold_time,
        bgp_identifier,
    })
}

fn encode_prefixes(prefixes: &[Ipv4Prefix], out: &mut BytesMut) {
    for p in prefixes {
        out.put_u8(p.len());
        let bytes = p.addr().to_be_bytes();
        out.extend_from_slice(&bytes[..p.wire_len()]);
    }
}

fn decode_prefixes(mut buf: &[u8]) -> Result<Vec<Ipv4Prefix>, BgpError> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let len = buf.get_u8();
        if len > 32 {
            return Err(BgpError::BadPrefixLength(len));
        }
        let nbytes = (len as usize).div_ceil(8);
        need(buf, nbytes)?;
        let mut octets = [0u8; 4];
        octets[..nbytes].copy_from_slice(&buf[..nbytes]);
        buf.advance(nbytes);
        let prefix = Ipv4Prefix::new(u32::from_be_bytes(octets), len)
            .map_err(|_| BgpError::BadPrefixLength(len))?;
        out.push(prefix);
    }
    Ok(out)
}

fn encode_attribute(attr: &PathAttribute, out: &mut BytesMut) {
    let mut value = BytesMut::new();
    match attr {
        PathAttribute::Origin(o) => value.put_u8(o.code()),
        PathAttribute::AsPath(path) => {
            for seg in path.segments() {
                value.put_u8(seg.type_code());
                value.put_u8(seg.asns().len() as u8);
                for asn in seg.asns() {
                    value.put_u32(asn.value());
                }
            }
        }
        PathAttribute::NextHop(nh) => value.put_u32(u32::from(*nh)),
        PathAttribute::Med(m) => value.put_u32(*m),
        PathAttribute::LocalPref(l) => value.put_u32(*l),
        PathAttribute::AtomicAggregate => {}
        PathAttribute::Aggregator(a) => {
            value.put_u32(a.asn.value());
            value.put_u32(a.router_id);
        }
        PathAttribute::Communities(cs) => {
            for c in cs {
                value.put_u32(c.0);
            }
        }
    }
    let code = attr.code();
    let mut attr_flags = code.default_flags();
    let extended = value.len() > 255;
    if extended {
        attr_flags |= flags::EXTENDED_LENGTH;
    }
    out.put_u8(attr_flags);
    out.put_u8(code as u8);
    if extended {
        out.put_u16(value.len() as u16);
    } else {
        out.put_u8(value.len() as u8);
    }
    out.extend_from_slice(&value);
}

fn decode_attribute(buf: &mut &[u8]) -> Result<Option<PathAttribute>, BgpError> {
    if buf.len() < 3 {
        return Err(BgpError::Update(UpdateErrorSubcode::MalformedAttributeList));
    }
    let attr_flags = buf.get_u8();
    let code_raw = buf.get_u8();
    if attr_flags & 0x0f != 0 {
        // The low four flag bits are unused and must be zero (RFC 4271
        // §4.3) — this also rejects garbage flags on unknown codes.
        return Err(BgpError::Update(UpdateErrorSubcode::AttributeFlagsError));
    }
    let len = if attr_flags & flags::EXTENDED_LENGTH != 0 {
        if buf.len() < 2 {
            return Err(BgpError::Update(UpdateErrorSubcode::MalformedAttributeList));
        }
        buf.get_u16() as usize
    } else {
        if buf.is_empty() {
            return Err(BgpError::Update(UpdateErrorSubcode::MalformedAttributeList));
        }
        buf.get_u8() as usize
    };
    if buf.len() < len {
        return Err(BgpError::BadAttribute {
            code: code_raw,
            reason: "declared length overruns attribute block",
        });
    }
    let mut value = &buf[..len];
    buf.advance(len);
    let Some(code) = AttrCode::from_code(code_raw) else {
        // Unknown optional attributes are skipped (not stored).
        return Ok(None);
    };
    let expected = code.default_flags();
    if (attr_flags ^ expected) & flags::OPTIONAL != 0 {
        // A well-known attribute marked optional, or vice versa.
        return Err(BgpError::Update(UpdateErrorSubcode::AttributeFlagsError));
    }
    if expected & flags::OPTIONAL == 0 && attr_flags & flags::TRANSITIVE == 0 {
        // Well-known attributes are always transitive.
        return Err(BgpError::Update(UpdateErrorSubcode::AttributeFlagsError));
    }
    let attr = match code {
        AttrCode::Origin => {
            if value.len() != 1 {
                return Err(BgpError::BadAttribute {
                    code: code as u8,
                    reason: "origin length",
                });
            }
            let origin = Origin::from_code(value.get_u8()).ok_or(BgpError::BadAttribute {
                code: code as u8,
                reason: "origin value",
            })?;
            PathAttribute::Origin(origin)
        }
        AttrCode::AsPath => {
            let mut segments = Vec::new();
            while !value.is_empty() {
                if value.len() < 2 {
                    return Err(BgpError::BadAttribute {
                        code: code as u8,
                        reason: "segment header",
                    });
                }
                let seg_type = value.get_u8();
                let count = value.get_u8() as usize;
                if value.len() < count * 4 {
                    return Err(BgpError::BadAttribute {
                        code: code as u8,
                        reason: "segment body",
                    });
                }
                let mut asns = Vec::with_capacity(count);
                for _ in 0..count {
                    asns.push(Asn(value.get_u32()));
                }
                let seg = match seg_type {
                    1 => AsPathSegment::Set(asns),
                    2 => AsPathSegment::Sequence(asns),
                    _ => {
                        return Err(BgpError::BadAttribute {
                            code: code as u8,
                            reason: "segment type",
                        })
                    }
                };
                segments.push(seg);
            }
            PathAttribute::AsPath(AsPath::from_segments(segments))
        }
        AttrCode::NextHop => {
            if value.len() != 4 {
                return Err(BgpError::BadAttribute {
                    code: code as u8,
                    reason: "next hop length",
                });
            }
            PathAttribute::NextHop(Ipv4Addr::from(value.get_u32()))
        }
        AttrCode::Med => {
            if value.len() != 4 {
                return Err(BgpError::BadAttribute {
                    code: code as u8,
                    reason: "med length",
                });
            }
            PathAttribute::Med(value.get_u32())
        }
        AttrCode::LocalPref => {
            if value.len() != 4 {
                return Err(BgpError::BadAttribute {
                    code: code as u8,
                    reason: "local pref length",
                });
            }
            PathAttribute::LocalPref(value.get_u32())
        }
        AttrCode::AtomicAggregate => {
            if !value.is_empty() {
                return Err(BgpError::BadAttribute {
                    code: code as u8,
                    reason: "atomic aggregate length",
                });
            }
            PathAttribute::AtomicAggregate
        }
        AttrCode::Aggregator => {
            if value.len() != 8 {
                return Err(BgpError::BadAttribute {
                    code: code as u8,
                    reason: "aggregator length",
                });
            }
            let asn = Asn(value.get_u32());
            let router_id = value.get_u32();
            PathAttribute::Aggregator(Aggregator { asn, router_id })
        }
        AttrCode::Communities => {
            if !value.len().is_multiple_of(4) {
                return Err(BgpError::BadAttribute {
                    code: code as u8,
                    reason: "communities length",
                });
            }
            let mut cs = Vec::with_capacity(value.len() / 4);
            while !value.is_empty() {
                cs.push(Community(value.get_u32()));
            }
            PathAttribute::Communities(cs)
        }
    };
    Ok(Some(attr))
}

fn encode_update(u: &UpdateMessage, out: &mut BytesMut) {
    let mut withdrawn = BytesMut::new();
    encode_prefixes(&u.withdrawn, &mut withdrawn);
    out.put_u16(withdrawn.len() as u16);
    out.extend_from_slice(&withdrawn);

    let mut attrs = BytesMut::new();
    for a in &u.attributes {
        encode_attribute(a, &mut attrs);
    }
    out.put_u16(attrs.len() as u16);
    out.extend_from_slice(&attrs);

    encode_prefixes(&u.nlri, out);
}

fn decode_update(buf: &mut &[u8]) -> Result<UpdateMessage, BgpError> {
    // The header's length field already promised a complete message, so an
    // inner length field pointing past the body is a malformed message
    // (RFC 4271 §6.3), never a truncation to wait out.
    let malformed = || BgpError::Update(UpdateErrorSubcode::MalformedAttributeList);
    let reframe = |e: BgpError| match e {
        BgpError::Truncated { .. } => malformed(),
        other => other,
    };
    if buf.len() < 2 {
        return Err(malformed());
    }
    let withdrawn_len = buf.get_u16() as usize;
    if buf.len() < withdrawn_len {
        return Err(malformed());
    }
    let withdrawn = decode_prefixes(&buf[..withdrawn_len]).map_err(reframe)?;
    buf.advance(withdrawn_len);

    if buf.len() < 2 {
        return Err(malformed());
    }
    let attrs_len = buf.get_u16() as usize;
    if buf.len() < attrs_len {
        return Err(malformed());
    }
    let mut attr_buf = &buf[..attrs_len];
    buf.advance(attrs_len);
    let mut attributes = Vec::new();
    while !attr_buf.is_empty() {
        if let Some(attr) = decode_attribute(&mut attr_buf)? {
            attributes.push(attr);
        }
    }

    let nlri = decode_prefixes(buf).map_err(reframe)?;
    *buf = &[];
    Ok(UpdateMessage {
        withdrawn,
        attributes,
        nlri,
    })
}

fn encode_notification(n: &NotificationMessage, out: &mut BytesMut) {
    out.put_u8(n.error.code as u8);
    out.put_u8(n.error.subcode);
    out.extend_from_slice(&n.error.data);
}

fn decode_notification(buf: &mut &[u8]) -> Result<NotificationMessage, BgpError> {
    need(buf, 2)?;
    let code_raw = buf.get_u8();
    let subcode = buf.get_u8();
    let code = crate::error::ErrorCode::from_code(code_raw).ok_or(BgpError::BadAttribute {
        code: code_raw,
        reason: "notification code",
    })?;
    let data = buf.to_vec();
    *buf = &[];
    Ok(NotificationMessage {
        error: NotificationData {
            code,
            subcode,
            data,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::RouteAttrs;
    use crate::error::ErrorCode;

    fn sample_update() -> UpdateMessage {
        let mut attrs = RouteAttrs::originated(17557, Ipv4Addr::new(192, 0, 2, 1));
        attrs.med = Some(50);
        attrs.local_pref = Some(200);
        attrs.communities = vec![Community::new(3491, 100)];
        UpdateMessage {
            withdrawn: vec!["203.0.113.0/24".parse().expect("valid")],
            attributes: attrs.to_attributes(),
            nlri: vec![
                "208.65.152.0/22".parse().expect("valid"),
                "208.65.153.0/24".parse().expect("valid"),
            ],
        }
    }

    #[test]
    fn keepalive_roundtrip() {
        let msg = BgpMessage::Keepalive(KeepaliveMessage);
        let bytes = encode(&msg);
        assert_eq!(bytes.len(), HEADER_LEN);
        let (decoded, used) = decode(&bytes).expect("decodes");
        assert_eq!(decoded, msg);
        assert_eq!(used, HEADER_LEN);
    }

    #[test]
    fn open_roundtrip() {
        let msg = BgpMessage::Open(OpenMessage::new(64500, 180, 0xc0a80001));
        let bytes = encode(&msg);
        let (decoded, _) = decode(&bytes).expect("decodes");
        assert_eq!(decoded, msg);
    }

    #[test]
    fn update_roundtrip() {
        let msg = BgpMessage::Update(sample_update());
        let bytes = encode(&msg);
        let (decoded, used) = decode(&bytes).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, msg);
    }

    #[test]
    fn notification_roundtrip() {
        let msg = BgpMessage::Notification(NotificationMessage {
            error: NotificationData {
                code: ErrorCode::Cease,
                subcode: 2,
                data: vec![1, 2, 3],
            },
        });
        let bytes = encode(&msg);
        let (decoded, _) = decode(&bytes).expect("decodes");
        assert_eq!(decoded, msg);
    }

    #[test]
    fn bad_marker_is_rejected() {
        let msg = BgpMessage::Keepalive(KeepaliveMessage);
        let mut bytes = encode(&msg).to_vec();
        bytes[3] = 0;
        assert_eq!(decode(&bytes), Err(BgpError::BadMarker));
    }

    #[test]
    fn truncated_messages_are_rejected() {
        let msg = BgpMessage::Update(sample_update());
        let bytes = encode(&msg);
        assert!(matches!(
            decode(&bytes[..10]),
            Err(BgpError::Truncated { .. })
        ));
        assert!(matches!(
            decode(&bytes[..bytes.len() - 1]),
            Err(BgpError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_length_and_type_are_rejected() {
        let msg = BgpMessage::Keepalive(KeepaliveMessage);
        let mut bytes = encode(&msg).to_vec();
        bytes[16] = 0;
        bytes[17] = 10; // Length below header size.
        assert_eq!(decode(&bytes), Err(BgpError::BadLength(10)));
        let mut bytes = encode(&msg).to_vec();
        bytes[18] = 42;
        assert_eq!(decode(&bytes), Err(BgpError::UnknownMessageType(42)));
    }

    #[test]
    fn bad_prefix_length_is_rejected() {
        // A hand-built UPDATE whose NLRI declares a /40.
        let mut body = BytesMut::new();
        body.put_u16(0); // No withdrawn routes.
        body.put_u16(0); // No attributes.
        body.put_u8(40); // Invalid prefix length.
        let mut raw = BytesMut::new();
        raw.put_bytes(0xff, 16);
        raw.put_u16((HEADER_LEN + body.len()) as u16);
        raw.put_u8(MessageType::Update as u8);
        raw.extend_from_slice(&body);
        assert_eq!(decode(&raw), Err(BgpError::BadPrefixLength(40)));
    }

    #[test]
    fn unknown_attribute_is_skipped() {
        // Attribute type 99 (optional transitive) should be ignored.
        let mut body = BytesMut::new();
        body.put_u16(0);
        let mut attrs = BytesMut::new();
        attrs.put_u8(flags::OPTIONAL | flags::TRANSITIVE);
        attrs.put_u8(99);
        attrs.put_u8(2);
        attrs.put_u16(0xbeef);
        body.put_u16(attrs.len() as u16);
        body.extend_from_slice(&attrs);
        body.put_u8(8);
        body.put_u8(10); // 10.0.0.0/8
        let mut raw = BytesMut::new();
        raw.put_bytes(0xff, 16);
        raw.put_u16((HEADER_LEN + body.len()) as u16);
        raw.put_u8(MessageType::Update as u8);
        raw.extend_from_slice(&body);
        let (decoded, _) = decode(&raw).expect("decodes");
        let update = decoded.as_update().expect("update");
        assert!(update.attributes.is_empty());
        assert_eq!(update.nlri, vec!["10.0.0.0/8".parse().expect("valid")]);
    }

    fn frame(msg_type: MessageType, body: &[u8]) -> Vec<u8> {
        let mut raw = BytesMut::new();
        raw.put_bytes(0xff, 16);
        raw.put_u16((HEADER_LEN + body.len()) as u16);
        raw.put_u8(msg_type as u8);
        raw.extend_from_slice(body);
        raw.freeze().to_vec()
    }

    fn update_with_raw_attr(attr_flags: u8, code: u8, value: &[u8]) -> Vec<u8> {
        let mut body = BytesMut::new();
        body.put_u16(0); // No withdrawn routes.
        body.put_u16((3 + value.len()) as u16);
        body.put_u8(attr_flags);
        body.put_u8(code);
        body.put_u8(value.len() as u8);
        body.extend_from_slice(value);
        frame(MessageType::Update, &body)
    }

    #[test]
    fn keepalive_with_body_is_rejected() {
        let raw = frame(MessageType::Keepalive, &[0, 0]);
        assert_eq!(decode(&raw), Err(BgpError::BadLength(21)));
    }

    #[test]
    fn open_trailing_bytes_are_rejected() {
        let mut body = BytesMut::new();
        body.put_u8(4); // Version.
        body.put_u16(64500);
        body.put_u16(180);
        body.put_u32(0xc0a80001);
        body.put_u8(0); // No optional parameters...
        body.put_u8(0xaa); // ...yet one more byte in the body.
        let raw = frame(MessageType::Open, &body);
        assert!(matches!(decode(&raw), Err(BgpError::BadLength(_))));
    }

    #[test]
    fn open_optional_params_overrun_is_rejected() {
        let mut body = BytesMut::new();
        body.put_u8(4);
        body.put_u16(64500);
        body.put_u16(180);
        body.put_u32(0xc0a80001);
        body.put_u8(9); // Declares 9 bytes of optional params; none follow.
        let raw = frame(MessageType::Open, &body);
        assert_eq!(decode(&raw), Err(BgpError::BadLength(9)));
    }

    #[test]
    fn update_withdrawn_overrun_is_malformed() {
        // Withdrawn-routes length claims 50 bytes the body does not hold.
        let mut body = BytesMut::new();
        body.put_u16(50);
        let raw = frame(MessageType::Update, &body);
        assert_eq!(
            decode(&raw),
            Err(BgpError::Update(UpdateErrorSubcode::MalformedAttributeList))
        );
    }

    #[test]
    fn update_attrs_overrun_is_malformed() {
        // Path-attributes length claims 50 bytes the body does not hold.
        let mut body = BytesMut::new();
        body.put_u16(0);
        body.put_u16(50);
        let raw = frame(MessageType::Update, &body);
        assert_eq!(
            decode(&raw),
            Err(BgpError::Update(UpdateErrorSubcode::MalformedAttributeList))
        );
    }

    #[test]
    fn attribute_length_overrunning_its_block_is_rejected() {
        // ORIGIN declares a 10-byte value but the attribute block ends
        // after 1.
        let mut body = BytesMut::new();
        body.put_u16(0);
        body.put_u16(4); // flags + code + len + one value byte.
        body.put_u8(flags::TRANSITIVE);
        body.put_u8(AttrCode::Origin as u8);
        body.put_u8(10);
        body.put_u8(0);
        let raw = frame(MessageType::Update, &body);
        assert_eq!(
            decode(&raw),
            Err(BgpError::BadAttribute {
                code: AttrCode::Origin as u8,
                reason: "declared length overruns attribute block",
            })
        );
    }

    #[test]
    fn truncated_attribute_header_is_malformed() {
        // The attribute block ends mid-header (flags byte only).
        let mut body = BytesMut::new();
        body.put_u16(0);
        body.put_u16(1);
        body.put_u8(flags::TRANSITIVE);
        let raw = frame(MessageType::Update, &body);
        assert_eq!(
            decode(&raw),
            Err(BgpError::Update(UpdateErrorSubcode::MalformedAttributeList))
        );
    }

    #[test]
    fn unused_attribute_flag_bits_are_rejected() {
        let raw = update_with_raw_attr(flags::TRANSITIVE | 0x01, AttrCode::Origin as u8, &[0]);
        assert_eq!(
            decode(&raw),
            Err(BgpError::Update(UpdateErrorSubcode::AttributeFlagsError))
        );
        // The unused-bits rule applies to unknown codes too.
        let raw = update_with_raw_attr(flags::OPTIONAL | flags::TRANSITIVE | 0x08, 99, &[0]);
        assert_eq!(
            decode(&raw),
            Err(BgpError::Update(UpdateErrorSubcode::AttributeFlagsError))
        );
    }

    #[test]
    fn wrong_optional_bit_is_rejected() {
        // ORIGIN is well-known; marking it optional is a flags error.
        let raw = update_with_raw_attr(
            flags::OPTIONAL | flags::TRANSITIVE,
            AttrCode::Origin as u8,
            &[0],
        );
        assert_eq!(
            decode(&raw),
            Err(BgpError::Update(UpdateErrorSubcode::AttributeFlagsError))
        );
        // MED is optional; presenting it as well-known is a flags error.
        let raw = update_with_raw_attr(flags::TRANSITIVE, AttrCode::Med as u8, &[0, 0, 0, 0]);
        assert_eq!(
            decode(&raw),
            Err(BgpError::Update(UpdateErrorSubcode::AttributeFlagsError))
        );
    }

    #[test]
    fn well_known_attribute_missing_transitive_is_rejected() {
        let raw = update_with_raw_attr(0, AttrCode::Origin as u8, &[0]);
        assert_eq!(
            decode(&raw),
            Err(BgpError::Update(UpdateErrorSubcode::AttributeFlagsError))
        );
    }

    #[test]
    fn prefix_encoding_is_minimal() {
        let attrs = RouteAttrs::originated(65001, Ipv4Addr::new(10, 0, 0, 1));
        let p8: Ipv4Prefix = "10.0.0.0/8".parse().expect("valid");
        let p22: Ipv4Prefix = "208.65.152.0/22".parse().expect("valid");
        let one = encode(&BgpMessage::Update(UpdateMessage::announce(
            vec![p8],
            &attrs,
        )));
        let two = encode(&BgpMessage::Update(UpdateMessage::announce(
            vec![p22],
            &attrs,
        )));
        // /8 NLRI takes 2 bytes, /22 takes 4 bytes.
        assert_eq!(two.len() - one.len(), 2);
    }

    #[test]
    fn empty_update_roundtrip() {
        let msg = BgpMessage::Update(UpdateMessage::default());
        let (decoded, _) = decode(&encode(&msg)).expect("decodes");
        assert_eq!(decoded, msg);
    }
}
