//! Autonomous system numbers and AS paths.

use std::fmt;

/// An autonomous system number.
///
/// Four-byte ASNs (RFC 6793) are used throughout; the wire codec encodes
/// them as four octets, which is noted as a deviation from the classic
/// two-octet RFC 4271 encoding in `DESIGN.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl Asn {
    /// Returns the raw ASN value.
    pub fn value(self) -> u32 {
        self.0
    }

    /// Returns true if the ASN is in one of the private-use ranges.
    pub fn is_private(self) -> bool {
        (64512..=65534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

/// A segment of an AS path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AsPathSegment {
    /// An ordered sequence of ASNs (most recent first).
    Sequence(Vec<Asn>),
    /// An unordered set of ASNs (the result of aggregation).
    Set(Vec<Asn>),
}

impl AsPathSegment {
    /// The ASNs in the segment.
    pub fn asns(&self) -> &[Asn] {
        match self {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v,
        }
    }

    /// The RFC 4271 segment type code (1 = AS_SET, 2 = AS_SEQUENCE).
    pub fn type_code(&self) -> u8 {
        match self {
            AsPathSegment::Set(_) => 1,
            AsPathSegment::Sequence(_) => 2,
        }
    }

    /// Contribution of this segment to the AS path length used by the
    /// decision process: a set counts as one hop regardless of size.
    pub fn path_length(&self) -> usize {
        match self {
            AsPathSegment::Sequence(v) => v.len(),
            AsPathSegment::Set(v) => usize::from(!v.is_empty()),
        }
    }
}

/// An AS path: the ordered list of segments carried in the AS_PATH
/// attribute.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct AsPath {
    segments: Vec<AsPathSegment>,
}

impl AsPath {
    /// An empty path (as originated by the local AS before export).
    pub fn empty() -> Self {
        AsPath {
            segments: Vec::new(),
        }
    }

    /// Builds a path consisting of a single sequence.
    pub fn from_sequence(asns: impl IntoIterator<Item = u32>) -> Self {
        AsPath {
            segments: vec![AsPathSegment::Sequence(asns.into_iter().map(Asn).collect())],
        }
    }

    /// Creates a path from raw segments.
    pub fn from_segments(segments: Vec<AsPathSegment>) -> Self {
        AsPath { segments }
    }

    /// The path segments.
    pub fn segments(&self) -> &[AsPathSegment] {
        &self.segments
    }

    /// True if the path has no segments or only empty segments.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.asns().is_empty())
    }

    /// The length used by the decision process (AS_SET counts as 1).
    pub fn length(&self) -> usize {
        self.segments.iter().map(AsPathSegment::path_length).sum()
    }

    /// The origin AS: the last ASN of the last sequence segment, which is
    /// the AS that originated the route. Returns `None` for empty paths or
    /// paths ending in an AS_SET.
    pub fn origin_as(&self) -> Option<Asn> {
        match self.segments.last() {
            Some(AsPathSegment::Sequence(v)) => v.last().copied(),
            _ => None,
        }
    }

    /// The neighbor AS: the first ASN on the path (the AS the route was
    /// learned from).
    pub fn neighbor_as(&self) -> Option<Asn> {
        self.segments
            .first()
            .and_then(|s| s.asns().first().copied())
    }

    /// Returns true if the path visits `asn` anywhere (loop detection).
    pub fn contains(&self, asn: Asn) -> bool {
        self.segments.iter().any(|s| s.asns().contains(&asn))
    }

    /// Returns a new path with `asn` prepended `count` times, as performed
    /// when exporting a route to an eBGP peer.
    pub fn prepend(&self, asn: Asn, count: usize) -> AsPath {
        let mut segments = self.segments.clone();
        match segments.first_mut() {
            Some(AsPathSegment::Sequence(v)) => {
                for _ in 0..count {
                    v.insert(0, asn);
                }
            }
            _ => {
                segments.insert(0, AsPathSegment::Sequence(vec![asn; count]));
            }
        }
        AsPath { segments }
    }

    /// Flattens the path into a list of ASNs, ignoring segment structure.
    pub fn flatten(&self) -> Vec<Asn> {
        self.segments
            .iter()
            .flat_map(|s| s.asns().iter().copied())
            .collect()
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg {
                AsPathSegment::Sequence(v) => {
                    let parts: Vec<String> = v.iter().map(|a| a.0.to_string()).collect();
                    write!(f, "{}", parts.join(" "))?;
                }
                AsPathSegment::Set(v) => {
                    let parts: Vec<String> = v.iter().map(|a| a.0.to_string()).collect();
                    write!(f, "{{{}}}", parts.join(","))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_display_and_private_ranges() {
        assert_eq!(Asn(3356).to_string(), "AS3356");
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(65535).is_private());
        assert!(!Asn(3356).is_private());
        assert_eq!(Asn::from(17557).value(), 17557);
    }

    #[test]
    fn path_length_counts_sets_as_one() {
        let path = AsPath::from_segments(vec![
            AsPathSegment::Sequence(vec![Asn(1), Asn(2), Asn(3)]),
            AsPathSegment::Set(vec![Asn(10), Asn(11)]),
        ]);
        assert_eq!(path.length(), 4);
        assert_eq!(AsPath::empty().length(), 0);
        assert!(AsPath::empty().is_empty());
    }

    #[test]
    fn origin_and_neighbor_as() {
        // The YouTube incident: 3491 (PCCW) heard the prefix from 17557
        // (Pakistan Telecom), which became the bogus origin.
        let path = AsPath::from_sequence([3491, 17557]);
        assert_eq!(path.origin_as(), Some(Asn(17557)));
        assert_eq!(path.neighbor_as(), Some(Asn(3491)));
        assert!(path.contains(Asn(3491)));
        assert!(!path.contains(Asn(36561)));
        assert!(AsPath::empty().origin_as().is_none());
    }

    #[test]
    fn prepend_builds_new_first_segment_when_needed() {
        let path = AsPath::empty().prepend(Asn(65001), 1);
        assert_eq!(path.flatten(), vec![Asn(65001)]);
        let longer = path.prepend(Asn(65001), 2);
        assert_eq!(longer.length(), 3);
        assert_eq!(longer.origin_as(), Some(Asn(65001)));
    }

    #[test]
    fn display_formats_sets_with_braces() {
        let path = AsPath::from_segments(vec![
            AsPathSegment::Sequence(vec![Asn(1), Asn(2)]),
            AsPathSegment::Set(vec![Asn(3), Asn(4)]),
        ]);
        assert_eq!(path.to_string(), "1 2 {3,4}");
    }

    #[test]
    fn loop_detection_via_contains() {
        let path = AsPath::from_sequence([100, 200, 300]);
        assert!(path.contains(Asn(200)));
        let prepended = path.prepend(Asn(400), 1);
        assert_eq!(prepended.neighbor_as(), Some(Asn(400)));
        assert_eq!(prepended.origin_as(), Some(Asn(300)));
    }
}
