//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the API subset the workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges and
//! `Rng::gen_bool`. The generator is SplitMix64 — deterministic, seedable
//! and statistically solid for test-input generation (it is the stream
//! initialiser recommended by the xoshiro authors). It is NOT a
//! cryptographic generator, which matches how the workspace uses it.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
///
/// The widening through `i128` covers every primitive integer up to 64 bits
/// (signed and unsigned) without overflow.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to `i128`.
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (the value is always in range by construction).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniformly distributed value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Single blanket impls per range shape (not per integer type): type
// inference must unify an unsuffixed literal range like `0..50` with the
// result type the caller needs, exactly as the real crate's blanket
// `impl<T: SampleUniform> SampleRange<T> for Range<T>` does.
impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        let span = (hi - lo) as u128;
        T::from_i128(lo + (rng.next_u64() as u128 % span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo) as u128 + 1;
        T::from_i128(lo + (rng.next_u64() as u128 % span) as i128)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // 53 random bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u8..=2);
            assert!(w <= 2);
            let x = rng.gen_range(5usize..6);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (1_500..3_500).contains(&hits),
            "p=0.25 hit rate was {hits}/10000"
        );
    }
}
