//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, strategies for integer ranges,
//! tuples, `prop::collection::vec` and `prop::option::of`, `any::<T>()`,
//! [`ProptestConfig`], and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros. Test cases are generated from a seed derived
//! from the test name, so runs are deterministic. There is **no shrinking**:
//! a failing case panics with the plain assertion message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator handed to strategies (deterministic per test).
pub type TestRng = StdRng;

/// Builds the deterministic generator for a named test.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// Run-time configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a depth-bounded recursive strategy, mirroring
    /// `proptest::strategy::Strategy::prop_recursive`. `self` is the leaf
    /// case; `recurse` wraps the strategy for one level into the strategy
    /// for the next. Each of the `depth` levels mixes leaves back in with
    /// equal weight, so samples stay small. The size-tuning parameters of
    /// the real crate are accepted but ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = BoxedStrategy(std::rc::Rc::new(self));
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current);
            current = BoxedStrategy(std::rc::Rc::new(Union::new(vec![
                Box::new(leaf.clone()),
                Box::new(deeper),
            ])));
        }
        current
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// A strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// A cheaply clonable, type-erased strategy, mirroring
/// `proptest::strategy::BoxedStrategy`. [`Strategy::prop_recursive`] hands
/// one to its recursion closure so sub-strategies can be reused freely.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Uniform choice between alternative strategies for the same type — the
/// engine behind [`prop_oneof!`].
pub struct Union<T> {
    alternatives: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over the given alternatives.
    pub fn new(alternatives: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!alternatives.is_empty(), "empty prop_oneof!");
        Union { alternatives }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.alternatives.len());
        self.alternatives[pick].sample(rng)
    }
}

/// Picks one of the strategies uniformly per sample, mirroring
/// `proptest::prop_oneof!` (without case weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let alternatives: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::Union::new(alternatives)
    }};
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples uniformly from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Combinator namespaces, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// The strategy returned by [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        /// Generates `Vec`s of `element` values with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(!size.is_empty(), "empty size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// The strategy returned by [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Generates `None` a quarter of the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_bool(0.25) {
                    None
                } else {
                    Some(self.inner.sample(rng))
                }
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, Union,
    };
}

/// Asserts a condition inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                let ($($arg,)+) = ($($crate::Strategy::sample(&$strategy, &mut rng),)+);
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (1u32..10, 0u8..=3), v in prop::collection::vec(any::<u16>(), 2..5)) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b <= 3);
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn map_and_option(x in (0u32..100).prop_map(|v| v * 2), o in prop::option::of(5u64..6)) {
            prop_assert_eq!(x % 2, 0);
            if let Some(v) = o {
                prop_assert_eq!(v, 5);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(7u32), 100u32..200, (0u32..3).prop_map(|v| v + 10)]) {
            prop_assert!(x == 7 || (100..200).contains(&x) || (10..13).contains(&x));
        }

        #[test]
        fn recursive_is_depth_bounded(
            n in (0u32..10).prop_recursive(3, 8, 2, |inner| {
                (inner, 0u32..10).prop_map(|(a, b)| a.max(b) + 100)
            }),
        ) {
            // Each level adds exactly 100, and the depth bound is 3.
            prop_assert!(n < 410);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_rng("alpha");
        let mut b = crate::test_rng("alpha");
        let s = any::<u64>();
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
