//! Offline stand-in for the `bytes` crate.
//!
//! Implements the API subset the BGP wire codec uses — [`Bytes`],
//! [`BytesMut`], [`Buf`] for byte slices and [`BufMut`] — with the same
//! big-endian semantics as the real crate. Backed by plain `Vec<u8>`
//! (no refcounted sharing; the codec never splits buffers).

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A mutable, growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor (big-endian getters, like the real crate).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes. Panics when fewer than `cnt` remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer (big-endian putters, like the real crate).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut out = BytesMut::with_capacity(16);
        out.put_bytes(0xff, 3);
        out.put_u8(7);
        out.put_u16(0xBEEF);
        out.put_u32(0xDEAD_BEEF);
        out.extend_from_slice(&[1, 2]);
        let frozen = out.freeze();
        assert_eq!(frozen.len(), 12);

        let mut cursor: &[u8] = &frozen;
        cursor.advance(3);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16(), 0xBEEF);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.remaining(), 2);
        assert_eq!(cursor.chunk(), &[1, 2]);
    }
}
