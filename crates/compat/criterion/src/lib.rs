//! Offline stand-in for the `criterion` crate.
//!
//! The benches in `crates/bench/benches/` are written against the Criterion
//! API (`benchmark_group`, `sample_size`, `bench_function`, `iter`,
//! `criterion_group!`, `criterion_main!`). This vendored crate implements
//! that surface with a plain wall-clock harness: each benchmark runs a
//! handful of warm-up iterations, then `sample_size` timed samples, and
//! prints min / mean / max per-iteration times.
//!
//! It has none of Criterion's statistics, plotting or comparison features —
//! the goal is that `cargo bench` compiles, runs and reports useful numbers
//! in an environment with no crates.io access.
//!
//! The `DICE_BENCH_SAMPLE_SIZE` environment variable overrides every
//! benchmark's sample size (CI's bench-smoke step sets it to a small value
//! so the suite runs in seconds while still executing every benchmark body
//! and its assertions).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 50,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 50, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine` once per sample and records the samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        for _ in 0..self.budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

const WARMUP_ITERS: usize = 3;

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let sample_size = std::env::var("DICE_BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(sample_size);
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        budget: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name:<44} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "  {name:<44} [min {} | mean {} | max {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        bencher.samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches` passes
            // test-harness flags. Only flag-free or `--bench` invocations run.
            let run = std::env::args().skip(1).all(|a| a == "--bench" || !a.starts_with("--"));
            if run {
                $( $group(); )+
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 5 + 3, "5 samples plus 3 warm-up iterations");
    }
}
