//! Coverage-guided search over the fault-plan space, with automatic
//! counterexample shrinking.
//!
//! Since the fault layer landed, [`crate::LiveOrchestrator::with_fault_plan`]
//! could only *replay* one hand-written [`FaultPlan`] — the adversarial
//! dimension was frozen at whatever an operator already imagined. This
//! module turns the plan space itself into a searched exploration surface,
//! the same move the policy layer made for filter branches:
//!
//! 1. [`FaultPlanSearch`] generates and mutates plans from a seeded RNG
//!    (add / remove / retarget / reschedule specs, splice two plans,
//!    reseed the probabilistic draws) and runs each candidate through a
//!    fresh scenario simulator under the configured orchestrator.
//! 2. Every run is scored for *novelty* — never-seen [`Fault::fleet_key`]s,
//!    checker classes, or fault-trace event shapes — and novel plans enter
//!    the mutation pool, biasing the search toward productive regions.
//! 3. When a plan surfaces a fault the empty-plan control run does not,
//!    the plan is delta-debugged down to a **1-minimal** trigger (no
//!    single spec can be removed without losing the fault) and emitted as
//!    a replayable [`ReproBundle`]: plan, seed, topology fingerprint and
//!    expected digests. [`ReproBundle::replay`] re-runs it byte-identically
//!    — every repro is deterministic from `(plan, seed)` alone.
//!
//! The established invariants hold throughout: a zero-search run and the
//! empty-plan baseline are byte-identical to a plain orchestrator run, and
//! the search's counters surface only in appended fields — the
//! [`crate::LiveReport`] search line renders only when a search actually
//! ran, and the [`crate::ControlSnapshot`] v3 lines append after the v2
//! block.

use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dice_netsim::topology::NodeId;
use dice_netsim::{FaultPlan, FaultSpec, Simulator};

use crate::checker::Fault;
use crate::control::SearchCounters;
use crate::live::{LiveOrchestrator, LiveReport, SearchSummary};

/// A repeatable live-exploration scenario the search can re-run at will:
/// how to build a fresh simulator in its starting state, and how to drive
/// traffic through it epoch by epoch.
///
/// Both methods must be deterministic — the search runs the scenario once
/// per candidate plan and compares digests across runs, so any
/// nondeterminism would be indistinguishable from an injected fault.
pub trait FaultScenario: Send + Sync {
    /// Builds a fresh simulator positioned at the scenario's starting
    /// state. Called once per candidate run; two calls must produce
    /// byte-identical simulators.
    fn build(&self) -> Simulator;

    /// Drives one epoch of traffic, returning `false` to end the run
    /// (mirroring the driver contract of
    /// [`crate::LiveOrchestrator::run`]). The epochs a plan's specs name
    /// refer to this clock.
    fn drive(&self, sim: &mut Simulator, epoch: usize) -> bool;
}

/// A stable, human-readable fingerprint of a simulator's topology: node
/// count plus each node's name and router id. Recorded in every
/// [`ReproBundle`] so a repro replayed against the wrong scenario fails
/// loudly instead of silently diverging.
pub fn topology_fingerprint(sim: &Simulator) -> String {
    let mut out = format!("nodes={}", sim.len());
    for i in 0..sim.len() {
        let node = NodeId(i);
        let _ = write!(
            out,
            " node{}={}@{}",
            i,
            sim.name(node),
            sim.router(node).router_id()
        );
    }
    out
}

/// The flat string form of [`Fault::fleet_key`], used as the search's
/// dedup and targeting key for discovered faults.
pub fn fault_key(fault: &Fault) -> String {
    let (checker, prefix, kind) = fault.fleet_key();
    format!("{checker}|{prefix}|{kind}")
}

/// Which [`FaultSpec`] kinds the generator and mutator may produce.
/// Narrowing the mask focuses the search: a partitions-only search
/// explores only multi-link failures, for example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecKindMask {
    /// Allow [`FaultSpec::LinkFlap`].
    pub link_flaps: bool,
    /// Allow [`FaultSpec::SessionReset`].
    pub session_resets: bool,
    /// Allow the probabilistic message faults
    /// ([`FaultSpec::MessageDrop`] / [`FaultSpec::MessageDuplicate`] /
    /// [`FaultSpec::MessageReorder`]).
    pub message_faults: bool,
    /// Allow [`FaultSpec::Partition`] / [`FaultSpec::Heal`] pairs.
    pub partitions: bool,
}

impl Default for SpecKindMask {
    fn default() -> Self {
        SpecKindMask {
            link_flaps: true,
            session_resets: true,
            message_faults: true,
            partitions: true,
        }
    }
}

impl SpecKindMask {
    /// Every spec kind enabled.
    pub fn all() -> Self {
        Self::default()
    }

    /// Only partition/heal specs: the multi-link failure surface.
    pub fn only_partitions() -> Self {
        SpecKindMask {
            link_flaps: false,
            session_resets: false,
            message_faults: false,
            partitions: true,
        }
    }

    fn enabled_tags(&self) -> Vec<u8> {
        let mut tags = Vec::new();
        if self.link_flaps {
            tags.push(0);
        }
        if self.session_resets {
            tags.push(1);
        }
        if self.message_faults {
            tags.extend([2, 3, 4]);
        }
        if self.partitions {
            tags.push(5);
        }
        tags
    }
}

/// A minimized, replayable counterexample: the smallest plan the shrinker
/// found that still triggers a fault the empty-plan control run does not,
/// plus everything needed to re-run it byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproBundle {
    /// The 1-minimal triggering plan (its seed is part of the replay
    /// contract).
    pub plan: FaultPlan,
    /// Fingerprint of the scenario topology the repro was minimized
    /// against ([`topology_fingerprint`]).
    pub topology_fingerprint: String,
    /// The triggered fault, as sighted in the minimized run.
    pub fault: Fault,
    /// The fault's search key ([`fault_key`]).
    pub fault_key: String,
    /// Expected [`dice_netsim::FaultTrace::digest`] of the minimized run.
    pub expected_trace_digest: String,
    /// Expected [`dice_netsim::FaultTrace::fingerprint`] of the minimized
    /// run.
    pub expected_trace_fingerprint: u64,
    /// Expected [`crate::LiveReport::digest`] of the minimized run.
    pub expected_live_digest: String,
}

/// What replaying a [`ReproBundle`] produced, for byte-identity checks.
#[derive(Debug, Clone)]
pub struct ReproReplay {
    /// The replayed run's fault-trace digest.
    pub trace_digest: String,
    /// The replayed run's live-report digest.
    pub live_digest: String,
    /// True when the bundled fault key fired again.
    pub triggered: bool,
    /// The replayed run's full report.
    pub report: LiveReport,
}

impl ReproBundle {
    /// The RNG seed of the minimized plan — with the plan itself, the
    /// complete determinism anchor.
    pub fn seed(&self) -> u64 {
        self.plan.seed()
    }

    /// Re-runs the bundled plan against a fresh scenario simulator under
    /// `orchestrator` (use the same configuration the search ran with) and
    /// returns the digests for comparison via [`ReproBundle::matches`].
    pub fn replay(
        &self,
        orchestrator: &LiveOrchestrator,
        scenario: &dyn FaultScenario,
    ) -> ReproReplay {
        let mut sim = scenario.build();
        let runner = orchestrator.clone().with_fault_plan(self.plan.clone());
        let report = runner.run(&mut sim, |sim, epoch| scenario.drive(sim, epoch));
        let triggered = report
            .faults
            .iter()
            .any(|f| fault_key(&f.fault) == self.fault_key);
        ReproReplay {
            trace_digest: sim.fault_trace().digest(),
            live_digest: report.digest(),
            triggered,
            report,
        }
    }

    /// True when a replay reproduced the bundle byte-identically: same
    /// fault-trace digest, same live digest, fault triggered again.
    pub fn matches(&self, replay: &ReproReplay) -> bool {
        replay.triggered
            && replay.trace_digest == self.expected_trace_digest
            && replay.live_digest == self.expected_live_digest
    }
}

/// What one search produced: counters, per-plan injection counts, and the
/// minimized repros.
#[derive(Debug, Clone, Default)]
pub struct SearchReport {
    /// Candidate plans evaluated (baseline and shrinker probes excluded).
    pub plans_tried: usize,
    /// Candidates that surfaced never-seen coverage.
    pub novel_plans: usize,
    /// Extra runs the shrinker spent minimizing counterexamples.
    pub shrink_runs: usize,
    /// Faults injected by each candidate plan, in evaluation order.
    pub injected_per_plan: Vec<u64>,
    /// Minimized, replayable counterexamples, deduplicated by fault key,
    /// in discovery order.
    pub repros: Vec<ReproBundle>,
    /// Fleet keys the empty-plan control run already reports (a candidate
    /// fault only becomes a counterexample if its key is *not* here).
    pub baseline_fault_keys: BTreeSet<String>,
    /// The empty-plan control run's live digest — must equal a plain
    /// orchestrator run's digest byte-for-byte.
    pub baseline_live_digest: String,
    /// The empty-plan control run's report with the search counters
    /// attached ([`SearchSummary`]).
    pub report: LiveReport,
    /// Wall-clock duration of the whole search.
    pub elapsed: Duration,
}

impl SearchReport {
    /// The counters the report carries, in the form the control plane and
    /// [`crate::LiveReport`] export.
    pub fn summary(&self) -> SearchSummary {
        SearchSummary {
            plans_tried: self.plans_tried as u64,
            novel_plans: self.novel_plans as u64,
            minimized_repros: self.repros.len() as u64,
            injected_total: self.injected_per_plan.iter().sum(),
        }
    }

    /// A canonical rendering of every deterministic field: the counters,
    /// per-plan injection counts, and one line per minimized repro.
    /// Byte-identical across reruns of the same seeded search.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "search plans={} novel={} repros={} shrink-runs={}",
            self.plans_tried,
            self.novel_plans,
            self.repros.len(),
            self.shrink_runs
        );
        let injected: Vec<String> = self
            .injected_per_plan
            .iter()
            .map(|n| n.to_string())
            .collect();
        let _ = writeln!(out, "injected-per-plan=[{}]", injected.join(","));
        let _ = writeln!(out, "baseline-faults={}", self.baseline_fault_keys.len());
        for repro in &self.repros {
            let _ = writeln!(
                out,
                "repro key={} specs={} seed={} trace-fingerprint={:016x}",
                repro.fault_key,
                repro.plan.specs().len(),
                repro.seed(),
                repro.expected_trace_fingerprint
            );
        }
        out
    }
}

/// What one candidate run surfaced, reduced to the coverage signals the
/// search scores on.
struct PlanProbe {
    fleet_keys: BTreeSet<String>,
    checkers: BTreeSet<String>,
    shapes: BTreeSet<String>,
    injected: u64,
    trace_digest: String,
    trace_fingerprint: u64,
    live_digest: String,
    report: LiveReport,
}

/// The coverage-guided explorer over [`FaultPlan`] space.
///
/// Deterministic end to end: the generator and mutator draw from one RNG
/// seeded with [`FaultPlanSearch::with_seed`], every candidate run is
/// itself deterministic from `(plan, seed)`, and the result is a
/// [`SearchReport`] whose digest is byte-identical across reruns.
#[derive(Debug, Clone)]
pub struct FaultPlanSearch {
    orchestrator: LiveOrchestrator,
    seed: u64,
    budget: usize,
    max_specs: usize,
    epoch_horizon: u64,
    kinds: SpecKindMask,
}

impl FaultPlanSearch {
    /// Creates a search driving candidate runs through `orchestrator`
    /// (its checkers, budgets and control plane apply to every run).
    pub fn new(orchestrator: LiveOrchestrator) -> Self {
        FaultPlanSearch {
            orchestrator,
            seed: 0xD1CE,
            budget: 16,
            max_specs: 6,
            epoch_horizon: 4,
            kinds: SpecKindMask::default(),
        }
    }

    /// Seeds the generator/mutator RNG (default `0xD1CE`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how many candidate plans to evaluate (default 16). Zero means
    /// baseline only.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Caps the number of specs a candidate plan may carry (default 6,
    /// clamped to at least 1).
    pub fn with_max_specs(mut self, max_specs: usize) -> Self {
        self.max_specs = max_specs.max(1);
        self
    }

    /// Sets the largest epoch generated specs may name (default 4). Align
    /// it with the scenario's driver horizon so scheduled faults actually
    /// fire.
    pub fn with_epoch_horizon(mut self, horizon: u64) -> Self {
        self.epoch_horizon = horizon.max(1);
        self
    }

    /// Restricts which spec kinds the generator and mutator may produce.
    pub fn with_spec_kinds(mut self, kinds: SpecKindMask) -> Self {
        self.kinds = kinds;
        self
    }

    /// The orchestrator candidate runs execute under.
    pub fn orchestrator(&self) -> &LiveOrchestrator {
        &self.orchestrator
    }

    /// Runs the search: empty-plan baseline, then `budget` candidates with
    /// novelty-biased mutation, shrinking every fault the baseline does
    /// not report into a [`ReproBundle`]. Publishes the final
    /// [`crate::ControlSnapshot`] (with search counters) through the
    /// orchestrator's control plane.
    pub fn run(&self, scenario: &dyn FaultScenario) -> SearchReport {
        let started = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let probe_sim = scenario.build();
        let fingerprint = topology_fingerprint(&probe_sim);
        let node_count = probe_sim.len();
        drop(probe_sim);

        let baseline = self.run_plan(scenario, &FaultPlan::default());
        let mut seen_keys = baseline.fleet_keys.clone();
        let mut seen_checkers = baseline.checkers.clone();
        let mut seen_shapes = baseline.shapes.clone();

        let mut report = SearchReport {
            baseline_fault_keys: baseline.fleet_keys.clone(),
            baseline_live_digest: baseline.live_digest.clone(),
            ..SearchReport::default()
        };

        // Fault plans need at least two nodes to name a link; a degenerate
        // scenario degrades to the baseline run.
        let budget = if node_count >= 2 { self.budget } else { 0 };
        let mut pool: Vec<FaultPlan> = Vec::new();
        let mut repro_keys: BTreeSet<String> = BTreeSet::new();

        for _ in 0..budget {
            let plan = if pool.is_empty() || rng.gen_bool(0.35) {
                self.fresh_plan(&mut rng, node_count)
            } else {
                let base = pool[rng.gen_range(0..pool.len())].clone();
                self.mutate(base, &pool, &mut rng, node_count)
            };
            let probe = self.run_plan(scenario, &plan);
            report.plans_tried += 1;
            report.injected_per_plan.push(probe.injected);

            let novelty = probe.fleet_keys.difference(&seen_keys).count()
                + probe.checkers.difference(&seen_checkers).count()
                + probe.shapes.difference(&seen_shapes).count();
            if novelty > 0 {
                report.novel_plans += 1;
                pool.push(plan.clone());
            }
            seen_keys.extend(probe.fleet_keys.iter().cloned());
            seen_checkers.extend(probe.checkers.iter().cloned());
            seen_shapes.extend(probe.shapes.iter().cloned());

            let fresh_faults: Vec<String> = probe
                .fleet_keys
                .iter()
                .filter(|k| !baseline.fleet_keys.contains(*k) && !repro_keys.contains(*k))
                .cloned()
                .collect();
            for key in fresh_faults {
                let minimized = self.minimize(scenario, &plan, &key, &mut report.shrink_runs);
                let final_probe = self.run_plan(scenario, &minimized);
                let Some(fault) = final_probe
                    .report
                    .faults
                    .iter()
                    .find(|f| fault_key(&f.fault) == key)
                    .map(|f| f.fault.clone())
                else {
                    // The minimization invariant guarantees the key fires;
                    // a miss here would mean the scenario is
                    // nondeterministic, which the caller contract forbids.
                    continue;
                };
                repro_keys.insert(key.clone());
                report.repros.push(ReproBundle {
                    plan: minimized,
                    topology_fingerprint: fingerprint.clone(),
                    fault,
                    fault_key: key,
                    expected_trace_digest: final_probe.trace_digest,
                    expected_trace_fingerprint: final_probe.trace_fingerprint,
                    expected_live_digest: final_probe.live_digest,
                });
            }
        }

        let mut live = baseline.report;
        live.search = Some(SearchSummary {
            plans_tried: report.plans_tried as u64,
            novel_plans: report.novel_plans as u64,
            minimized_repros: report.repros.len() as u64,
            injected_total: report.injected_per_plan.iter().sum(),
        });
        report.report = live;
        report.elapsed = started.elapsed();

        let plane = self.orchestrator.control_plane();
        let mut snapshot = (*plane.sample()).clone();
        snapshot.search = SearchCounters::from(&report.summary());
        plane.publish(snapshot);

        report
    }

    /// Replays a repro under this search's orchestrator configuration.
    pub fn replay(&self, scenario: &dyn FaultScenario, repro: &ReproBundle) -> ReproReplay {
        repro.replay(&self.orchestrator, scenario)
    }

    fn run_plan(&self, scenario: &dyn FaultScenario, plan: &FaultPlan) -> PlanProbe {
        let mut sim = scenario.build();
        let runner = self.orchestrator.clone().with_fault_plan(plan.clone());
        let report = runner.run(&mut sim, |sim, epoch| scenario.drive(sim, epoch));
        let mut fleet_keys = BTreeSet::new();
        let mut checkers = BTreeSet::new();
        for fault in &report.faults {
            fleet_keys.insert(fault_key(&fault.fault));
            checkers.insert(fault.fault.checker.clone());
        }
        // An event's "shape" is its class plus endpoints — the rendered
        // line with volatile payloads (timestamps, counts) stripped by
        // keeping only the first two whitespace-separated tokens.
        let mut shapes = BTreeSet::new();
        for event in sim.fault_trace().events() {
            let line = event.kind.to_string();
            let shape: Vec<&str> = line.split_whitespace().take(2).collect();
            shapes.insert(shape.join(" "));
        }
        PlanProbe {
            fleet_keys,
            checkers,
            shapes,
            injected: report.injected_faults,
            trace_digest: sim.fault_trace().digest(),
            trace_fingerprint: sim.fault_trace().fingerprint(),
            live_digest: report.digest(),
            report,
        }
    }

    /// Greedy delta debugging to a 1-minimal plan: repeatedly try dropping
    /// each single spec, keeping any removal after which `key` still
    /// fires, until a full pass removes nothing. A single-spec plan is
    /// 1-minimal by the empty-plan invariant (the empty plan is the
    /// baseline, which does not report `key`).
    fn minimize(
        &self,
        scenario: &dyn FaultScenario,
        plan: &FaultPlan,
        key: &str,
        shrink_runs: &mut usize,
    ) -> FaultPlan {
        let mut current = plan.clone();
        loop {
            let mut progressed = false;
            let mut index = 0;
            while index < current.specs().len() && current.specs().len() > 1 {
                let mut specs = current.specs().to_vec();
                specs.remove(index);
                let candidate = rebuild_plan(current.seed(), specs);
                *shrink_runs += 1;
                if self.run_plan(scenario, &candidate).fleet_keys.contains(key) {
                    current = candidate;
                    progressed = true;
                } else {
                    index += 1;
                }
            }
            if !progressed {
                return current;
            }
        }
    }

    fn fresh_plan(&self, rng: &mut StdRng, nodes: usize) -> FaultPlan {
        let seed = rng.gen_range(0..u64::MAX);
        let target = rng.gen_range(1..=self.max_specs.min(3));
        let mut specs = Vec::new();
        while specs.len() < target {
            specs.extend(self.random_specs(rng, nodes));
        }
        specs.truncate(self.max_specs);
        rebuild_plan(seed, specs)
    }

    fn mutate(
        &self,
        base: FaultPlan,
        pool: &[FaultPlan],
        rng: &mut StdRng,
        nodes: usize,
    ) -> FaultPlan {
        let mut seed = base.seed();
        let mut specs = base.specs().to_vec();
        match rng.gen_range(0..6u8) {
            // Add one (or a paired) random spec.
            0 => specs.extend(self.random_specs(rng, nodes)),
            // Remove one spec.
            1 => {
                if !specs.is_empty() {
                    let index = rng.gen_range(0..specs.len());
                    specs.remove(index);
                }
            }
            // Retarget one spec onto different nodes, keeping its timing.
            2 => {
                if !specs.is_empty() {
                    let index = rng.gen_range(0..specs.len());
                    specs[index] = retarget_spec(specs[index].clone(), rng, nodes);
                }
            }
            // Reschedule one spec's epochs, keeping its target.
            3 => {
                if !specs.is_empty() {
                    let index = rng.gen_range(0..specs.len());
                    specs[index] = self.reschedule_spec(specs[index].clone(), rng);
                }
            }
            // Splice: this plan's prefix, another plan's suffix.
            4 => {
                let other: Vec<FaultSpec> = if pool.is_empty() {
                    self.random_specs(rng, nodes)
                } else {
                    pool[rng.gen_range(0..pool.len())].specs().to_vec()
                };
                let cut = rng.gen_range(0..=specs.len());
                let other_cut = rng.gen_range(0..=other.len());
                specs.truncate(cut);
                specs.extend(other.into_iter().skip(other_cut));
            }
            // Reseed the probabilistic draws.
            _ => seed = rng.gen_range(0..u64::MAX),
        }
        specs.truncate(self.max_specs);
        if specs.is_empty() {
            specs = self.random_specs(rng, nodes);
            specs.truncate(self.max_specs);
        }
        rebuild_plan(seed, specs)
    }

    /// One random spec — or a spec *pair* for partitions, which usually
    /// generate with a matching heal so the post-heal divergence window
    /// the wedgie checker watches actually opens.
    fn random_specs(&self, rng: &mut StdRng, nodes: usize) -> Vec<FaultSpec> {
        let tags = self.kinds.enabled_tags();
        debug_assert!(!tags.is_empty(), "the spec-kind mask enables nothing");
        let horizon = self.epoch_horizon;
        match tags[rng.gen_range(0..tags.len())] {
            0 => {
                let (a, b) = random_pair(rng, nodes);
                let down_epoch = rng.gen_range(0..horizon);
                let up_epoch = rng.gen_range(down_epoch + 1..=horizon);
                vec![FaultSpec::LinkFlap {
                    a,
                    b,
                    down_epoch,
                    up_epoch,
                }]
            }
            1 => {
                let (a, b) = random_pair(rng, nodes);
                vec![FaultSpec::SessionReset {
                    a,
                    b,
                    epoch: rng.gen_range(0..=horizon),
                }]
            }
            2 => {
                let (a, b) = random_pair(rng, nodes);
                vec![FaultSpec::MessageDrop {
                    a,
                    b,
                    probability: random_probability(rng),
                }]
            }
            3 => {
                let (a, b) = random_pair(rng, nodes);
                vec![FaultSpec::MessageDuplicate {
                    a,
                    b,
                    probability: random_probability(rng),
                }]
            }
            4 => {
                let (a, b) = random_pair(rng, nodes);
                vec![FaultSpec::MessageReorder {
                    a,
                    b,
                    probability: random_probability(rng),
                    max_extra_ticks: rng.gen_range(1..=4),
                }]
            }
            _ => {
                let node = NodeId(rng.gen_range(0..nodes));
                let cut = rng.gen_range(0..horizon);
                let mut specs = vec![FaultSpec::Partition {
                    nodes: vec![node],
                    epoch: cut,
                }];
                if rng.gen_bool(0.7) {
                    specs.push(FaultSpec::Heal {
                        nodes: vec![node],
                        epoch: rng.gen_range(cut + 1..=horizon),
                    });
                }
                specs
            }
        }
    }

    fn reschedule_spec(&self, spec: FaultSpec, rng: &mut StdRng) -> FaultSpec {
        let horizon = self.epoch_horizon;
        match spec {
            FaultSpec::LinkFlap { a, b, .. } => {
                let down_epoch = rng.gen_range(0..horizon);
                let up_epoch = rng.gen_range(down_epoch + 1..=horizon);
                FaultSpec::LinkFlap {
                    a,
                    b,
                    down_epoch,
                    up_epoch,
                }
            }
            FaultSpec::SessionReset { a, b, .. } => FaultSpec::SessionReset {
                a,
                b,
                epoch: rng.gen_range(0..=horizon),
            },
            FaultSpec::Partition { nodes, .. } => FaultSpec::Partition {
                nodes,
                epoch: rng.gen_range(0..horizon),
            },
            FaultSpec::Heal { nodes, .. } => FaultSpec::Heal {
                nodes,
                epoch: rng.gen_range(1..=horizon),
            },
            // The probabilistic specs carry no schedule.
            other => other,
        }
    }
}

/// Rebuilds a plan from a seed and spec list (plans are append-only by
/// construction).
fn rebuild_plan(seed: u64, specs: Vec<FaultSpec>) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for spec in specs {
        plan = plan.with_spec(spec);
    }
    plan
}

/// Two distinct node ids, uniformly drawn. Requires `nodes >= 2`.
fn random_pair(rng: &mut StdRng, nodes: usize) -> (NodeId, NodeId) {
    let a = rng.gen_range(0..nodes);
    let mut b = rng.gen_range(0..nodes - 1);
    if b >= a {
        b += 1;
    }
    (NodeId(a), NodeId(b))
}

/// A probability in `[0, 1]` quantized to percent, keeping generated plans
/// readable and the RNG stream compact.
fn random_probability(rng: &mut StdRng) -> f64 {
    f64::from(rng.gen_range(0u32..=100)) / 100.0
}

/// Retargets a spec onto freshly drawn nodes, keeping kind and timing.
fn retarget_spec(spec: FaultSpec, rng: &mut StdRng, nodes: usize) -> FaultSpec {
    match spec {
        FaultSpec::LinkFlap {
            down_epoch,
            up_epoch,
            ..
        } => {
            let (a, b) = random_pair(rng, nodes);
            FaultSpec::LinkFlap {
                a,
                b,
                down_epoch,
                up_epoch,
            }
        }
        FaultSpec::SessionReset { epoch, .. } => {
            let (a, b) = random_pair(rng, nodes);
            FaultSpec::SessionReset { a, b, epoch }
        }
        FaultSpec::MessageDrop { probability, .. } => {
            let (a, b) = random_pair(rng, nodes);
            FaultSpec::MessageDrop { a, b, probability }
        }
        FaultSpec::MessageDuplicate { probability, .. } => {
            let (a, b) = random_pair(rng, nodes);
            FaultSpec::MessageDuplicate { a, b, probability }
        }
        FaultSpec::MessageReorder {
            probability,
            max_extra_ticks,
            ..
        } => {
            let (a, b) = random_pair(rng, nodes);
            FaultSpec::MessageReorder {
                a,
                b,
                probability,
                max_extra_ticks,
            }
        }
        FaultSpec::Partition { epoch, .. } => FaultSpec::Partition {
            nodes: vec![NodeId(rng.gen_range(0..nodes))],
            epoch,
        },
        FaultSpec::Heal { epoch, .. } => FaultSpec::Heal {
            nodes: vec![NodeId(rng.gen_range(0..nodes))],
            epoch,
        },
        other => other,
    }
}

impl fmt::Display for SearchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DiCE fault-plan search: {} plan(s) tried, {} novel, {} minimized repro(s) in {:?}",
            self.plans_tried,
            self.novel_plans,
            self.repros.len(),
            self.elapsed,
        )?;
        for repro in &self.repros {
            writeln!(
                f,
                "  repro [{} spec(s), seed {}]: {}",
                repro.plan.specs().len(),
                repro.seed(),
                repro.fault,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::DiceBuilder;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::message::{BgpMessage, UpdateMessage};
    use dice_bgp::AsPath;
    use dice_netsim::topology::{addr, figure2_topology, CustomerFilterMode};
    use dice_symexec::EngineConfig;

    /// The Figure 2 topology with the filter *missing* (no checker fires on
    /// a quiescent run), driven by two customer announcement epochs.
    struct Figure2Scenario;

    impl FaultScenario for Figure2Scenario {
        fn build(&self) -> Simulator {
            Simulator::new(&figure2_topology(CustomerFilterMode::Missing))
        }

        fn drive(&self, sim: &mut Simulator, epoch: usize) -> bool {
            let provider = (0..sim.len())
                .map(NodeId)
                .find(|n| sim.name(*n) == "Provider")
                .expect("figure 2 has a Provider");
            let blocks = ["41.1.0.0/16", "41.64.0.0/12"];
            if let Some(block) = blocks.get(epoch) {
                let mut attrs = RouteAttrs::default();
                attrs.as_path = AsPath::from_sequence([17557, 17557]);
                attrs.next_hop = std::net::Ipv4Addr::new(10, 0, 1, 1);
                sim.inject(
                    provider,
                    addr::CUSTOMER,
                    BgpMessage::Update(UpdateMessage::announce(
                        vec![block.parse().expect("valid")],
                        &attrs,
                    )),
                );
            }
            epoch + 1 < blocks.len()
        }
    }

    fn small_orchestrator() -> LiveOrchestrator {
        let session = DiceBuilder::new()
            .engine(EngineConfig::default().with_max_runs(2))
            .build();
        LiveOrchestrator::new(session).with_core_budget(1)
    }

    #[test]
    fn generated_plans_respect_the_spec_kind_mask() {
        let search = FaultPlanSearch::new(small_orchestrator())
            .with_spec_kinds(SpecKindMask::only_partitions());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            let plan = search.fresh_plan(&mut rng, 3);
            assert!(!plan.specs().is_empty());
            for spec in plan.specs() {
                assert!(
                    matches!(spec, FaultSpec::Partition { .. } | FaultSpec::Heal { .. }),
                    "partitions-only mask produced {spec:?}"
                );
            }
        }
    }

    #[test]
    fn random_pairs_are_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..64 {
            let (a, b) = random_pair(&mut rng, 3);
            assert_ne!(a, b);
            assert!(a.0 < 3 && b.0 < 3);
        }
    }

    #[test]
    fn mutation_keeps_plans_nonempty_and_within_the_spec_budget() {
        let search = FaultPlanSearch::new(small_orchestrator()).with_max_specs(4);
        let mut rng = StdRng::seed_from_u64(13);
        let mut plan = search.fresh_plan(&mut rng, 3);
        let pool = vec![search.fresh_plan(&mut rng, 3)];
        for _ in 0..48 {
            plan = search.mutate(plan, &pool, &mut rng, 3);
            assert!(!plan.specs().is_empty(), "mutation emptied the plan");
            assert!(plan.specs().len() <= 4, "mutation blew the spec budget");
        }
    }

    #[test]
    fn a_seeded_search_is_deterministic_and_baseline_matches_a_plain_run() {
        let scenario = Figure2Scenario;
        let run = |seed: u64| {
            FaultPlanSearch::new(small_orchestrator())
                .with_seed(seed)
                .with_budget(3)
                .with_epoch_horizon(2)
                .run(&scenario)
        };
        let first = run(42);
        let second = run(42);
        assert_eq!(first.digest(), second.digest(), "seeded search must replay");
        assert_eq!(first.plans_tried, 3);
        assert_eq!(
            first.report.search,
            Some(first.summary()),
            "the baseline report must carry the search counters"
        );

        let mut sim = scenario.build();
        let plain = small_orchestrator().run(&mut sim, |sim, e| scenario.drive(sim, e));
        assert_eq!(
            first.baseline_live_digest,
            plain.digest(),
            "the empty-plan baseline must be byte-identical to a plain run"
        );
        assert!(plain.search.is_none(), "plain runs carry no search summary");
    }

    #[test]
    fn a_zero_budget_search_publishes_zeroed_counters() {
        let orchestrator = small_orchestrator();
        let plane = orchestrator.control_plane();
        let report = FaultPlanSearch::new(orchestrator)
            .with_budget(0)
            .run(&Figure2Scenario);
        assert_eq!(report.plans_tried, 0);
        assert!(report.repros.is_empty());
        let snapshot = plane.sample();
        assert_eq!(snapshot.search.plans, 0);
        assert_eq!(snapshot.search.novel, 0);
        assert_eq!(snapshot.search.repros, 0);
    }

    /// A scenario wired so that partitioning the Customer mid-run wedges
    /// the Internet node: the customer block is announced at epoch 0 (and
    /// reaches the Internet), and later epochs carry unrelated
    /// Internet-side traffic so the fleet round clock keeps ticking after
    /// any fault. Severing the Customer makes the Provider flush the
    /// customer-learned route and send an *observed* withdrawal over the
    /// intact Provider–Internet session — which then never heals back.
    struct WedgieScenario;

    impl FaultScenario for WedgieScenario {
        fn build(&self) -> Simulator {
            Simulator::new(&figure2_topology(CustomerFilterMode::Missing))
        }

        fn drive(&self, sim: &mut Simulator, epoch: usize) -> bool {
            let provider = (0..sim.len())
                .map(NodeId)
                .find(|n| sim.name(*n) == "Provider")
                .expect("figure 2 has a Provider");
            let mut attrs = RouteAttrs::default();
            if epoch == 0 {
                attrs.as_path = AsPath::from_sequence([17557, 17557]);
                attrs.next_hop = std::net::Ipv4Addr::new(10, 0, 1, 1);
                sim.inject(
                    provider,
                    addr::CUSTOMER,
                    BgpMessage::Update(UpdateMessage::announce(
                        vec!["41.1.0.0/16".parse().expect("valid")],
                        &attrs,
                    )),
                );
            } else {
                attrs.as_path = AsPath::from_sequence([1299, 3356]);
                attrs.next_hop = std::net::Ipv4Addr::new(10, 0, 2, 1);
                let block = format!("198.51.{}.0/24", 99 + epoch);
                sim.inject(
                    provider,
                    addr::INTERNET,
                    BgpMessage::Update(UpdateMessage::announce(
                        vec![block.parse().expect("valid")],
                        &attrs,
                    )),
                );
            }
            epoch < 3
        }
    }

    fn wedgie_search(seed: u64, budget: usize) -> FaultPlanSearch {
        let session = DiceBuilder::new()
            .engine(EngineConfig::default().with_max_runs(2))
            .checker(Box::new(crate::checker::BgpWedgieChecker::new()))
            .build();
        let orchestrator = LiveOrchestrator::new(session).with_core_budget(1);
        FaultPlanSearch::new(orchestrator)
            .with_seed(seed)
            .with_budget(budget)
            .with_epoch_horizon(3)
            .with_spec_kinds(SpecKindMask::only_partitions())
    }

    #[test]
    fn repro_bundles_replay_byte_identically() {
        let search = wedgie_search(1, 8);
        let report = search.run(&WedgieScenario);
        assert!(
            !report.repros.is_empty(),
            "the wedgie scenario search found nothing to shrink:\n{}",
            report.digest()
        );
        for repro in &report.repros {
            assert_eq!(repro.fault.checker, "bgp-wedgie");
            let replay = search.replay(&WedgieScenario, repro);
            assert!(
                replay.triggered,
                "replay must re-trigger {}",
                repro.fault_key
            );
            assert!(
                repro.matches(&replay),
                "replay diverged for {}:\n expected trace {:?}\n observed trace {:?}",
                repro.fault_key,
                repro.expected_trace_digest,
                replay.trace_digest
            );
        }
    }
}
