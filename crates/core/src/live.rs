//! Continuous online exploration against a *running* simulation.
//!
//! The paper's operating mode is not one harvested round over a frozen
//! snapshot: "DiCE continuously and automatically explores the system
//! behavior" alongside production execution. [`LiveOrchestrator`]
//! reproduces that over the deterministic [`Simulator`]:
//!
//! 1. **drive** — a caller-supplied driver injects the next stretch of
//!    live traffic (or reports that none is coming) and the simulator runs
//!    to quiescence;
//! 2. **window** — the delivery log is epoch-tagged
//!    ([`dice_netsim::ObservedInput::seq`]), so the round harvests exactly
//!    the inputs that arrived since the previous round
//!    ([`Simulator::observed_inputs_in`]) — no global wipe, no node ever
//!    loses another node's pending observations;
//! 3. **explore** — one fleet round runs over the window
//!    ([`FleetExplorer::explore_windows`]) under the shared global core
//!    budget, with per-node worker pools sized by each node's share of the
//!    window volume;
//! 4. **accumulate** — every round's [`FleetReport`] lands in a
//!    [`LiveReport`], and faults are deduplicated *across rounds* by
//!    [`Fault::fleet_key`]: the same leak re-detected every round is one
//!    live fault with every sighting round recorded;
//! 5. **compact** — once the round's window is harvested, the delivery log
//!    below the cursor is dropped ([`Simulator::trim_observed_below`];
//!    disable via [`LiveOrchestrator::with_log_compaction`]), bounding a
//!    long live session's memory by the unharvested tail.
//!
//! Two optional dimensions ride on the loop. A deterministic
//! [`FaultPlan`] ([`LiveOrchestrator::with_fault_plan`]) perturbs the
//! network between epochs — link flaps, session resets, seeded message
//! drop/duplicate/reorder — with every injected event recorded in the
//! simulator's [`dice_netsim::FaultTrace`], so a faulty run replays
//! byte-for-byte from `(plan, seed)`. And after each round the temporal
//! checker pass ([`crate::FaultChecker::check_live`]) re-examines a rolling
//! cross-round history ([`LiveOrchestrator::with_live_history`]) of per-node
//! observation windows, catching faults — route flaps, wedged convergence —
//! that no single round's window can show.
//!
//! Each round's state is a fresh copy-on-write [`crate::RoundCheckpoint`]
//! per node, captured when the round runs and dropped with it — a
//! checkpoint never outlives the epoch window it was taken for, and within
//! the round every explored input shares it instead of deep-cloning the
//! router.
//!
//! Because each round checkpoints the node state *as it was when the round
//! ran*, continuous rounds see behaviour that a single end-of-run harvest
//! cannot: a route that was installed during the run but withdrawn before
//! the end only flaps in the mid-run checkpoint (see the route-oscillation
//! end-to-end test in `tests/live_orchestrator.rs`).
//!
//! Reports stay deterministic: a single-round run over a quiesced
//! simulator is byte-identical (per [`FleetReport::digest`]) to
//! [`FleetExplorer::explore`] over the same state, for every core budget.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use dice_checkpoint::CowForkStats;
use dice_netsim::topology::NodeId;
use dice_netsim::{FaultPlan, SharedIngestStats, Simulator};
use dice_solver::SolverStats;

use crate::checker::{Fault, RoundOutcomes};
use crate::checkpoint::RoundCheckpoint;
use crate::control::{ControlPlane, ControlSnapshot, IngestCounters};
use crate::fleet::{FleetExplorer, FleetReport};
use crate::session::DiceSession;

/// One executed exploration round of a live run.
#[derive(Debug, Clone)]
pub struct LiveRound {
    /// Executed-round index (0-based; epochs that observed nothing do not
    /// consume an index).
    pub index: usize,
    /// The harvested epoch window `[from, to)` in delivery-log sequence
    /// numbers ([`dice_netsim::ObservedInput::seq`]).
    pub window: (u64, u64),
    /// The round's fleet report over exactly that window.
    pub report: FleetReport,
}

/// A fault after cross-round deduplication, with every sighting recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveFault {
    /// The fault, as first sighted (node provenance of the first sighting).
    pub fault: Fault,
    /// Every node whose exploration found the fault, in sighting order.
    pub nodes: Vec<NodeId>,
    /// Every executed round that re-detected the fault, in round order.
    pub rounds: Vec<usize>,
}

/// The accumulated result of a continuous exploration run.
#[derive(Debug, Clone, Default)]
pub struct LiveReport {
    /// Executed rounds, in execution order.
    pub rounds: Vec<LiveRound>,
    /// Faults deduplicated across nodes *and* rounds by
    /// [`Fault::fleet_key`], in first-sighting order.
    pub faults: Vec<LiveFault>,
    /// Total number of faults the run's [`FaultPlan`] injected into the
    /// simulation (link flaps, session resets, message perturbations;
    /// structural delivery errors excluded). Zero without a plan, and
    /// rendered in the digest and [`fmt::Display`] only when nonzero so
    /// unperturbed runs stay byte-identical to pre-fault-injection builds.
    pub injected_faults: u64,
    /// Counters of the fault-plan search that produced this report, when
    /// it came out of a [`FaultPlanSearch`](crate::FaultPlanSearch) rather
    /// than a single run. `None` (and absent from the digest and
    /// [`fmt::Display`]) for plain runs, so no-search digests stay
    /// byte-identical to pre-search builds.
    pub search: Option<SearchSummary>,
    /// Wall-clock duration of the whole run (driving, simulating and
    /// exploring).
    pub elapsed: Duration,
}

/// Aggregate counters of a fault-plan search, attached to the
/// [`LiveReport`] a [`FaultPlanSearch`](crate::FaultPlanSearch) returns
/// and exported through the schema-v3 [`crate::ControlSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchSummary {
    /// Candidate plans evaluated (the empty-plan baseline and shrinker
    /// probe runs excluded).
    pub plans_tried: u64,
    /// Plans that surfaced a never-seen fleet key, checker class, or
    /// fault-trace event shape.
    pub novel_plans: u64,
    /// Distinct minimized, replayable counterexamples emitted.
    pub minimized_repros: u64,
    /// Faults injected across every candidate run, summed.
    pub injected_total: u64,
}

impl LiveReport {
    /// Returns true if any round found any fault.
    pub fn has_faults(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Total executions across all rounds and nodes.
    pub fn total_runs(&self) -> usize {
        self.rounds.iter().map(|r| r.report.total_runs()).sum()
    }

    /// Fault sightings before any deduplication (sum over rounds of
    /// per-node fault counts).
    pub fn total_sightings(&self) -> usize {
        self.rounds.iter().map(|r| r.report.total_sightings()).sum()
    }

    /// The last executed round, if any ran.
    pub fn last_round(&self) -> Option<&LiveRound> {
        self.rounds.last()
    }

    /// Total policy branch sites registered across all rounds and nodes.
    pub fn total_policy_sites(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.report.total_policy_sites())
            .sum()
    }

    /// Total policy (site, direction) pairs exercised across all rounds.
    pub fn total_policy_directions(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.report.total_policy_directions())
            .sum()
    }

    /// Run-wide policy-branch coverage over registered filter arms, in
    /// `[0, 1]`; `1.0` when no round registered any policy site.
    pub fn policy_branch_coverage(&self) -> f64 {
        let sites = self.total_policy_sites();
        if sites == 0 {
            1.0
        } else {
            self.total_policy_directions() as f64 / (2 * sites) as f64
        }
    }

    /// A canonical rendering of every deterministic field: each round's
    /// window and [`FleetReport::digest`], then the cross-round fault list
    /// with full provenance. Independent of wall-clock time, worker counts
    /// and core budgets — byte-identical across reruns of the same
    /// deterministic scenario.
    pub fn digest(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for round in &self.rounds {
            writeln!(
                out,
                "round{} window=[{},{}):",
                round.index, round.window.0, round.window.1
            )
            .expect("writing to a String cannot fail");
            out.push_str(&round.report.digest());
        }
        for f in &self.faults {
            let nodes: Vec<String> = f.nodes.iter().map(|n| n.0.to_string()).collect();
            let rounds: Vec<String> = f.rounds.iter().map(|r| r.to_string()).collect();
            writeln!(
                out,
                "live-fault:{} nodes=[{}] rounds=[{}]",
                f.fault,
                nodes.join(","),
                rounds.join(",")
            )
            .expect("writing to a String cannot fail");
        }
        if self.injected_faults > 0 {
            writeln!(out, "injected-faults:{}", self.injected_faults)
                .expect("writing to a String cannot fail");
        }
        if let Some(search) = &self.search {
            writeln!(
                out,
                "search:plans={} novel={} repros={} injected={}",
                search.plans_tried,
                search.novel_plans,
                search.minimized_repros,
                search.injected_total
            )
            .expect("writing to a String cannot fail");
        }
        out
    }
}

impl fmt::Display for LiveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DiCE live exploration: {} round(s), {} run(s), {} sighting(s) -> {} distinct fault(s) in {:?}",
            self.rounds.len(),
            self.total_runs(),
            self.total_sightings(),
            self.faults.len(),
            self.elapsed,
        )?;
        if self.total_policy_sites() > 0 {
            writeln!(
                f,
                "  policy: {:.0}% of filter-arm directions explored across rounds ({}/{})",
                self.policy_branch_coverage() * 100.0,
                self.total_policy_directions(),
                2 * self.total_policy_sites(),
            )?;
        }
        if self.injected_faults > 0 {
            writeln!(
                f,
                "  fault plan: {} fault(s) injected across the run",
                self.injected_faults,
            )?;
        }
        if let Some(search) = &self.search {
            writeln!(
                f,
                "  fault search: {} plan(s) tried, {} novel, {} minimized repro(s)",
                search.plans_tried, search.novel_plans, search.minimized_repros,
            )?;
        }
        for round in &self.rounds {
            writeln!(
                f,
                "  round {} over window [{}, {}): {} run(s), {} sighting(s)",
                round.index,
                round.window.0,
                round.window.1,
                round.report.total_runs(),
                round.report.total_sightings(),
            )?;
        }
        if self.faults.is_empty() {
            writeln!(f, "  no faults detected across any round")?;
        } else {
            for fault in &self.faults {
                let nodes: Vec<String> = fault.nodes.iter().map(|n| n.0.to_string()).collect();
                let rounds: Vec<String> = fault.rounds.iter().map(|r| r.to_string()).collect();
                writeln!(
                    f,
                    "  - {} (node(s) {}; round(s) {})",
                    fault.fault,
                    nodes.join(", "),
                    rounds.join(", ")
                )?;
            }
        }
        Ok(())
    }
}

/// Interleaves live simulation progress with continuous exploration
/// rounds.
///
/// Construct from a [`DiceSession`] (shared checker registry and engine
/// settings, like [`FleetExplorer`]), then [`LiveOrchestrator::run`] with a
/// traffic driver. The driver is called once per epoch to push the next
/// stretch of live traffic into the simulator and returns whether more may
/// come; after each epoch the simulator runs to quiescence and the newly
/// observed window is explored.
#[derive(Debug, Clone)]
pub struct LiveOrchestrator {
    explorer: FleetExplorer,
    quiesce_steps: u64,
    max_rounds: usize,
    compact_log: bool,
    fault_plan: Option<FaultPlan>,
    live_history: usize,
    control: ControlPlane,
    ingest_stats: Option<SharedIngestStats>,
}

impl Default for LiveOrchestrator {
    fn default() -> Self {
        LiveOrchestrator::new(DiceSession::default())
    }
}

impl LiveOrchestrator {
    /// Creates an orchestrator running every round through the given
    /// session.
    pub fn new(session: DiceSession) -> Self {
        LiveOrchestrator {
            explorer: FleetExplorer::new(session),
            quiesce_steps: 100,
            max_rounds: 64,
            compact_log: true,
            fault_plan: None,
            live_history: 64,
            control: ControlPlane::new(),
            ingest_stats: None,
        }
    }

    /// Sets the global core budget shared by every round's node fan-out
    /// (`0`, the default, uses the machine's available parallelism).
    /// Budgets bound threads, never results.
    pub fn with_core_budget(mut self, cores: usize) -> Self {
        self.explorer = self.explorer.with_core_budget(cores);
        self
    }

    /// Sets how many simulator steps each epoch may take to quiesce before
    /// its round harvests (default 100).
    pub fn with_quiesce_steps(mut self, steps: u64) -> Self {
        self.quiesce_steps = steps;
        self
    }

    /// Caps the number of driver epochs — and therefore executed rounds —
    /// of one [`LiveOrchestrator::run`] call (default 64; clamped to at
    /// least 1). The safety valve against drivers that never report
    /// completion.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds.max(1);
        self
    }

    /// Enables or disables delivery-log compaction (default: enabled).
    ///
    /// After each executed round — once the orchestrator's cursor has
    /// passed the harvested window — the simulator log below the cursor is
    /// dropped ([`Simulator::trim_observed_below`]), so a long-running live
    /// session holds only the unharvested tail instead of the unbounded
    /// full history. Disable it when something else re-harvests the same
    /// simulator after the run (e.g. a comparative one-shot
    /// [`FleetExplorer::explore`] over the full log).
    pub fn with_log_compaction(mut self, enabled: bool) -> Self {
        self.compact_log = enabled;
        self
    }

    /// Installs a deterministic [`FaultPlan`] driven alongside the run: the
    /// plan is installed into the simulator when [`LiveOrchestrator::run`]
    /// starts (resetting the fault runtime and reseeding its RNG from the
    /// plan's seed), and the plan's epoch-scheduled faults — link flaps,
    /// session resets — are applied at the start of every driver epoch,
    /// *before* the driver injects that epoch's traffic. An empty plan
    /// injects nothing and leaves every report digest byte-identical to a
    /// run without a plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Bounds the rolling cross-round history handed to the temporal
    /// checker pass ([`crate::FaultChecker::check_live`]): the most recent
    /// `entries` per-node round windows are retained (default 64; clamped
    /// to at least 1). Only rounds that observed something occupy entries.
    pub fn with_live_history(mut self, entries: usize) -> Self {
        self.live_history = entries.max(1);
        self
    }

    /// Publishes run status through an externally owned [`ControlPlane`]
    /// instead of the orchestrator's own: hand one clone of the plane to
    /// whatever serves status and the other here. Equivalent to sampling
    /// [`LiveOrchestrator::control_plane`].
    pub fn with_control_plane(mut self, plane: ControlPlane) -> Self {
        self.control = plane;
        self
    }

    /// Attaches the shared counters of a wire-ingest driver
    /// ([`dice_netsim::WireReplayDriver::stats`]) so decode/error counts
    /// and decode throughput report through every published
    /// [`ControlSnapshot`].
    pub fn with_ingest_stats(mut self, stats: SharedIngestStats) -> Self {
        self.ingest_stats = Some(stats);
        self
    }

    /// The control plane this orchestrator publishes to: a clone-cheap,
    /// `Arc`-shared handle. [`crate::ControlPlane::sample`] it from any
    /// thread mid-run; [`LiveOrchestrator::run`] publishes a fresh
    /// [`ControlSnapshot`] after every executed round and once more when
    /// the run ends.
    pub fn control_plane(&self) -> ControlPlane {
        self.control.clone()
    }

    /// The fleet explorer driving each round.
    pub fn explorer(&self) -> &FleetExplorer {
        &self.explorer
    }

    /// Runs continuous exploration against the simulation.
    ///
    /// Per epoch: `drive(sim, epoch)` injects the next stretch of live
    /// traffic (returning `false` once no more will come), the simulator
    /// runs to quiescence, and the epoch window — everything observed
    /// since the previous round, including inputs already in the log
    /// before this call for the first round — is explored as one fleet
    /// round over every node. Epochs whose window is empty execute no
    /// round. The loop ends when the driver reports completion or
    /// [`LiveOrchestrator::with_max_rounds`] is reached.
    ///
    /// With a driver that immediately returns `false` over an already
    /// quiesced simulator this degenerates to exactly one round over the
    /// full log — byte-identical, per [`FleetReport::digest`], to
    /// [`FleetExplorer::explore`] on the same state (the equivalence
    /// anchor asserted in `tests/live_orchestrator.rs`).
    pub fn run<F>(&self, sim: &mut Simulator, mut drive: F) -> LiveReport
    where
        F: FnMut(&mut Simulator, usize) -> bool,
    {
        let started = Instant::now();
        if let Some(plan) = &self.fault_plan {
            sim.install_fault_plan(plan.clone());
        }
        let nodes: Vec<NodeId> = (0..sim.len()).map(NodeId).collect();
        let mut report = LiveReport::default();
        let mut index: HashMap<(String, dice_bgp::Ipv4Prefix, String), usize> = HashMap::new();
        let mut cursor = 0u64;
        let mut history: Vec<RoundOutcomes> = Vec::new();

        // Control-plane accumulators: per-round latency, merged solver
        // counters, and shard-level CoW sharing of each round's per-node
        // forks, probed when the round's window closes.
        let mut solver = SolverStats::default();
        let mut last_latency = Duration::ZERO;
        let mut latency_total = Duration::ZERO;
        let mut round_latency = dice_obs::Histogram::new();
        let mut wave_latency = dice_obs::Histogram::new();
        let mut cow = CowForkStats::default();
        let mut forks: Vec<RoundCheckpoint> = nodes
            .iter()
            .map(|&node| RoundCheckpoint::capture(sim.router(node)))
            .collect();

        for epoch in 0..self.max_rounds.max(1) {
            let epoch_started = Instant::now();
            // Scheduled faults fire first, so the driver's epoch traffic
            // lands on the perturbed network. A no-op without a plan.
            sim.apply_epoch_faults(epoch as u64);
            let more = drive(sim, epoch);
            sim.run_to_quiescence(self.quiesce_steps);
            let head = sim.observed_cursor();
            if head > cursor {
                let mut harvest_span = dice_obs::span("core", "live.harvest");
                let windows: Vec<_> = nodes
                    .iter()
                    .map(|&node| (node, sim.observed_inputs_in(node, cursor, head)))
                    .collect();
                harvest_span.set_detail(windows.iter().map(|(_, w)| w.len() as u64).sum());
                drop(harvest_span);
                let (fleet, outcomes) = self
                    .explorer
                    .explore_windows_collecting(sim, windows.clone());
                let round_index = report.rounds.len();
                Self::merge_round_faults(&mut report.faults, &mut index, &fleet, round_index);

                // Stitch the round's per-node windows into the rolling
                // history and run the temporal checker pass over it.
                let by_node: HashMap<NodeId, Vec<_>> = windows.into_iter().collect();
                for (node, outcomes) in outcomes {
                    let observed = by_node.get(&node).cloned().unwrap_or_default();
                    if observed.is_empty() && outcomes.is_empty() {
                        continue;
                    }
                    history.push(RoundOutcomes {
                        round: round_index,
                        node,
                        observed,
                        outcomes,
                    });
                }
                if history.len() > self.live_history {
                    history.drain(..history.len() - self.live_history);
                }
                let mut check_span = dice_obs::span("core", "live.check");
                check_span.set_detail(history.len() as u64);
                let temporal = self.explorer.session().check_live(&history);
                drop(check_span);
                Self::merge_temporal_faults(&mut report.faults, &mut index, &temporal, round_index);

                for node in &fleet.nodes {
                    solver.merge(&node.report.solver_stats);
                }
                wave_latency.merge(&fleet.wave_latency());
                report.rounds.push(LiveRound {
                    index: round_index,
                    window: (cursor, head),
                    report: fleet,
                });
                cursor = head;
                if self.compact_log {
                    // Every cursor of this run has passed `cursor`, so the
                    // log below it can never be harvested again: drop it.
                    sim.trim_observed_below(cursor);
                }

                // The round's forks are done: probe how much each still
                // shares with its live router, then recapture for the next
                // window.
                for (fork, &node) in forks.iter_mut().zip(&nodes) {
                    let probe = fork.cow_stats_vs(sim.router(node));
                    cow.units_total += probe.units_total;
                    cow.units_shared += probe.units_shared;
                    *fork = RoundCheckpoint::capture(sim.router(node));
                }
                last_latency = epoch_started.elapsed();
                latency_total += last_latency;
                round_latency.record_duration(last_latency);
                self.control.publish(self.assemble_snapshot(
                    &report,
                    sim,
                    &solver,
                    last_latency,
                    latency_total,
                    round_latency.summary(),
                    wave_latency.summary(),
                    cow,
                    cursor,
                ));
            }
            if !more {
                break;
            }
        }

        report.injected_faults = sim.injected_fault_count() as u64;
        report.elapsed = started.elapsed();
        self.control.publish(self.assemble_snapshot(
            &report,
            sim,
            &solver,
            last_latency,
            latency_total,
            round_latency.summary(),
            wave_latency.summary(),
            cow,
            cursor,
        ));
        report
    }

    /// Builds the [`ControlSnapshot`] published after each executed round
    /// (and once more at run end) from the in-progress report, the
    /// simulator, and the run's accumulated counters.
    #[allow(clippy::too_many_arguments)]
    fn assemble_snapshot(
        &self,
        report: &LiveReport,
        sim: &Simulator,
        solver: &SolverStats,
        last_latency: Duration,
        latency_total: Duration,
        round_latency: dice_obs::HistogramSummary,
        wave_latency: dice_obs::HistogramSummary,
        cow: CowForkStats,
        watermark: u64,
    ) -> ControlSnapshot {
        let rounds = report.rounds.len();
        ControlSnapshot {
            rounds,
            total_runs: report.total_runs(),
            distinct_faults: report.faults.len(),
            injected_faults: sim.injected_fault_count() as u64,
            fault_trace_events: sim.fault_trace().len() as u64,
            fault_trace_fingerprint: sim.fault_trace().fingerprint(),
            last_round_latency: last_latency,
            mean_round_latency: ControlSnapshot::mean_latency(latency_total, rounds),
            round_latency,
            wave_latency,
            solver_queries: solver.queries,
            solver_incremental_queries: solver.incremental_queries,
            solver_reuse_rate: solver.reuse_rate(),
            policy_coverage: report.policy_branch_coverage(),
            cow,
            compaction_watermark: watermark,
            delivered: sim.stats().delivered,
            ingest: self
                .ingest_stats
                .as_ref()
                .map(|stats| IngestCounters::from(&stats.snapshot()))
                .unwrap_or_default(),
            ..ControlSnapshot::default()
        }
    }

    /// Folds one round's fleet-deduplicated faults into the cross-round
    /// list: keys ([`Fault::fleet_key`]) already present collect the new
    /// sighting's nodes and round; new keys append in first-sighting
    /// order. Nothing is ever dropped.
    /// Folds the temporal pass's faults ([`crate::FaultChecker::check_live`]
    /// over the rolling history) into the cross-round list. Temporal
    /// checkers re-examine the whole history every round, so an already
    /// known key only records the new round once (and any new node); fresh
    /// keys append in first-sighting order.
    fn merge_temporal_faults(
        faults: &mut Vec<LiveFault>,
        index: &mut HashMap<(String, dice_bgp::Ipv4Prefix, String), usize>,
        found: &[Fault],
        round: usize,
    ) {
        for fault in found {
            match index.entry(fault.fleet_key()) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    let existing = &mut faults[*slot.get()];
                    if let Some(node) = fault.node {
                        if !existing.nodes.contains(&node) {
                            existing.nodes.push(node);
                        }
                    }
                    if existing.rounds.last() != Some(&round) {
                        existing.rounds.push(round);
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(faults.len());
                    faults.push(LiveFault {
                        fault: fault.clone(),
                        nodes: fault.node.into_iter().collect(),
                        rounds: vec![round],
                    });
                }
            }
        }
    }

    fn merge_round_faults(
        faults: &mut Vec<LiveFault>,
        index: &mut HashMap<(String, dice_bgp::Ipv4Prefix, String), usize>,
        fleet: &FleetReport,
        round: usize,
    ) {
        for sighting in &fleet.faults {
            match index.entry(sighting.fault.fleet_key()) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    let existing = &mut faults[*slot.get()];
                    for node in &sighting.nodes {
                        if !existing.nodes.contains(node) {
                            existing.nodes.push(*node);
                        }
                    }
                    existing.rounds.push(round);
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(faults.len());
                    faults.push(LiveFault {
                        fault: sighting.fault.clone(),
                        nodes: sighting.nodes.clone(),
                        rounds: vec![round],
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::message::{BgpMessage, UpdateMessage};
    use dice_bgp::AsPath;
    use dice_netsim::topology::{addr, asn, figure2_topology, CustomerFilterMode};
    use std::net::Ipv4Addr;

    fn announcement(prefix: &str, path: &[u32], next_hop: Ipv4Addr) -> BgpMessage {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence(path.iter().copied());
        attrs.next_hop = next_hop;
        BgpMessage::Update(UpdateMessage::announce(
            vec![prefix.parse().expect("valid")],
            &attrs,
        ))
    }

    fn inject_victim_table(sim: &mut Simulator, provider: NodeId) {
        sim.inject(
            provider,
            addr::INTERNET,
            announcement(
                "208.65.152.0/22",
                &[asn::INTERNET, 3356, asn::VICTIM],
                addr::INTERNET,
            ),
        );
        sim.run_to_quiescence(100);
    }

    fn inject_customer_block(sim: &mut Simulator, provider: NodeId, block: &str) {
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement(block, &[asn::CUSTOMER, asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
    }

    #[test]
    fn single_round_run_is_byte_identical_to_a_fleet_exploration() {
        let topo = figure2_topology(CustomerFilterMode::Erroneous);
        let provider = topo.node_by_name("Provider").expect("node");
        let mut sim = Simulator::new(&topo);
        inject_victim_table(&mut sim, provider);
        inject_customer_block(&mut sim, provider, "41.1.0.0/16");

        let session = DiceSession::default();
        let fleet = FleetExplorer::new(session.clone()).explore(&sim);
        let live = LiveOrchestrator::new(session).run(&mut sim, |_, _| false);

        assert_eq!(live.rounds.len(), 1, "one round over the full log");
        assert_eq!(
            live.rounds[0].report.digest(),
            fleet.digest(),
            "the quiesced single-round path must match FleetExplorer exactly"
        );
        assert_eq!(live.rounds[0].window.0, 0);
        assert_eq!(live.rounds[0].window.1, sim.observed_cursor());
        assert!(live.has_faults());
        assert_eq!(live.faults.len(), fleet.faults.len());
        assert_eq!(live.total_runs(), fleet.total_runs());
    }

    #[test]
    fn rounds_harvest_disjoint_incremental_windows() {
        let topo = figure2_topology(CustomerFilterMode::Erroneous);
        let provider = topo.node_by_name("Provider").expect("node");
        let mut sim = Simulator::new(&topo);
        inject_victim_table(&mut sim, provider);

        let blocks = ["41.1.0.0/16", "41.64.0.0/12", "41.128.0.0/12"];
        let live = LiveOrchestrator::default().run(&mut sim, |sim, epoch| {
            if let Some(block) = blocks.get(epoch) {
                inject_customer_block(sim, provider, block);
            }
            epoch + 1 < blocks.len()
        });

        assert_eq!(live.rounds.len(), blocks.len());
        // Windows tile the log: contiguous, ascending, starting at 0.
        assert_eq!(live.rounds[0].window.0, 0);
        for pair in live.rounds.windows(2) {
            assert_eq!(pair[0].window.1, pair[1].window.0);
            assert!(pair[1].window.1 > pair[1].window.0);
        }
        assert_eq!(
            live.rounds.last().expect("rounds ran").window.1,
            sim.observed_cursor()
        );
        // Every round explores exactly its window, not the whole history:
        // the per-node observed inputs sum to the window's size (every log
        // entry belongs to exactly one node).
        for round in &live.rounds {
            let window_inputs: usize = round
                .report
                .nodes
                .iter()
                .map(|n| n.report.observed_inputs)
                .sum();
            let window_len = (round.window.1 - round.window.0) as usize;
            assert_eq!(window_inputs, window_len, "round {}", round.index);
        }
        assert!(live.to_string().contains("round 2"));
    }

    #[test]
    fn the_same_fault_redetected_every_round_dedups_across_rounds() {
        let topo = figure2_topology(CustomerFilterMode::Erroneous);
        let provider = topo.node_by_name("Provider").expect("node");
        let mut sim = Simulator::new(&topo);
        inject_victim_table(&mut sim, provider);

        // The customer re-announces the same block every epoch: each round
        // re-detects the same leak.
        let live = LiveOrchestrator::default().run(&mut sim, |sim, epoch| {
            inject_customer_block(sim, provider, "41.1.0.0/16");
            epoch < 1
        });
        assert_eq!(live.rounds.len(), 2);
        assert!(live.has_faults());
        let per_round: usize = live.rounds.iter().map(|r| r.report.faults.len()).sum();
        assert!(
            per_round > live.faults.len(),
            "cross-round dedup collapsed re-detections ({per_round} sightings -> {} faults)",
            live.faults.len()
        );
        // Every fault carries the rounds that saw it, in order.
        assert!(live.faults.iter().any(|f| f.rounds == vec![0, 1]));
        for fault in &live.faults {
            assert!(!fault.rounds.is_empty());
            assert!(fault.rounds.windows(2).all(|w| w[0] < w[1]));
        }
        // The digest is stable across identical reruns.
        let mut sim2 = Simulator::new(&topo);
        inject_victim_table(&mut sim2, provider);
        let rerun = LiveOrchestrator::default().run(&mut sim2, |sim, epoch| {
            inject_customer_block(sim, provider, "41.1.0.0/16");
            epoch < 1
        });
        assert_eq!(rerun.digest(), live.digest());
    }

    #[test]
    fn log_compaction_drops_harvested_windows_without_changing_reports() {
        let topo = figure2_topology(CustomerFilterMode::Erroneous);
        let provider = topo.node_by_name("Provider").expect("node");
        let blocks = ["41.1.0.0/16", "41.64.0.0/12"];
        let drive = |sim: &mut Simulator, epoch: usize| {
            if let Some(block) = blocks.get(epoch) {
                inject_customer_block(sim, provider, block);
            }
            epoch + 1 < blocks.len()
        };

        // Default: the log is trimmed up to the cursor after each round —
        // a fully harvested run leaves an empty log.
        let mut compacted_sim = Simulator::new(&topo);
        inject_victim_table(&mut compacted_sim, provider);
        let compacted = LiveOrchestrator::default().run(&mut compacted_sim, drive);
        assert!(
            compacted_sim.observed_log().is_empty(),
            "every window was harvested, so compaction empties the log"
        );
        assert_eq!(compacted_sim.observed_cursor(), {
            let last = compacted.rounds.last().expect("rounds ran");
            last.window.1
        });

        // Compaction never changes what exploration reports.
        let mut retained_sim = Simulator::new(&topo);
        inject_victim_table(&mut retained_sim, provider);
        let retained = LiveOrchestrator::default()
            .with_log_compaction(false)
            .run(&mut retained_sim, drive);
        assert_eq!(retained.digest(), compacted.digest());
        assert_eq!(
            retained_sim.observed_log().len() as u64,
            retained_sim.observed_cursor(),
            "without compaction the full history is retained"
        );
        assert!(compacted.has_faults());
    }

    #[test]
    fn quiet_epochs_execute_no_round_and_max_rounds_caps_the_run() {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let mut sim = Simulator::new(&topo);

        // No traffic at all: no rounds, no faults, empty digest.
        let idle = LiveOrchestrator::default().run(&mut sim, |_, _| true);
        assert!(idle.rounds.is_empty());
        assert!(!idle.has_faults());
        assert_eq!(idle.total_runs(), 0);
        assert!(idle.last_round().is_none());
        assert_eq!(idle.digest(), "");
        assert!(idle.to_string().contains("no faults detected"));

        // A driver that never stops is cut off at max_rounds epochs.
        let provider = topo.node_by_name("Provider").expect("node");
        let mut epochs = 0usize;
        let capped = LiveOrchestrator::default()
            .with_max_rounds(3)
            .run(&mut sim, |sim, _| {
                epochs += 1;
                inject_customer_block(sim, provider, "41.1.0.0/16");
                true
            });
        assert_eq!(epochs, 3);
        assert_eq!(capped.rounds.len(), 3);
    }
}
