//! Fleet-level exploration: one DiCE round beside every node of a
//! topology.
//!
//! The paper's headline setting is *federated* online testing — a DiCE
//! instance runs beside every node of a heterogeneous deployment, each
//! exploring from the inputs its node observed locally. [`FleetExplorer`]
//! reproduces that over the deterministic [`Simulator`]:
//!
//! 1. **harvest** — each node's observed inputs are taken from the
//!    simulation's delivery log ([`Simulator::observed_inputs`]): exactly
//!    the UPDATEs the node's local DiCE instance would have seen;
//! 2. **explore** — one exploration round runs per node, nodes fanned out
//!    concurrently under a global core budget: the budget is split across
//!    the per-node worker pools so the nested parallelism (nodes × observed
//!    inputs × solver threads) never oversubscribes the machine. Each
//!    node's round captures one copy-on-write [`crate::RoundCheckpoint`]
//!    and shares it across every observed input of that round (no deep
//!    clone per input — see [`crate::CheckpointMode`]);
//! 3. **merge** — per-node [`ExplorationReport`]s are collected in
//!    topology order into a [`FleetReport`], and faults are deduplicated
//!    fleet-wide by `(checker, prefix, offending message)`
//!    ([`Fault::fleet_key`]) — the same leak observed from three vantage
//!    points is one fleet fault with three sightings.
//!
//! Reports are deterministic: node order is topology order, per-node
//! reports are worker-count-invariant, and dedup keeps first-sighting
//! order, so the same simulation state yields byte-identical
//! [`FleetReport::digest`]s for every budget setting.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use dice_bgp::message::UpdateMessage;
use dice_bgp::route::PeerId;
use dice_netsim::topology::NodeId;
use dice_netsim::Simulator;

use crate::checker::Fault;
use crate::handler::HandlerOutcome;
use crate::report::ExplorationReport;
use crate::session::DiceSession;

/// One node's harvest window: the `(peer, update)` inputs its round
/// explores.
pub type NodeWindow = (NodeId, Vec<(PeerId, UpdateMessage)>);

/// One node's contribution to a fleet round.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// The node's id within the topology.
    pub node: NodeId,
    /// The node's human-readable name.
    pub name: String,
    /// The node's exploration report — identical to what a single-node
    /// round over the same router and inputs produces.
    pub report: ExplorationReport,
}

/// A fault after fleet-wide deduplication, with every sighting recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetFault {
    /// The fault, stamped with the first node that saw it.
    pub fault: Fault,
    /// Every node whose exploration found the fault, in sighting order.
    pub nodes: Vec<NodeId>,
}

/// The merged result of one fleet exploration round.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Per-node reports, in topology order.
    pub nodes: Vec<NodeReport>,
    /// Fleet-wide deduplicated faults, in first-sighting order.
    pub faults: Vec<FleetFault>,
    /// Number of faults the simulation's [`dice_netsim::FaultPlan`] had
    /// injected by the time this round ran (link flaps, session resets,
    /// message drops/duplicates/delays — delivery errors excluded). Zero
    /// for unperturbed simulations, and rendered in the digest and
    /// [`fmt::Display`] only when nonzero so quiescent-network reports stay
    /// byte-identical to pre-fault-injection builds.
    pub injected_faults: u64,
    /// Wall-clock duration of the whole fleet round.
    pub elapsed: Duration,
}

impl FleetReport {
    /// Returns true if any node found any fault.
    pub fn has_faults(&self) -> bool {
        !self.faults.is_empty()
    }

    /// The report of one node, if it was explored.
    pub fn node(&self, node: NodeId) -> Option<&ExplorationReport> {
        self.nodes
            .iter()
            .find(|n| n.node == node)
            .map(|n| &n.report)
    }

    /// Total executions across the fleet.
    pub fn total_runs(&self) -> usize {
        self.nodes.iter().map(|n| n.report.runs).sum()
    }

    /// Fault sightings before deduplication (sum of per-node fault counts).
    pub fn total_sightings(&self) -> usize {
        self.nodes.iter().map(|n| n.report.faults.len()).sum()
    }

    /// Solver-wave latency distribution merged across every node's report
    /// ([`ExplorationReport::wave_latency`]). Purely observational — never
    /// part of [`FleetReport::digest`].
    pub fn wave_latency(&self) -> dice_obs::Histogram {
        let mut merged = dice_obs::Histogram::new();
        for n in &self.nodes {
            merged.merge(&n.report.wave_latency);
        }
        merged
    }

    /// Total policy branch sites registered across the fleet (filter arms,
    /// summed over nodes; an arm each of two nodes evaluates counts twice).
    pub fn total_policy_sites(&self) -> usize {
        self.nodes.iter().map(|n| n.report.policy_sites).sum()
    }

    /// Total policy (site, direction) pairs exercised across the fleet.
    pub fn total_policy_directions(&self) -> usize {
        self.nodes.iter().map(|n| n.report.policy_directions).sum()
    }

    /// Fleet-wide policy-branch coverage over registered filter arms, in
    /// `[0, 1]`; `1.0` when no node registered any policy site.
    pub fn policy_branch_coverage(&self) -> f64 {
        let sites = self.total_policy_sites();
        if sites == 0 {
            1.0
        } else {
            self.total_policy_directions() as f64 / (2 * sites) as f64
        }
    }

    /// A canonical rendering of every deterministic field — per-node
    /// digests plus the deduplicated fault list. Independent of worker
    /// counts and core budgets.
    pub fn digest(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for n in &self.nodes {
            writeln!(out, "node{}:{}", n.node.0, n.report.digest())
                .expect("writing to a String cannot fail");
        }
        for f in &self.faults {
            let nodes: Vec<String> = f.nodes.iter().map(|n| n.0.to_string()).collect();
            writeln!(out, "fleet-fault:{} nodes=[{}]", f.fault, nodes.join(","))
                .expect("writing to a String cannot fail");
        }
        if self.injected_faults > 0 {
            writeln!(out, "injected-faults:{}", self.injected_faults)
                .expect("writing to a String cannot fail");
        }
        out
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DiCE fleet exploration: {} node(s), {} run(s), {} sighting(s) -> {} distinct fault(s) in {:?}",
            self.nodes.len(),
            self.total_runs(),
            self.total_sightings(),
            self.faults.len(),
            self.elapsed,
        )?;
        if self.total_policy_sites() > 0 {
            writeln!(
                f,
                "  policy: {:.0}% of filter-arm directions explored fleet-wide ({}/{})",
                self.policy_branch_coverage() * 100.0,
                self.total_policy_directions(),
                2 * self.total_policy_sites(),
            )?;
        }
        if self.injected_faults > 0 {
            writeln!(
                f,
                "  fault plan: {} fault(s) injected into the simulation",
                self.injected_faults,
            )?;
        }
        for n in &self.nodes {
            writeln!(
                f,
                "  [{}] {}: {} run(s), {} fault(s), isolation preserved: {}",
                n.node.0,
                n.name,
                n.report.runs,
                n.report.faults.len(),
                n.report.isolation_preserved,
            )?;
        }
        if self.faults.is_empty() {
            writeln!(f, "  no faults detected fleet-wide")?;
        } else {
            for fault in &self.faults {
                let nodes: Vec<String> = fault.nodes.iter().map(|n| n.0.to_string()).collect();
                writeln!(
                    f,
                    "  - {} (seen on node(s) {})",
                    fault.fault,
                    nodes.join(", ")
                )?;
            }
        }
        Ok(())
    }
}

/// Deduplicates per-node fault lists fleet-wide.
///
/// Keyed by [`Fault::fleet_key`] — `(checker, prefix, offending message)`;
/// node provenance never splits a key. The first sighting (in the given
/// report order) contributes the representative [`Fault`], stamped with its
/// node; later sightings only append to [`FleetFault::nodes`]. Every fault
/// present in any input report is represented in the output — nothing is
/// dropped, which `tests/properties.rs` asserts by property.
pub fn dedup_fleet_faults(reports: &[(NodeId, &ExplorationReport)]) -> Vec<FleetFault> {
    let mut out: Vec<FleetFault> = Vec::new();
    let mut index: HashMap<(String, dice_bgp::Ipv4Prefix, String), usize> = HashMap::new();
    for (node, report) in reports {
        for fault in &report.faults {
            match index.entry(fault.fleet_key()) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    let existing = &mut out[*slot.get()];
                    if !existing.nodes.contains(node) {
                        existing.nodes.push(*node);
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(out.len());
                    out.push(FleetFault {
                        fault: fault.clone().with_node(*node),
                        nodes: vec![*node],
                    });
                }
            }
        }
    }
    out
}

/// Runs one exploration round beside every node of a simulated topology.
#[derive(Debug, Clone)]
pub struct FleetExplorer {
    session: DiceSession,
    core_budget: usize,
}

impl Default for FleetExplorer {
    fn default() -> Self {
        FleetExplorer::new(DiceSession::default())
    }
}

impl FleetExplorer {
    /// Creates a fleet explorer running every node's round through the
    /// given session (shared checker registry, shared engine settings).
    pub fn new(session: DiceSession) -> Self {
        FleetExplorer {
            session,
            core_budget: 0,
        }
    }

    /// Sets the global core budget shared by all concurrent node rounds
    /// (`0`, the default, uses the machine's available parallelism). The
    /// budget bounds *threads*, not results: reports are identical for
    /// every setting.
    pub fn with_core_budget(mut self, cores: usize) -> Self {
        self.core_budget = cores;
        self
    }

    /// The session driving every node round.
    pub fn session(&self) -> &DiceSession {
        &self.session
    }

    /// Explores every node of the simulation, harvesting each node's
    /// observed inputs from the delivery log.
    pub fn explore(&self, sim: &Simulator) -> FleetReport {
        let nodes: Vec<NodeId> = (0..sim.len()).map(NodeId).collect();
        self.explore_nodes(sim, &nodes)
    }

    /// Explores the given nodes only (e.g. just the DiCE-enabled ones).
    /// Duplicate ids are explored once: the report has one entry per
    /// distinct node, in first-occurrence order.
    pub fn explore_nodes(&self, sim: &Simulator, nodes: &[NodeId]) -> FleetReport {
        let mut seen = std::collections::HashSet::new();
        let nodes: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|node| seen.insert(*node))
            .collect();

        // Harvest in one pass over the delivery log, grouping entries by
        // requested node (cloning only what an explored node observed).
        let mut harvest_span = dice_obs::span("core", "fleet.harvest");
        let mut by_node: HashMap<NodeId, Vec<_>> = HashMap::new();
        for entry in sim.observed_log() {
            if seen.contains(&entry.node) {
                by_node
                    .entry(entry.node)
                    .or_default()
                    .push((entry.peer, entry.update.clone()));
            }
        }
        let harvested: Vec<_> = nodes
            .iter()
            .map(|&node| (node, by_node.remove(&node).unwrap_or_default()))
            .collect();
        harvest_span.set_detail(harvested.iter().map(|(_, w)| w.len() as u64).sum());
        drop(harvest_span);
        self.explore_windows(sim, harvested)
    }

    /// Runs one round over explicit per-node input windows — the
    /// continuous-orchestration entry point: [`crate::LiveOrchestrator`]
    /// harvests an incremental epoch window per node
    /// ([`Simulator::observed_inputs_in`]) and hands it here, so each round
    /// explores only what arrived since the previous one.
    ///
    /// Duplicate node ids collapse to their first occurrence. The global
    /// core budget is split with per-node worker pools sized by observed
    /// -input volume: a node that observed most of the window gets most of
    /// the budget. As everywhere, budgets bound *threads*, not results —
    /// for identical windows the report digest is byte-identical to
    /// [`FleetExplorer::explore_nodes`] for every budget setting.
    pub fn explore_windows(&self, sim: &Simulator, windows: Vec<NodeWindow>) -> FleetReport {
        self.explore_windows_collecting(sim, windows).0
    }

    /// Like [`FleetExplorer::explore_windows`], but also returns every
    /// node's explored outcome sequence (in window order, each node's
    /// outcomes concatenated in input order) — what a live orchestrator
    /// stitches into [`crate::checker::RoundOutcomes`] for the cross-round
    /// ([`crate::FaultChecker::check_live`]) pass.
    pub fn explore_windows_collecting(
        &self,
        sim: &Simulator,
        windows: Vec<NodeWindow>,
    ) -> (FleetReport, Vec<(NodeId, Vec<HandlerOutcome>)>) {
        let started = Instant::now();
        let mut seen = std::collections::HashSet::new();
        let windows: Vec<NodeWindow> = windows
            .into_iter()
            .filter(|(node, _)| seen.insert(*node))
            .collect();

        let budget = crate::parallel::resolve_cores(self.core_budget);
        // Split the budget: at most `concurrent` node rounds run at once,
        // each with one baseline worker plus a share of the leftover
        // budget proportional to its window's observed-input volume, and a
        // single solver worker per input (EngineConfig::with_core_budget).
        // The floors guarantee the extras sum to at most `budget -
        // concurrent`, so any `concurrent` rounds running simultaneously
        // hold at most `budget` threads — no skew of window sizes can
        // oversubscribe the machine across the three nesting levels.
        let concurrent = budget.min(windows.len()).max(1);
        let total_inputs: usize = windows.iter().map(|(_, inputs)| inputs.len()).sum();
        let extra = budget.saturating_sub(concurrent);
        let sessions: Vec<DiceSession> = windows
            .iter()
            .map(|(_, inputs)| {
                let share = 1
                    + (extra * inputs.len())
                        .checked_div(total_inputs)
                        .unwrap_or(0);
                self.session.with_workers(share).with_engine_core_budget(1)
            })
            .collect();
        let items: Vec<(usize, &NodeWindow)> = windows.iter().enumerate().collect();

        // Work-stealing fan-out over nodes, results merged back in window
        // order so the report is deterministic for every budget.
        let mut explore_span = dice_obs::span("core", "fleet.explore");
        explore_span.set_detail(windows.len() as u64);
        let results = crate::parallel::fan_out(&items, concurrent, |(i, (node, observed))| {
            sessions[*i].explore_collecting(sim.router(*node), observed)
        });
        drop(explore_span);

        let mut node_reports: Vec<NodeReport> = Vec::with_capacity(windows.len());
        let mut node_outcomes: Vec<(NodeId, Vec<HandlerOutcome>)> =
            Vec::with_capacity(windows.len());
        for ((node, _), (report, outcomes)) in windows.iter().zip(results) {
            node_reports.push(NodeReport {
                node: *node,
                name: sim.name(*node).to_string(),
                report,
            });
            node_outcomes.push((*node, outcomes));
        }
        let keyed: Vec<(NodeId, &ExplorationReport)> =
            node_reports.iter().map(|n| (n.node, &n.report)).collect();
        let faults = dedup_fleet_faults(&keyed);

        let report = FleetReport {
            nodes: node_reports,
            faults,
            injected_faults: sim.injected_fault_count() as u64,
            elapsed: started.elapsed(),
        };
        (report, node_outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{ForwardingLoopChecker, OriginHijackChecker};
    use crate::explorer::Dice;
    use crate::session::DiceBuilder;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::message::{BgpMessage, UpdateMessage};
    use dice_bgp::AsPath;
    use dice_netsim::topology::{addr, asn, figure2_topology, CustomerFilterMode};
    use std::net::Ipv4Addr;

    fn announcement(prefix: &str, path: &[u32], next_hop: Ipv4Addr) -> BgpMessage {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence(path.iter().copied());
        attrs.next_hop = next_hop;
        BgpMessage::Update(UpdateMessage::announce(
            vec![prefix.parse().expect("valid")],
            &attrs,
        ))
    }

    /// The Figure 2 simulation after live traffic: the Internet announces
    /// the victim /22 (installed everywhere), then the customer makes its
    /// routine announcement — both recorded in the observation log.
    fn simulated_figure2(mode: CustomerFilterMode) -> Simulator {
        let topo = figure2_topology(mode);
        let provider = topo.node_by_name("Provider").expect("node");
        let mut sim = Simulator::new(&topo);
        sim.inject(
            provider,
            addr::INTERNET,
            announcement(
                "208.65.152.0/22",
                &[asn::INTERNET, 3356, asn::VICTIM],
                addr::INTERNET,
            ),
        );
        sim.run_to_quiescence(100);
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement(
                "41.1.0.0/16",
                &[asn::CUSTOMER, asn::CUSTOMER],
                addr::CUSTOMER,
            ),
        );
        sim.run_to_quiescence(100);
        sim
    }

    #[test]
    fn single_node_fleet_run_is_byte_identical_to_legacy_dice_run() {
        let sim = simulated_figure2(CustomerFilterMode::Erroneous);
        let topo = figure2_topology(CustomerFilterMode::Erroneous);
        let provider = topo.node_by_name("Provider").expect("node");

        let fleet = FleetExplorer::default().explore_nodes(&sim, &[provider]);
        let legacy = Dice::new().run(sim.router(provider), &sim.observed_inputs(provider));

        assert_eq!(fleet.nodes.len(), 1);
        assert_eq!(
            fleet.nodes[0].report.digest(),
            legacy.digest(),
            "fleet single-node report must be byte-identical to Dice::run"
        );
        assert!(legacy.has_faults(), "the erroneous filter is flagged");
        assert_eq!(fleet.faults.len(), legacy.faults.len());
        assert_eq!(fleet.faults[0].nodes, vec![provider]);
        assert_eq!(fleet.faults[0].fault.node, Some(provider));
    }

    #[test]
    fn fleet_round_explores_every_node_concurrently() {
        let sim = simulated_figure2(CustomerFilterMode::Erroneous);
        let session = DiceBuilder::new()
            .checker(Box::new(OriginHijackChecker::new()))
            .checker(Box::new(ForwardingLoopChecker::new()))
            .build();
        let report = FleetExplorer::new(session).explore(&sim);

        assert_eq!(report.nodes.len(), 3, "all Figure 2 nodes explored");
        assert!(report.has_faults(), "the provider leak is found");
        assert!(report.total_runs() > 0);
        assert!(report.nodes.iter().all(|n| n.report.isolation_preserved));
        // The customer node observed nothing (no one announces to it in
        // this scenario beyond re-advertisements it originated).
        let text = report.to_string();
        assert!(text.contains("Provider"));
        assert!(text.contains("fault(s)"));
    }

    #[test]
    fn fleet_round_is_identical_under_both_checkpoint_modes() {
        let sim = simulated_figure2(CustomerFilterMode::Erroneous);
        let cow = FleetExplorer::default().explore(&sim);
        let cloned = FleetExplorer::new(
            DiceBuilder::new()
                .checkpoint_mode(crate::CheckpointMode::DeepClonePerInput)
                .build(),
        )
        .explore(&sim);
        assert_eq!(
            cow.digest(),
            cloned.digest(),
            "the CoW round checkpoint must not change any fleet result"
        );
        assert!(cow.has_faults());
    }

    #[test]
    fn fleet_report_is_deterministic_across_core_budgets() {
        let sim = simulated_figure2(CustomerFilterMode::Erroneous);
        let digest_for = |budget: usize| {
            FleetExplorer::default()
                .with_core_budget(budget)
                .explore(&sim)
                .digest()
        };
        let sequential = digest_for(1);
        assert_eq!(sequential, digest_for(2), "budget 1 vs 2");
        assert_eq!(sequential, digest_for(8), "budget 1 vs 8");
        assert_eq!(sequential, digest_for(0), "budget 1 vs auto");
    }

    #[test]
    fn fleet_dedup_merges_sightings_of_the_same_fault() {
        // The erroneous filter leak is detected from the provider's
        // exploration; inject the same observed input at two vantage nodes
        // sharing a config by exploring the provider twice under different
        // ids via dedup_fleet_faults directly.
        let sim = simulated_figure2(CustomerFilterMode::Erroneous);
        let topo = figure2_topology(CustomerFilterMode::Erroneous);
        let provider = topo.node_by_name("Provider").expect("node");
        let report = Dice::new().run(sim.router(provider), &sim.observed_inputs(provider));
        assert!(report.has_faults());

        let merged = dedup_fleet_faults(&[(NodeId(0), &report), (NodeId(2), &report)]);
        assert_eq!(merged.len(), report.faults.len(), "same faults, deduped");
        for fault in &merged {
            assert_eq!(fault.nodes, vec![NodeId(0), NodeId(2)]);
            assert_eq!(fault.fault.node, Some(NodeId(0)), "first sighting wins");
        }
        // No sighting is ever dropped.
        let merged_keys: Vec<_> = merged.iter().map(|f| f.fault.fleet_key()).collect();
        for fault in &report.faults {
            assert!(merged_keys.contains(&fault.fleet_key()));
        }
    }

    #[test]
    fn explore_windows_on_full_windows_matches_explore_nodes() {
        let sim = simulated_figure2(CustomerFilterMode::Erroneous);
        let nodes: Vec<NodeId> = (0..sim.len()).map(NodeId).collect();
        let explorer = FleetExplorer::default();

        let via_nodes = explorer.explore_nodes(&sim, &nodes);
        let head = sim.observed_cursor();
        let windows: Vec<_> = nodes
            .iter()
            .map(|&n| (n, sim.observed_inputs_in(n, 0, head)))
            .collect();
        let via_windows = explorer.explore_windows(&sim, windows);
        assert_eq!(via_windows.digest(), via_nodes.digest());

        // Volume-adaptive budgets only change thread counts, never the
        // report: wildly different budgets agree byte for byte.
        let windows = |_| {
            nodes
                .iter()
                .map(|&n| (n, sim.observed_inputs_in(n, 0, head)))
                .collect::<Vec<_>>()
        };
        for budget in [1usize, 3, 16] {
            let report = FleetExplorer::default()
                .with_core_budget(budget)
                .explore_windows(&sim, windows(budget));
            assert_eq!(report.digest(), via_nodes.digest(), "budget {budget}");
        }
        // Duplicate window entries collapse to the first occurrence.
        let mut duplicated = windows(0);
        let extra = duplicated[0].clone();
        duplicated.push(extra);
        let report = explorer.explore_windows(&sim, duplicated);
        assert_eq!(report.digest(), via_nodes.digest());
        // An empty window set yields an empty report.
        let empty = explorer.explore_windows(&sim, Vec::new());
        assert!(empty.nodes.is_empty());
        assert!(!empty.has_faults());
    }

    #[test]
    fn duplicate_node_ids_are_explored_once() {
        let sim = simulated_figure2(CustomerFilterMode::Erroneous);
        let topo = figure2_topology(CustomerFilterMode::Erroneous);
        let provider = topo.node_by_name("Provider").expect("node");

        let once = FleetExplorer::default().explore_nodes(&sim, &[provider]);
        let duplicated = FleetExplorer::default().explore_nodes(&sim, &[provider, provider]);
        assert_eq!(duplicated.nodes.len(), 1, "duplicates collapse");
        assert_eq!(duplicated.digest(), once.digest());
    }

    #[test]
    fn correct_fleet_stays_clean() {
        let sim = simulated_figure2(CustomerFilterMode::Correct);
        let report = FleetExplorer::default().explore(&sim);
        assert!(!report.has_faults(), "{report}");
        assert!(report.to_string().contains("no faults detected fleet-wide"));
        assert_eq!(report.total_sightings(), 0);
        assert!(report.node(NodeId(99)).is_none());
    }
}
