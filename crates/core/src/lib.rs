//! # dice-core
//!
//! DiCE: online testing of federated and heterogeneous distributed systems
//! (Canini et al., USENIX ATC 2011), reproduced in Rust.
//!
//! DiCE continuously and automatically explores system behaviour to check
//! whether the system deviates from its desired behaviour. It does so by
//!
//! * taking a cheap, fork-style **checkpoint** of the live node
//!   ([`CheckpointedRouter`], `dice-checkpoint`),
//! * deriving **symbolic inputs** from previously observed UPDATE messages
//!   ([`UpdateTemplate`]) — only selected fields are symbolic, so generated
//!   messages are always syntactically valid,
//! * running the node's message handler under a **concolic engine**
//!   ([`SymbolicUpdateHandler`], `dice-symexec`) that records branch
//!   constraints — from code and from interpreted configuration — negates
//!   them one at a time and solves for inputs that take the other side,
//! * keeping exploration **isolated** from the deployed system
//!   ([`MessageInterceptor`], [`LiveStateFingerprint`]), and
//! * applying **fault checkers** to every explored state; the showcase
//!   checker flags origin misconfiguration / route leaks
//!   ([`OriginHijackChecker`]), joined by an adversarial-scenario library:
//!   self-resolving forwarding loops ([`ForwardingLoopChecker`]),
//!   Gao-Rexford valley violations ([`RouteLeakChecker`]), more-specific
//!   prefix hijacks ([`MoreSpecificHijackChecker`]), blackholed next hops
//!   ([`BlackholeChecker`]) and cross-round route flaps
//!   ([`CrossRoundFlapChecker`], via [`FaultChecker::check_live`]).
//!
//! Three entry points drive rounds:
//!
//! * [`DiceBuilder`] → [`DiceSession`] — one node, explicit observed
//!   inputs, pluggable checker registry ([`FaultChecker`] is object-safe
//!   and `Send + Sync`); [`Dice`] remains as a thin compatibility wrapper.
//! * [`FleetExplorer`] — the paper's federated setting: harvests each
//!   node's observed inputs from a simulated topology and runs one round
//!   beside every node concurrently, merging results into a [`FleetReport`]
//!   with fleet-wide fault deduplication.
//! * [`LiveOrchestrator`] — the paper's *continuous* operating mode:
//!   interleaves live simulation progress with exploration rounds, each
//!   harvesting an incremental epoch window of newly observed inputs, and
//!   accumulates a [`LiveReport`] with cross-round fault deduplication.
//!   Sequence-aware checkers ([`RouteOscillationChecker`]) exploit the
//!   per-run intercepted message sequences continuous rounds record, and a
//!   deterministic [`FaultPlan`] ([`LiveOrchestrator::with_fault_plan`])
//!   perturbs the network between epochs so exploration also covers the
//!   faulty-network behaviours a quiescent run can never exhibit.
//!
//! ## Example
//!
//! ```
//! use dice_core::{Dice, CustomerFilterMode};
//! use dice_bgp::attributes::RouteAttrs;
//! use dice_bgp::message::UpdateMessage;
//! use dice_bgp::AsPath;
//! use dice_netsim::topology::{addr, figure2_topology};
//! use dice_router::BgpRouter;
//!
//! // The Provider router of Figure 2, with partially correct (erroneous)
//! // customer route filtering.
//! let topo = figure2_topology(CustomerFilterMode::Erroneous);
//! let spec = &topo.nodes()[topo.node_by_name("Provider").unwrap().0];
//! let mut router = BgpRouter::new(spec.config.clone());
//! router.start();
//!
//! // An installed route for the victim prefix, learned from the Internet.
//! let internet = router.peer_by_address(addr::INTERNET).unwrap();
//! let mut attrs = RouteAttrs::default();
//! attrs.as_path = AsPath::from_sequence([1299, 3356, 36561]);
//! router.handle_update(internet, &UpdateMessage::announce(
//!     vec!["208.65.152.0/22".parse().unwrap()], &attrs));
//!
//! // DiCE explores inputs derived from a routine customer announcement and
//! // flags the potential hijack enabled by the missing filter.
//! let customer = router.peer_by_address(addr::CUSTOMER).unwrap();
//! let mut cattrs = RouteAttrs::default();
//! cattrs.as_path = AsPath::from_sequence([17557, 17557]);
//! let observed = UpdateMessage::announce(vec!["41.1.0.0/16".parse().unwrap()], &cattrs);
//! let report = Dice::new().run_single(&router, customer, &observed);
//! assert!(report.has_faults());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod checkpoint;
pub mod checkpointable;
pub mod control;
pub mod explorer;
pub mod fault_search;
pub mod fleet;
pub mod handler;
pub mod isolation;
pub mod live;
mod parallel;
pub mod report;
pub mod scheduler;
pub mod session;
pub mod symbolic_input;

pub use checker::{
    AsRelationship, BgpWedgieChecker, BlackholeChecker, CrossRoundFlapChecker, Fault, FaultChecker,
    FaultKind, ForwardingLoopChecker, MoreSpecificHijackChecker, OriginHijackChecker,
    RoundOutcomes, RouteLeakChecker, RouteOscillationChecker,
};
pub use checkpoint::RoundCheckpoint;
pub use checkpointable::CheckpointedRouter;
pub use control::{
    ControlPlane, ControlSnapshot, IngestCounters, SearchCounters, CONTROL_SCHEMA_VERSION,
};
pub use explorer::{CheckpointMode, Dice, DiceConfig};
pub use fault_search::{
    fault_key, topology_fingerprint, FaultPlanSearch, FaultScenario, ReproBundle, ReproReplay,
    SearchReport, SpecKindMask,
};
pub use fleet::{
    dedup_fleet_faults, FleetExplorer, FleetFault, FleetReport, NodeReport, NodeWindow,
};
pub use handler::{HandlerOutcome, SymbolicUpdateHandler};
pub use isolation::{LiveStateFingerprint, MessageInterceptor};
pub use live::{LiveFault, LiveOrchestrator, LiveReport, LiveRound, SearchSummary};
pub use report::ExplorationReport;
pub use scheduler::{ScheduleResult, SharedCoreScheduler};
pub use session::{DiceBuilder, DiceSession};
pub use symbolic_input::{fields, UpdateTemplate};

// Re-exported so examples and benches can select the misconfiguration mode
// and build fault plans without importing dice-netsim directly.
pub use dice_netsim::{CustomerFilterMode, FaultPlan, FaultSpec, FaultTrace};
