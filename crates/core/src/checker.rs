//! Fault checkers: predicates over exploratory outcomes and the
//! checkpointed node state.
//!
//! Checkers implement [`FaultChecker`], an object-safe `Send + Sync` trait,
//! and are registered on a [`crate::DiceSession`] through
//! [`crate::DiceBuilder::checker`]; the session applies every registered
//! checker to every explored outcome.
//!
//! Three checkers ship with the crate:
//!
//! * [`OriginHijackChecker`] — the showcase checker of §4.2: "for each
//!   exploratory message, we check whether the announced route is accepted,
//!   and in this case we detect a potential hijack if that route overrides
//!   the origin AS of a route already in the routing table prior to
//!   starting exploration." Prefixes that are hijackable by nature (IP
//!   anycast) can be whitelisted to suppress false positives.
//! * [`ForwardingLoopChecker`] — flags accepted exploratory announcements
//!   whose NLRI covers their own BGP next hop with no more-specific
//!   installed route to resolve it: installing such a route makes next-hop
//!   resolution recurse through the route itself, a forwarding loop.
//! * [`RouteOscillationChecker`] — a *sequence-aware* checker over
//!   [`FaultChecker::check_round`]: it replays the intercepted message
//!   sequences of a whole round's runs and flags prefixes the node would
//!   alternately announce and withdraw — the route-flapping signature that
//!   per-outcome checks cannot see.

use std::fmt;
use std::net::Ipv4Addr;

use dice_bgp::prefix::Ipv4Prefix;
use dice_bgp::Asn;
use dice_netsim::topology::NodeId;
use dice_router::Rib;

use crate::handler::HandlerOutcome;

/// A fault detected during exploration.
///
/// Construct through [`Fault::new`]; the struct is `#[non_exhaustive]` so
/// future provenance fields are not breaking changes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Fault {
    /// Name of the checker that reported the fault.
    pub checker: String,
    /// The topology node whose exploration found the fault. `None` for
    /// single-node runs outside a fleet context.
    pub node: Option<NodeId>,
    /// What was detected.
    pub kind: FaultKind,
}

/// The kind of misbehaviour a checker detected.
///
/// `#[non_exhaustive]`: new checkers add variants without breaking
/// downstream matches.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// An exploratory announcement would override the origin AS of an
    /// installed route: a potential prefix hijack / route leak.
    PotentialHijack {
        /// The prefix the exploratory message announced.
        announced: Ipv4Prefix,
        /// The origin AS the exploratory message claimed.
        claimed_origin: Asn,
        /// The already-installed prefix that covers the announcement.
        existing_prefix: Ipv4Prefix,
        /// The trusted origin AS of the installed route.
        existing_origin: Asn,
    },
    /// An accepted announcement covers its own BGP next hop with no
    /// more-specific installed route: next-hop resolution would recurse
    /// through the announced route itself.
    ForwardingLoop {
        /// The prefix the exploratory message announced.
        announced: Ipv4Prefix,
        /// The next hop that would resolve through the announcement.
        next_hop: Ipv4Addr,
    },
    /// Across one round's exploratory runs the node alternately announced
    /// and withdrew the same prefix: inputs within the observed envelope
    /// flip the import verdict back and forth, so the deployment would
    /// flap the route.
    RouteOscillation {
        /// The prefix the node would flap.
        announced: Ipv4Prefix,
        /// Announce↔withdraw transitions observed across the round's runs.
        /// Deliberately excluded from the [`fmt::Display`] rendering so the
        /// fleet/cross-round dedup key ([`Fault::fleet_key`]) stays stable
        /// when later rounds observe more flips of the same prefix.
        transitions: usize,
    },
}

impl Fault {
    /// Creates a fault reported by the named checker, with no node
    /// provenance.
    pub fn new(checker: impl Into<String>, kind: FaultKind) -> Self {
        Fault {
            checker: checker.into(),
            node: None,
            kind,
        }
    }

    /// Stamps the topology node whose exploration found the fault.
    pub fn with_node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// The prefix range the fault is about.
    pub fn leaked_prefix(&self) -> Ipv4Prefix {
        match &self.kind {
            FaultKind::PotentialHijack { announced, .. } => *announced,
            FaultKind::ForwardingLoop { announced, .. } => *announced,
            FaultKind::RouteOscillation { announced, .. } => *announced,
        }
    }

    /// The fleet-wide deduplication key: `(checker, prefix, offending
    /// message)`. Two sightings of the same misbehaviour on different nodes
    /// share a key; node provenance is deliberately excluded.
    pub fn fleet_key(&self) -> (String, Ipv4Prefix, String) {
        (
            self.checker.clone(),
            self.leaked_prefix(),
            self.kind.to_string(),
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::PotentialHijack {
                announced,
                claimed_origin,
                existing_prefix,
                existing_origin,
            } => {
                write!(
                    f,
                    "potential hijack: {announced} claimed by {claimed_origin} would override {existing_prefix} originated by {existing_origin}"
                )
            }
            FaultKind::ForwardingLoop {
                announced,
                next_hop,
            } => {
                write!(
                    f,
                    "forwarding loop: {announced} covers its own next hop {next_hop}"
                )
            }
            FaultKind::RouteOscillation { announced, .. } => {
                // The transition count is intentionally not rendered: the
                // rendering is the dedup key, and the same flapping prefix
                // must collapse across rounds that saw different counts.
                write!(
                    f,
                    "route oscillation: {announced} alternates between announce and withdraw"
                )
            }
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        match self.node {
            Some(node) => write!(f, " [{} @ node {}]", self.checker, node.0),
            None => write!(f, " [{}]", self.checker),
        }
    }
}

/// A checker applied to every exploratory outcome.
///
/// The trait is object-safe and `Send + Sync`: sessions hold checkers as
/// `Arc<dyn FaultChecker>` built once and shared across exploration worker
/// threads.
pub trait FaultChecker: Send + Sync {
    /// Short name used in reports and fleet-wide deduplication keys.
    fn name(&self) -> &str;

    /// Inspects one outcome against the checkpointed routing table taken
    /// before exploration started.
    fn check(&self, outcome: &HandlerOutcome, checkpoint_rib: &Rib) -> Option<Fault>;

    /// Inspects a whole round's outcomes *as a sequence*, in execution
    /// order (seed runs first, then generated runs, concatenated over
    /// observed inputs in input order), against the checkpointed routing
    /// table.
    ///
    /// The default implementation reports nothing — per-outcome checkers
    /// need not care. Sequence-aware checkers such as
    /// [`RouteOscillationChecker`] override it to detect misbehaviour that
    /// only shows across runs (flapping, churn). The session applies it
    /// once per exploration round, after the per-outcome pass.
    fn check_round(&self, outcomes: &[HandlerOutcome], checkpoint_rib: &Rib) -> Vec<Fault> {
        let _ = (outcomes, checkpoint_rib);
        Vec::new()
    }
}

/// The origin-misconfiguration (prefix hijack / route leak) checker.
#[derive(Debug, Clone, Default)]
pub struct OriginHijackChecker {
    anycast_whitelist: Vec<Ipv4Prefix>,
}

impl OriginHijackChecker {
    /// Creates a checker with an empty whitelist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds prefixes that are legitimately multi-origin (IP anycast); any
    /// exploratory announcement falling inside them is not reported.
    pub fn with_anycast_whitelist(mut self, prefixes: Vec<Ipv4Prefix>) -> Self {
        self.anycast_whitelist = prefixes;
        self
    }

    fn whitelisted(&self, prefix: &Ipv4Prefix) -> bool {
        self.anycast_whitelist.iter().any(|w| w.contains(prefix))
    }
}

impl FaultChecker for OriginHijackChecker {
    fn name(&self) -> &str {
        "origin-hijack"
    }

    fn check(&self, outcome: &HandlerOutcome, checkpoint_rib: &Rib) -> Option<Fault> {
        if !outcome.accepted {
            return None;
        }
        if self.whitelisted(&outcome.prefix) {
            return None;
        }
        // The route the announcement would compete with: the most specific
        // installed route covering the announced prefix. (Existing routes
        // are assumed trustworthy, as in the paper.)
        let existing = checkpoint_rib.best_covering_route(&outcome.prefix)?;
        let existing_origin = existing.origin_as()?;
        if existing_origin.value() == outcome.origin_as {
            return None;
        }
        Some(Fault::new(
            self.name(),
            FaultKind::PotentialHijack {
                announced: outcome.prefix,
                claimed_origin: Asn(outcome.origin_as),
                existing_prefix: existing.prefix,
                existing_origin,
            },
        ))
    }
}

/// Flags accepted announcements whose prefix covers their own next hop.
///
/// Installing such a route makes the next hop resolve through the route
/// itself unless a more-specific installed route still covers it — the
/// recursive-resolution loop that self-referential static or leaked routes
/// cause in practice.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForwardingLoopChecker;

impl ForwardingLoopChecker {
    /// Creates the checker.
    pub fn new() -> Self {
        Self
    }
}

impl FaultChecker for ForwardingLoopChecker {
    fn name(&self) -> &str {
        "forwarding-loop"
    }

    fn check(&self, outcome: &HandlerOutcome, checkpoint_rib: &Rib) -> Option<Fault> {
        if !outcome.accepted {
            return None;
        }
        let next_hop = u32::from(outcome.next_hop);
        if next_hop == 0 || !outcome.prefix.contains_ip(next_hop) {
            return None;
        }
        // Only a *strictly* more specific installed route keeps next-hop
        // resolution off the announced route: an equal-length route is the
        // very prefix the announcement competes to replace, so it cannot be
        // relied on to resolve the next hop.
        if let Some(existing) = checkpoint_rib.lookup_ip(next_hop) {
            if existing.prefix.len() > outcome.prefix.len() {
                return None;
            }
        }
        Some(Fault::new(
            self.name(),
            FaultKind::ForwardingLoop {
                announced: outcome.prefix,
                next_hop: outcome.next_hop,
            },
        ))
    }
}

/// Flags prefixes the node would alternately announce and withdraw across
/// one round's exploratory runs — route flapping driven by inputs inside
/// the observed envelope.
///
/// The checker is sequence-aware: it implements
/// [`FaultChecker::check_round`] over the round's [`HandlerOutcome`]s in
/// execution order, derives one announce/withdraw event per run and prefix
/// from the recorded intercepted message sequence
/// ([`HandlerOutcome::intercepted`]), and reports every prefix whose event
/// sequence flips direction at least
/// [`min_transitions`](RouteOscillationChecker::with_min_transitions)
/// times (default 2 — a full announce→withdraw→announce cycle). The
/// per-outcome [`FaultChecker::check`] hook reports nothing.
#[derive(Debug, Clone, Copy)]
pub struct RouteOscillationChecker {
    min_transitions: usize,
}

impl Default for RouteOscillationChecker {
    fn default() -> Self {
        RouteOscillationChecker { min_transitions: 2 }
    }
}

impl RouteOscillationChecker {
    /// Creates the checker with the default threshold of two transitions
    /// (one full announce/withdraw cycle).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets how many announce↔withdraw transitions a prefix's event
    /// sequence needs before it is reported (clamped to at least 1).
    pub fn with_min_transitions(mut self, transitions: usize) -> Self {
        self.min_transitions = transitions.max(1);
        self
    }
}

impl FaultChecker for RouteOscillationChecker {
    fn name(&self) -> &str {
        "route-oscillation"
    }

    fn check(&self, _outcome: &HandlerOutcome, _checkpoint_rib: &Rib) -> Option<Fault> {
        None
    }

    fn check_round(&self, outcomes: &[HandlerOutcome], _checkpoint_rib: &Rib) -> Vec<Fault> {
        use std::collections::{BTreeMap, BTreeSet};

        // One event per (run, prefix, direction): a run announcing the same
        // prefix to three peers is one announce event, not three.
        let mut events: BTreeMap<Ipv4Prefix, Vec<bool>> = BTreeMap::new();
        for outcome in outcomes {
            let mut announced: BTreeSet<Ipv4Prefix> = BTreeSet::new();
            let mut withdrawn: BTreeSet<Ipv4Prefix> = BTreeSet::new();
            for (_, update) in &outcome.intercepted {
                announced.extend(update.nlri.iter().copied());
                withdrawn.extend(update.withdrawn.iter().copied());
            }
            for prefix in announced {
                events.entry(prefix).or_default().push(true);
            }
            for prefix in withdrawn {
                events.entry(prefix).or_default().push(false);
            }
        }

        // BTreeMap iteration keeps the report order deterministic.
        events
            .into_iter()
            .filter_map(|(prefix, sequence)| {
                let transitions = sequence.windows(2).filter(|w| w[0] != w[1]).count();
                (transitions >= self.min_transitions).then(|| {
                    Fault::new(
                        self.name(),
                        FaultKind::RouteOscillation {
                            announced: prefix,
                            transitions,
                        },
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::message::UpdateMessage;
    use dice_bgp::route::{PeerId, Route};
    use dice_bgp::AsPath;
    use dice_router::FilterOutcome;
    use std::net::Ipv4Addr;

    fn rib_with_youtube() -> Rib {
        let mut rib = Rib::new();
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([1299, 3356, 36561]);
        attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
        rib.announce(Route::new(
            "208.65.152.0/22".parse().expect("valid"),
            attrs,
            PeerId(2),
            2,
        ));
        rib
    }

    fn outcome(prefix: &str, origin_as: u32, accepted: bool) -> HandlerOutcome {
        HandlerOutcome {
            prefix: prefix.parse().expect("valid"),
            origin_as,
            accepted,
            next_hop: Ipv4Addr::new(10, 0, 1, 1),
            filter: if accepted {
                FilterOutcome::accepted()
            } else {
                FilterOutcome::rejected()
            },
            intercepted: Vec::new(),
        }
    }

    /// An outcome that would have emitted one announce (or withdraw) of
    /// `prefix` toward a single peer.
    fn outcome_emitting(prefix: &str, announce: bool) -> HandlerOutcome {
        let mut o = outcome(prefix, 17557, announce);
        let parsed: Ipv4Prefix = prefix.parse().expect("valid");
        let update = if announce {
            UpdateMessage::announce(vec![parsed], &RouteAttrs::default())
        } else {
            UpdateMessage::withdraw(vec![parsed])
        };
        o.intercepted = vec![(PeerId(9), update)];
        o
    }

    #[test]
    fn detects_the_youtube_hijack() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new();
        // Pakistan Telecom (17557) announces the more-specific /24.
        let fault = checker
            .check(&outcome("208.65.153.0/24", 17557, true), &rib)
            .expect("hijack detected");
        match &fault.kind {
            FaultKind::PotentialHijack {
                claimed_origin,
                existing_origin,
                existing_prefix,
                ..
            } => {
                assert_eq!(*claimed_origin, Asn(17557));
                assert_eq!(*existing_origin, Asn(36561));
                assert_eq!(existing_prefix.to_string(), "208.65.152.0/22");
            }
            other => panic!("unexpected fault kind {other:?}"),
        }
        assert_eq!(fault.leaked_prefix().to_string(), "208.65.153.0/24");
        assert_eq!(fault.checker, "origin-hijack");
        assert_eq!(fault.node, None);
        assert!(fault.to_string().contains("17557"));
        assert!(fault.to_string().contains("origin-hijack"));
        assert_eq!(checker.name(), "origin-hijack");
    }

    #[test]
    fn node_provenance_is_stamped_and_displayed() {
        let rib = rib_with_youtube();
        let fault = OriginHijackChecker::new()
            .check(&outcome("208.65.153.0/24", 17557, true), &rib)
            .expect("hijack detected")
            .with_node(NodeId(1));
        assert_eq!(fault.node, Some(NodeId(1)));
        assert!(fault.to_string().contains("node 1"));
        // The fleet key ignores provenance: the same misbehaviour seen on
        // two nodes deduplicates.
        let unstamped = OriginHijackChecker::new()
            .check(&outcome("208.65.153.0/24", 17557, true), &rib)
            .expect("hijack detected");
        assert_eq!(fault.fleet_key(), unstamped.fleet_key());
        assert_ne!(fault, unstamped, "provenance still distinguishes values");
    }

    #[test]
    fn rejected_routes_are_not_faults() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new();
        assert!(checker
            .check(&outcome("208.65.153.0/24", 17557, false), &rib)
            .is_none());
    }

    #[test]
    fn same_origin_is_not_a_fault() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new();
        assert!(checker
            .check(&outcome("208.65.153.0/24", 36561, true), &rib)
            .is_none());
    }

    #[test]
    fn uncovered_prefixes_are_not_faults() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new();
        assert!(checker
            .check(&outcome("1.2.3.0/24", 17557, true), &rib)
            .is_none());
    }

    #[test]
    fn anycast_whitelist_suppresses_false_positives() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new()
            .with_anycast_whitelist(vec!["208.65.152.0/22".parse().expect("valid")]);
        assert!(checker
            .check(&outcome("208.65.153.0/24", 17557, true), &rib)
            .is_none());
    }

    #[test]
    fn checkers_are_object_safe_and_shareable() {
        let checkers: Vec<std::sync::Arc<dyn FaultChecker>> = vec![
            std::sync::Arc::new(OriginHijackChecker::new()),
            std::sync::Arc::new(ForwardingLoopChecker::new()),
            std::sync::Arc::new(RouteOscillationChecker::new()),
        ];
        let names: Vec<&str> = checkers.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            ["origin-hijack", "forwarding-loop", "route-oscillation"]
        );
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        assert_send_sync(&checkers);
        // The default round hook reports nothing for per-outcome checkers.
        let rib = Rib::new();
        let round = [outcome("10.0.0.0/8", 17557, true)];
        assert!(checkers[0].check_round(&round, &rib).is_empty());
    }

    #[test]
    fn oscillation_flags_a_full_announce_withdraw_cycle() {
        let checker = RouteOscillationChecker::new();
        let rib = rib_with_youtube();
        let round = [
            outcome_emitting("41.1.0.0/16", true),
            outcome_emitting("41.1.0.0/16", false),
            outcome_emitting("41.1.0.0/16", true),
        ];
        let faults = checker.check_round(&round, &rib);
        assert_eq!(faults.len(), 1);
        let fault = &faults[0];
        assert_eq!(fault.checker, "route-oscillation");
        assert_eq!(fault.leaked_prefix().to_string(), "41.1.0.0/16");
        match fault.kind {
            FaultKind::RouteOscillation { transitions, .. } => assert_eq!(transitions, 2),
            ref other => panic!("unexpected fault kind {other:?}"),
        }
        assert!(fault.to_string().contains("route oscillation"));
        // The per-outcome hook stays silent by design.
        assert!(checker.check(&round[0], &rib).is_none());
    }

    #[test]
    fn oscillation_needs_enough_transitions_and_matching_prefixes() {
        let checker = RouteOscillationChecker::new();
        let rib = Rib::new();
        // Announce then withdraw is one transition — half a cycle.
        let half = [
            outcome_emitting("41.1.0.0/16", true),
            outcome_emitting("41.1.0.0/16", false),
        ];
        assert!(checker.check_round(&half, &rib).is_empty());
        // Flips across *different* prefixes never alternate.
        let disjoint = [
            outcome_emitting("41.1.0.0/16", true),
            outcome_emitting("41.64.0.0/12", false),
            outcome_emitting("41.1.0.0/16", true),
        ];
        assert!(checker.check_round(&disjoint, &rib).is_empty());
        // A lowered threshold reports the half cycle.
        let eager = RouteOscillationChecker::new().with_min_transitions(0);
        assert_eq!(eager.check_round(&half, &rib).len(), 1);
        // Runs that intercept nothing contribute no events.
        let quiet = [outcome("41.1.0.0/16", 17557, false)];
        assert!(checker.check_round(&quiet, &rib).is_empty());
    }

    #[test]
    fn oscillation_fleet_key_is_stable_across_transition_counts() {
        // Rounds of different lengths see different flip counts for the
        // same flapping prefix; dedup across rounds must still collapse
        // them into one fault.
        let few = Fault::new(
            "route-oscillation",
            FaultKind::RouteOscillation {
                announced: "41.1.0.0/16".parse().expect("valid"),
                transitions: 2,
            },
        );
        let many = Fault::new(
            "route-oscillation",
            FaultKind::RouteOscillation {
                announced: "41.1.0.0/16".parse().expect("valid"),
                transitions: 7,
            },
        );
        assert_eq!(few.fleet_key(), many.fleet_key());
        assert_ne!(few, many, "the counts still distinguish values");
    }

    #[test]
    fn forwarding_loop_fires_when_prefix_covers_next_hop() {
        let checker = ForwardingLoopChecker::new();
        let rib = Rib::new();
        // 10.0.0.0/8 with next hop 10.0.1.1: the route covers its own next
        // hop and nothing more specific resolves it.
        let fault = checker
            .check(&outcome("10.0.0.0/8", 17557, true), &rib)
            .expect("loop detected");
        match &fault.kind {
            FaultKind::ForwardingLoop {
                announced,
                next_hop,
            } => {
                assert_eq!(announced.to_string(), "10.0.0.0/8");
                assert_eq!(*next_hop, Ipv4Addr::new(10, 0, 1, 1));
            }
            other => panic!("unexpected fault kind {other:?}"),
        }
        assert_eq!(fault.checker, "forwarding-loop");
        assert!(fault.to_string().contains("forwarding loop"));
    }

    #[test]
    fn forwarding_loop_needs_acceptance_and_coverage() {
        let checker = ForwardingLoopChecker::new();
        let rib = Rib::new();
        // Rejected: no fault even though the prefix covers the next hop.
        assert!(checker
            .check(&outcome("10.0.0.0/8", 17557, false), &rib)
            .is_none());
        // Accepted but the next hop (10.0.1.1) lies outside the prefix.
        assert!(checker
            .check(&outcome("41.1.0.0/16", 17557, true), &rib)
            .is_none());
    }

    #[test]
    fn forwarding_loop_suppressed_by_more_specific_route() {
        let checker = ForwardingLoopChecker::new();
        let mut rib = Rib::new();
        // A /24 covering the next hop already installed: resolution never
        // recurses through the announced /8.
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([1299, 64_500]);
        attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
        rib.announce(Route::new(
            "10.0.1.0/24".parse().expect("valid"),
            attrs,
            PeerId(2),
            2,
        ));
        assert!(checker
            .check(&outcome("10.0.0.0/8", 17557, true), &rib)
            .is_none());
        // A covering route *broader* than the announcement does not help:
        // the announced route stays the most specific match for its own
        // next hop.
        assert!(checker
            .check(&outcome("10.0.1.0/25", 17557, true), &rib)
            .is_some());
        // Neither does an *equal-length* covering route: it is the very
        // prefix the announcement competes to replace.
        assert!(checker
            .check(&outcome("10.0.1.0/24", 17557, true), &rib)
            .is_some());
    }
}
