//! Fault checkers: predicates over exploratory outcomes and the
//! checkpointed node state.
//!
//! The showcase checker detects *origin misconfiguration / route leaks*
//! (§4.2): "for each exploratory message, we check whether the announced
//! route is accepted, and in this case we detect a potential hijack if that
//! route overrides the origin AS of a route already in the routing table
//! prior to starting exploration." Prefixes that are hijackable by nature
//! (IP anycast) can be whitelisted to suppress false positives.

use std::fmt;

use dice_bgp::prefix::Ipv4Prefix;
use dice_bgp::Asn;
use dice_router::Rib;

use crate::handler::HandlerOutcome;

/// A fault detected during exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// An exploratory announcement would override the origin AS of an
    /// installed route: a potential prefix hijack / route leak.
    PotentialHijack {
        /// The prefix the exploratory message announced.
        announced: Ipv4Prefix,
        /// The origin AS the exploratory message claimed.
        claimed_origin: Asn,
        /// The already-installed prefix that covers the announcement.
        existing_prefix: Ipv4Prefix,
        /// The trusted origin AS of the installed route.
        existing_origin: Asn,
    },
}

impl Fault {
    /// The prefix range that can be leaked.
    pub fn leaked_prefix(&self) -> Ipv4Prefix {
        match self {
            Fault::PotentialHijack { announced, .. } => *announced,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::PotentialHijack {
                announced,
                claimed_origin,
                existing_prefix,
                existing_origin,
            } => {
                write!(
                    f,
                    "potential hijack: {announced} claimed by {claimed_origin} would override {existing_prefix} originated by {existing_origin}"
                )
            }
        }
    }
}

/// A checker applied to every exploratory outcome.
pub trait FaultChecker {
    /// Short name used in reports.
    fn name(&self) -> &str;

    /// Inspects one outcome against the checkpointed routing table taken
    /// before exploration started.
    fn check(&self, outcome: &HandlerOutcome, checkpoint_rib: &Rib) -> Option<Fault>;
}

/// The origin-misconfiguration (prefix hijack / route leak) checker.
#[derive(Debug, Clone, Default)]
pub struct OriginHijackChecker {
    anycast_whitelist: Vec<Ipv4Prefix>,
}

impl OriginHijackChecker {
    /// Creates a checker with an empty whitelist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds prefixes that are legitimately multi-origin (IP anycast); any
    /// exploratory announcement falling inside them is not reported.
    pub fn with_anycast_whitelist(mut self, prefixes: Vec<Ipv4Prefix>) -> Self {
        self.anycast_whitelist = prefixes;
        self
    }

    fn whitelisted(&self, prefix: &Ipv4Prefix) -> bool {
        self.anycast_whitelist.iter().any(|w| w.contains(prefix))
    }
}

impl FaultChecker for OriginHijackChecker {
    fn name(&self) -> &str {
        "origin-hijack"
    }

    fn check(&self, outcome: &HandlerOutcome, checkpoint_rib: &Rib) -> Option<Fault> {
        if !outcome.accepted {
            return None;
        }
        if self.whitelisted(&outcome.prefix) {
            return None;
        }
        // The route the announcement would compete with: the most specific
        // installed route covering the announced prefix. (Existing routes
        // are assumed trustworthy, as in the paper.)
        let existing = checkpoint_rib.best_covering_route(&outcome.prefix)?;
        let existing_origin = existing.origin_as()?;
        if existing_origin.value() == outcome.origin_as {
            return None;
        }
        Some(Fault::PotentialHijack {
            announced: outcome.prefix,
            claimed_origin: Asn(outcome.origin_as),
            existing_prefix: existing.prefix,
            existing_origin,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::route::{PeerId, Route};
    use dice_bgp::AsPath;
    use dice_router::{FilterOutcome, FilterVerdict};
    use std::net::Ipv4Addr;

    fn rib_with_youtube() -> Rib {
        let mut rib = Rib::new();
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([1299, 3356, 36561]);
        attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
        rib.announce(Route::new(
            "208.65.152.0/22".parse().expect("valid"),
            attrs,
            PeerId(2),
            2,
        ));
        rib
    }

    fn outcome(prefix: &str, origin_as: u32, accepted: bool) -> HandlerOutcome {
        HandlerOutcome {
            prefix: prefix.parse().expect("valid"),
            origin_as,
            accepted,
            filter: FilterOutcome {
                verdict: if accepted {
                    FilterVerdict::Accept
                } else {
                    FilterVerdict::Reject
                },
                local_pref: None,
                med: None,
                prepend: 0,
                added_communities: Vec::new(),
            },
            intercepted_messages: 0,
        }
    }

    #[test]
    fn detects_the_youtube_hijack() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new();
        // Pakistan Telecom (17557) announces the more-specific /24.
        let fault = checker
            .check(&outcome("208.65.153.0/24", 17557, true), &rib)
            .expect("hijack detected");
        match &fault {
            Fault::PotentialHijack {
                claimed_origin,
                existing_origin,
                existing_prefix,
                ..
            } => {
                assert_eq!(*claimed_origin, Asn(17557));
                assert_eq!(*existing_origin, Asn(36561));
                assert_eq!(existing_prefix.to_string(), "208.65.152.0/22");
            }
        }
        assert_eq!(fault.leaked_prefix().to_string(), "208.65.153.0/24");
        assert!(fault.to_string().contains("17557"));
        assert_eq!(checker.name(), "origin-hijack");
    }

    #[test]
    fn rejected_routes_are_not_faults() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new();
        assert!(checker
            .check(&outcome("208.65.153.0/24", 17557, false), &rib)
            .is_none());
    }

    #[test]
    fn same_origin_is_not_a_fault() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new();
        assert!(checker
            .check(&outcome("208.65.153.0/24", 36561, true), &rib)
            .is_none());
    }

    #[test]
    fn uncovered_prefixes_are_not_faults() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new();
        assert!(checker
            .check(&outcome("1.2.3.0/24", 17557, true), &rib)
            .is_none());
    }

    #[test]
    fn anycast_whitelist_suppresses_false_positives() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new()
            .with_anycast_whitelist(vec!["208.65.152.0/22".parse().expect("valid")]);
        assert!(checker
            .check(&outcome("208.65.153.0/24", 17557, true), &rib)
            .is_none());
    }
}
