//! Fault checkers: predicates over exploratory outcomes and the
//! checkpointed node state.
//!
//! Checkers implement [`FaultChecker`], an object-safe `Send + Sync` trait,
//! and are registered on a [`crate::DiceSession`] through
//! [`crate::DiceBuilder::checker`]; the session applies every registered
//! checker to every explored outcome.
//!
//! The shipped corpus spans three tiers, mirroring the cheap-per-event vs.
//! windowed-pattern split of production detection pipelines:
//!
//! Per-event ([`FaultChecker::check`]):
//!
//! * [`OriginHijackChecker`] — the showcase checker of §4.2: "for each
//!   exploratory message, we check whether the announced route is accepted,
//!   and in this case we detect a potential hijack if that route overrides
//!   the origin AS of a route already in the routing table prior to
//!   starting exploration." Prefixes that are hijackable by nature (IP
//!   anycast) can be whitelisted to suppress false positives.
//! * [`ForwardingLoopChecker`] — flags accepted exploratory announcements
//!   whose NLRI covers their own BGP next hop with no more-specific
//!   installed route to resolve it: installing such a route makes next-hop
//!   resolution recurse through the route itself, a forwarding loop.
//! * [`RouteLeakChecker`] — Gao-Rexford valley-free violations: an accepted
//!   route learned from a *customer* whose AS path transited a *peer* or
//!   *provider* has already gone down-and-up the economic hierarchy once —
//!   the classic route leak, caught even when the origin is legitimate.
//! * [`MoreSpecificHijackChecker`] — strictly-more-specific announcements
//!   that spoof the installed covering route's origin but arrive through a
//!   different neighbor: the sub-prefix hijack shape that evades
//!   origin-only checks.
//! * [`BlackholeChecker`] — accepted routes whose next hop resolves through
//!   neither the checkpointed table nor a directly-connected address:
//!   installing them silently discards traffic.
//!
//! Per-round ([`FaultChecker::check_round`]):
//!
//! * [`RouteOscillationChecker`] — replays the intercepted message
//!   sequences of a whole round's runs and flags prefixes the node would
//!   alternately announce and withdraw — the route-flapping signature that
//!   per-outcome checks cannot see.
//!
//! Cross-round ([`FaultChecker::check_live`]):
//!
//! * [`CrossRoundFlapChecker`] — stitches the per-round observed windows a
//!   live orchestrator accumulates ([`RoundOutcomes`]) into one
//!   announce/withdraw timeline per `(node, prefix)` and flags flaps
//!   *slower than one epoch window* — each individual round sees at most
//!   one direction, so neither per-event nor per-round checkers can fire.
//! * [`BgpWedgieChecker`] — flags BGP wedgies: a prefix a node held in its
//!   pre-fault steady state is withdrawn (typically when a partition's
//!   session resets flush it) and never re-announced even though later
//!   rounds keep flowing — the network re-stabilized in a *different*
//!   stable state than the one it started in.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::net::Ipv4Addr;

use dice_bgp::message::UpdateMessage;
use dice_bgp::prefix::Ipv4Prefix;
use dice_bgp::route::PeerId;
use dice_bgp::Asn;
use dice_netsim::topology::NodeId;
use dice_router::Rib;

use crate::handler::HandlerOutcome;

/// A fault detected during exploration.
///
/// Construct through [`Fault::new`]; the struct is `#[non_exhaustive]` so
/// future provenance fields are not breaking changes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Fault {
    /// Name of the checker that reported the fault.
    pub checker: String,
    /// The topology node whose exploration found the fault. `None` for
    /// single-node runs outside a fleet context.
    pub node: Option<NodeId>,
    /// What was detected.
    pub kind: FaultKind,
}

/// The kind of misbehaviour a checker detected.
///
/// `#[non_exhaustive]`: new checkers add variants without breaking
/// downstream matches.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// An exploratory announcement would override the origin AS of an
    /// installed route: a potential prefix hijack / route leak.
    PotentialHijack {
        /// The prefix the exploratory message announced.
        announced: Ipv4Prefix,
        /// The origin AS the exploratory message claimed.
        claimed_origin: Asn,
        /// The already-installed prefix that covers the announcement.
        existing_prefix: Ipv4Prefix,
        /// The trusted origin AS of the installed route.
        existing_origin: Asn,
    },
    /// An accepted announcement covers its own BGP next hop with no
    /// more-specific installed route: next-hop resolution would recurse
    /// through the announced route itself.
    ForwardingLoop {
        /// The prefix the exploratory message announced.
        announced: Ipv4Prefix,
        /// The next hop that would resolve through the announcement.
        next_hop: Ipv4Addr,
    },
    /// Across one round's exploratory runs the node alternately announced
    /// and withdrew the same prefix: inputs within the observed envelope
    /// flip the import verdict back and forth, so the deployment would
    /// flap the route.
    RouteOscillation {
        /// The prefix the node would flap.
        announced: Ipv4Prefix,
        /// Announce↔withdraw transitions observed across the round's runs.
        /// Deliberately excluded from the [`fmt::Display`] rendering so the
        /// fleet/cross-round dedup key ([`Fault::fleet_key`]) stays stable
        /// when later rounds observe more flips of the same prefix.
        transitions: usize,
    },
    /// A Gao-Rexford valley-free violation: a route learned from a
    /// customer AS transited a peer or provider AS, so it has already
    /// descended the economic hierarchy once and is now climbing back up —
    /// a route leak even when every origin is legitimate.
    RouteLeak {
        /// The prefix the exploratory message announced.
        announced: Ipv4Prefix,
        /// The customer neighbor the route was learned from.
        customer_as: Asn,
        /// The peer/provider AS the path transited — the valley.
        via_as: Asn,
    },
    /// A strictly-more-specific announcement that spoofs the installed
    /// covering route's origin AS but arrives through a different
    /// neighbor: longest-prefix match diverts the covered traffic while
    /// origin-based checks see nothing wrong.
    MoreSpecificHijack {
        /// The more-specific prefix the exploratory message announced.
        announced: Ipv4Prefix,
        /// The installed covering prefix whose traffic would divert.
        existing_prefix: Ipv4Prefix,
        /// The (spoofed) origin AS both routes claim.
        origin: Asn,
    },
    /// An accepted route whose BGP next hop has no forwarding path: the
    /// checkpointed table cannot resolve it and it is not a
    /// directly-connected address, so installing the route silently
    /// discards the covered traffic.
    Blackhole {
        /// The prefix the exploratory message announced.
        announced: Ipv4Prefix,
        /// The unresolvable next hop.
        next_hop: Ipv4Addr,
    },
    /// Across *live rounds* a node observed the same prefix alternately
    /// announced and withdrawn: a flap slower than one epoch window,
    /// invisible to any single round's checkers.
    CrossRoundFlap {
        /// The flapping prefix.
        announced: Ipv4Prefix,
        /// Direction changes across the stitched round timeline. Excluded
        /// from the [`fmt::Display`] rendering (like
        /// [`FaultKind::RouteOscillation`]) so the dedup key stays stable
        /// as later rounds extend the timeline.
        transitions: usize,
    },
    /// A BGP wedgie: after a fault (typically a partition that healed) a
    /// node's steady-state routing differs from its pre-fault steady state
    /// — a prefix it held was withdrawn and never re-announced even though
    /// the network is quiescent again.
    BgpWedgie {
        /// The prefix stuck withdrawn.
        announced: Ipv4Prefix,
        /// Rounds the node stayed quiescent after the withdrawal without
        /// the prefix coming back. Excluded from the [`fmt::Display`]
        /// rendering so the dedup key stays stable as rounds accumulate.
        stuck_rounds: usize,
    },
}

impl Fault {
    /// Creates a fault reported by the named checker, with no node
    /// provenance.
    pub fn new(checker: impl Into<String>, kind: FaultKind) -> Self {
        Fault {
            checker: checker.into(),
            node: None,
            kind,
        }
    }

    /// Stamps the topology node whose exploration found the fault.
    pub fn with_node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// The prefix range the fault is about.
    pub fn leaked_prefix(&self) -> Ipv4Prefix {
        match &self.kind {
            FaultKind::PotentialHijack { announced, .. } => *announced,
            FaultKind::ForwardingLoop { announced, .. } => *announced,
            FaultKind::RouteOscillation { announced, .. } => *announced,
            FaultKind::RouteLeak { announced, .. } => *announced,
            FaultKind::MoreSpecificHijack { announced, .. } => *announced,
            FaultKind::Blackhole { announced, .. } => *announced,
            FaultKind::CrossRoundFlap { announced, .. } => *announced,
            FaultKind::BgpWedgie { announced, .. } => *announced,
        }
    }

    /// The fleet-wide deduplication key: `(checker, prefix, offending
    /// message)`. Two sightings of the same misbehaviour on different nodes
    /// share a key; node provenance is deliberately excluded.
    pub fn fleet_key(&self) -> (String, Ipv4Prefix, String) {
        (
            self.checker.clone(),
            self.leaked_prefix(),
            self.kind.to_string(),
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::PotentialHijack {
                announced,
                claimed_origin,
                existing_prefix,
                existing_origin,
            } => {
                write!(
                    f,
                    "potential hijack: {announced} claimed by {claimed_origin} would override {existing_prefix} originated by {existing_origin}"
                )
            }
            FaultKind::ForwardingLoop {
                announced,
                next_hop,
            } => {
                write!(
                    f,
                    "forwarding loop: {announced} covers its own next hop {next_hop}"
                )
            }
            FaultKind::RouteOscillation { announced, .. } => {
                // The transition count is intentionally not rendered: the
                // rendering is the dedup key, and the same flapping prefix
                // must collapse across rounds that saw different counts.
                write!(
                    f,
                    "route oscillation: {announced} alternates between announce and withdraw"
                )
            }
            FaultKind::RouteLeak {
                announced,
                customer_as,
                via_as,
            } => {
                write!(
                    f,
                    "route leak: {announced} learned from customer {customer_as} transited peer/provider {via_as} (valley-free violation)"
                )
            }
            FaultKind::MoreSpecificHijack {
                announced,
                existing_prefix,
                origin,
            } => {
                write!(
                    f,
                    "more-specific hijack: {announced} spoofs origin {origin} of installed {existing_prefix} via a different neighbor"
                )
            }
            FaultKind::Blackhole {
                announced,
                next_hop,
            } => {
                write!(
                    f,
                    "blackhole: {announced} has unresolvable next hop {next_hop}"
                )
            }
            FaultKind::CrossRoundFlap { announced, .. } => {
                // Like RouteOscillation, the transition count stays out of
                // the rendering so the dedup key is round-count stable.
                write!(
                    f,
                    "cross-round flap: {announced} alternates between announce and withdraw across live rounds"
                )
            }
            FaultKind::BgpWedgie { announced, .. } => {
                // The stuck-round count stays out of the rendering (like the
                // flap transition counts) so the dedup key is round-stable.
                write!(
                    f,
                    "bgp wedgie: {announced} withdrawn after a fault and never re-announced in steady state"
                )
            }
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        match self.node {
            Some(node) => write!(f, " [{} @ node {}]", self.checker, node.0),
            None => write!(f, " [{}]", self.checker),
        }
    }
}

/// One live round's worth of material for cross-round (temporal) checkers:
/// what a node *observed* on the wire during the round's epoch window, and
/// what exploration *derived* from it.
///
/// The observed window matters independently of the outcomes: pure
/// withdrawals carry no explorable input (no outcomes are produced for
/// them), and leaf nodes may intercept nothing — yet their observed
/// timelines are exactly where slow flaps show up.
#[derive(Debug, Clone)]
pub struct RoundOutcomes {
    /// The live round index the material came from.
    pub round: usize,
    /// The node whose window this is.
    pub node: NodeId,
    /// The `(peer, update)` pairs the node observed during the round's
    /// epoch window, in delivery order.
    pub observed: Vec<(PeerId, UpdateMessage)>,
    /// The exploratory outcomes the round produced for this node, in
    /// execution order.
    pub outcomes: Vec<HandlerOutcome>,
}

/// A checker applied to every exploratory outcome.
///
/// The trait is object-safe and `Send + Sync`: sessions hold checkers as
/// `Arc<dyn FaultChecker>` built once and shared across exploration worker
/// threads.
pub trait FaultChecker: Send + Sync {
    /// Short name used in reports and fleet-wide deduplication keys.
    fn name(&self) -> &str;

    /// Inspects one outcome against the checkpointed routing table taken
    /// before exploration started.
    fn check(&self, outcome: &HandlerOutcome, checkpoint_rib: &Rib) -> Option<Fault>;

    /// Inspects a whole round's outcomes *as a sequence*, in execution
    /// order (seed runs first, then generated runs, concatenated over
    /// observed inputs in input order), against the checkpointed routing
    /// table.
    ///
    /// The default implementation reports nothing — per-outcome checkers
    /// need not care. Sequence-aware checkers such as
    /// [`RouteOscillationChecker`] override it to detect misbehaviour that
    /// only shows across runs (flapping, churn). The session applies it
    /// once per exploration round, after the per-outcome pass.
    fn check_round(&self, outcomes: &[HandlerOutcome], checkpoint_rib: &Rib) -> Vec<Fault> {
        let _ = (outcomes, checkpoint_rib);
        Vec::new()
    }

    /// Inspects the accumulated material of *multiple live rounds*, in
    /// round order — the temporal tier above [`FaultChecker::check_round`].
    ///
    /// The default implementation reports nothing, mirroring the
    /// `check_round` pattern: per-event and per-round checkers need not
    /// care, and existing implementations keep compiling unchanged.
    /// Cross-round checkers such as [`CrossRoundFlapChecker`] override it
    /// to stitch per-round sequences and catch misbehaviour slower than
    /// one epoch window. A live orchestrator applies it after every
    /// executed round, over its bounded round history.
    fn check_live(&self, rounds: &[RoundOutcomes]) -> Vec<Fault> {
        let _ = rounds;
        Vec::new()
    }
}

/// The origin-misconfiguration (prefix hijack / route leak) checker.
#[derive(Debug, Clone, Default)]
pub struct OriginHijackChecker {
    anycast_whitelist: Vec<Ipv4Prefix>,
}

impl OriginHijackChecker {
    /// Creates a checker with an empty whitelist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds prefixes that are legitimately multi-origin (IP anycast); any
    /// exploratory announcement falling inside them is not reported.
    pub fn with_anycast_whitelist(mut self, prefixes: Vec<Ipv4Prefix>) -> Self {
        self.anycast_whitelist = prefixes;
        self
    }

    fn whitelisted(&self, prefix: &Ipv4Prefix) -> bool {
        self.anycast_whitelist.iter().any(|w| w.contains(prefix))
    }
}

impl FaultChecker for OriginHijackChecker {
    fn name(&self) -> &str {
        "origin-hijack"
    }

    fn check(&self, outcome: &HandlerOutcome, checkpoint_rib: &Rib) -> Option<Fault> {
        if !outcome.accepted {
            return None;
        }
        if self.whitelisted(&outcome.prefix) {
            return None;
        }
        // The route the announcement would compete with: the most specific
        // installed route covering the announced prefix. (Existing routes
        // are assumed trustworthy, as in the paper.)
        let existing = checkpoint_rib.best_covering_route(&outcome.prefix)?;
        let existing_origin = existing.origin_as()?;
        if existing_origin.value() == outcome.origin_as {
            return None;
        }
        Some(Fault::new(
            self.name(),
            FaultKind::PotentialHijack {
                announced: outcome.prefix,
                claimed_origin: Asn(outcome.origin_as),
                existing_prefix: existing.prefix,
                existing_origin,
            },
        ))
    }
}

/// Flags accepted announcements whose prefix covers their own next hop.
///
/// Installing such a route makes the next hop resolve through the route
/// itself unless a more-specific installed route still covers it — the
/// recursive-resolution loop that self-referential static or leaked routes
/// cause in practice.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForwardingLoopChecker;

impl ForwardingLoopChecker {
    /// Creates the checker.
    pub fn new() -> Self {
        Self
    }
}

impl FaultChecker for ForwardingLoopChecker {
    fn name(&self) -> &str {
        "forwarding-loop"
    }

    fn check(&self, outcome: &HandlerOutcome, checkpoint_rib: &Rib) -> Option<Fault> {
        if !outcome.accepted {
            return None;
        }
        let next_hop = u32::from(outcome.next_hop);
        if next_hop == 0 || !outcome.prefix.contains_ip(next_hop) {
            return None;
        }
        // Only a *strictly* more specific installed route keeps next-hop
        // resolution off the announced route: an equal-length route is the
        // very prefix the announcement competes to replace, so it cannot be
        // relied on to resolve the next hop.
        if let Some(existing) = checkpoint_rib.lookup_ip(next_hop) {
            if existing.prefix.len() > outcome.prefix.len() {
                return None;
            }
        }
        Some(Fault::new(
            self.name(),
            FaultKind::ForwardingLoop {
                announced: outcome.prefix,
                next_hop: outcome.next_hop,
            },
        ))
    }
}

/// Flags prefixes the node would alternately announce and withdraw across
/// one round's exploratory runs — route flapping driven by inputs inside
/// the observed envelope.
///
/// The checker is sequence-aware: it implements
/// [`FaultChecker::check_round`] over the round's [`HandlerOutcome`]s in
/// execution order, derives one announce/withdraw event per run and prefix
/// from the recorded intercepted message sequence
/// ([`HandlerOutcome::intercepted`]), and reports every prefix whose event
/// sequence flips direction at least
/// [`min_transitions`](RouteOscillationChecker::with_min_transitions)
/// times (default 2 — a full announce→withdraw→announce cycle). The
/// per-outcome [`FaultChecker::check`] hook reports nothing.
#[derive(Debug, Clone, Copy)]
pub struct RouteOscillationChecker {
    min_transitions: usize,
}

impl Default for RouteOscillationChecker {
    fn default() -> Self {
        RouteOscillationChecker { min_transitions: 2 }
    }
}

impl RouteOscillationChecker {
    /// Creates the checker with the default threshold of two transitions
    /// (one full announce/withdraw cycle).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets how many announce↔withdraw transitions a prefix's event
    /// sequence needs before it is reported (clamped to at least 1).
    pub fn with_min_transitions(mut self, transitions: usize) -> Self {
        self.min_transitions = transitions.max(1);
        self
    }
}

impl FaultChecker for RouteOscillationChecker {
    fn name(&self) -> &str {
        "route-oscillation"
    }

    fn check(&self, _outcome: &HandlerOutcome, _checkpoint_rib: &Rib) -> Option<Fault> {
        None
    }

    fn check_round(&self, outcomes: &[HandlerOutcome], _checkpoint_rib: &Rib) -> Vec<Fault> {
        use std::collections::{BTreeMap, BTreeSet};

        // One event per (run, prefix, direction): a run announcing the same
        // prefix to three peers is one announce event, not three.
        let mut events: BTreeMap<Ipv4Prefix, Vec<bool>> = BTreeMap::new();
        for outcome in outcomes {
            let mut announced: BTreeSet<Ipv4Prefix> = BTreeSet::new();
            let mut withdrawn: BTreeSet<Ipv4Prefix> = BTreeSet::new();
            for (_, update) in &outcome.intercepted {
                announced.extend(update.nlri.iter().copied());
                withdrawn.extend(update.withdrawn.iter().copied());
            }
            for prefix in announced {
                events.entry(prefix).or_default().push(true);
            }
            for prefix in withdrawn {
                events.entry(prefix).or_default().push(false);
            }
        }

        // BTreeMap iteration keeps the report order deterministic.
        events
            .into_iter()
            .filter_map(|(prefix, sequence)| {
                let transitions = sequence.windows(2).filter(|w| w[0] != w[1]).count();
                (transitions >= self.min_transitions).then(|| {
                    Fault::new(
                        self.name(),
                        FaultKind::RouteOscillation {
                            announced: prefix,
                            transitions,
                        },
                    )
                })
            })
            .collect()
    }
}

/// The economic role of a neighbor AS in the Gao-Rexford model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsRelationship {
    /// The AS pays us for transit: routes learned from it may go anywhere.
    Customer,
    /// Settlement-free peering: routes exchanged only between customer
    /// cones.
    Peer,
    /// We pay the AS for transit.
    Provider,
}

/// The Gao-Rexford valley-free route-leak checker.
///
/// Configure the AS-relationship map with the builder methods, then: an
/// *accepted* exploratory route whose neighbor AS (first hop of
/// [`HandlerOutcome::as_path`]) is classified [`AsRelationship::Customer`]
/// must not have transited any AS classified [`AsRelationship::Peer`] or
/// [`AsRelationship::Provider`] further along the path. Such a route has
/// already descended the economic hierarchy and is climbing back up — a
/// valley — which is the route-leak shape regardless of whether every
/// origin on the path is legitimate (this is what distinguishes it from
/// [`OriginHijackChecker`], which needs an installed competing route).
///
/// Unclassified ASes are ignored: the checker only reasons about
/// relationships it was told about, so a partial map yields false
/// negatives, never false positives.
#[derive(Debug, Clone, Default)]
pub struct RouteLeakChecker {
    relationships: BTreeMap<u32, AsRelationship>,
}

impl RouteLeakChecker {
    /// Creates a checker with an empty relationship map (reports nothing
    /// until relationships are configured).
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies `asn` with the given relationship.
    pub fn with_relationship(mut self, asn: u32, relationship: AsRelationship) -> Self {
        self.relationships.insert(asn, relationship);
        self
    }

    /// Classifies `asn` as a customer.
    pub fn with_customer(self, asn: u32) -> Self {
        self.with_relationship(asn, AsRelationship::Customer)
    }

    /// Classifies `asn` as a settlement-free peer.
    pub fn with_peer(self, asn: u32) -> Self {
        self.with_relationship(asn, AsRelationship::Peer)
    }

    /// Classifies `asn` as a provider.
    pub fn with_provider(self, asn: u32) -> Self {
        self.with_relationship(asn, AsRelationship::Provider)
    }
}

impl FaultChecker for RouteLeakChecker {
    fn name(&self) -> &str {
        "route-leak"
    }

    fn check(&self, outcome: &HandlerOutcome, _checkpoint_rib: &Rib) -> Option<Fault> {
        if !outcome.accepted {
            return None;
        }
        let neighbor = *outcome.as_path.first()?;
        if self.relationships.get(&neighbor) != Some(&AsRelationship::Customer) {
            return None;
        }
        let via = outcome.as_path[1..].iter().find(|asn| {
            matches!(
                self.relationships.get(asn),
                Some(AsRelationship::Peer | AsRelationship::Provider)
            )
        })?;
        Some(Fault::new(
            self.name(),
            FaultKind::RouteLeak {
                announced: outcome.prefix,
                customer_as: Asn(neighbor),
                via_as: Asn(*via),
            },
        ))
    }
}

/// Flags strictly-more-specific announcements that spoof the installed
/// covering route's origin but arrive through a different neighbor.
///
/// [`OriginHijackChecker`] only fires when the claimed origin *differs*
/// from the installed one — so an attacker who forges the victim's AS at
/// the end of the path slips through while longest-prefix match still
/// diverts all the covered traffic toward them. This checker closes that
/// gap: the announcement must be strictly more specific than the best
/// installed covering route, claim the *same* origin, and reach the node
/// through a different neighbor AS than the installed route did.
#[derive(Debug, Clone, Default)]
pub struct MoreSpecificHijackChecker {
    anycast_whitelist: Vec<Ipv4Prefix>,
}

impl MoreSpecificHijackChecker {
    /// Creates a checker with an empty whitelist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds prefixes that legitimately de-aggregate via multiple
    /// adjacencies (traffic engineering, anycast); announcements inside
    /// them are not reported.
    pub fn with_anycast_whitelist(mut self, prefixes: Vec<Ipv4Prefix>) -> Self {
        self.anycast_whitelist = prefixes;
        self
    }
}

impl FaultChecker for MoreSpecificHijackChecker {
    fn name(&self) -> &str {
        "more-specific-hijack"
    }

    fn check(&self, outcome: &HandlerOutcome, checkpoint_rib: &Rib) -> Option<Fault> {
        if !outcome.accepted {
            return None;
        }
        if self
            .anycast_whitelist
            .iter()
            .any(|w| w.contains(&outcome.prefix))
        {
            return None;
        }
        let existing = checkpoint_rib.best_covering_route(&outcome.prefix)?;
        if outcome.prefix.len() <= existing.prefix.len() {
            return None;
        }
        let existing_origin = existing.origin_as()?;
        // A *different* claimed origin is OriginHijackChecker's case; this
        // checker owns the spoofed-origin shape.
        if existing_origin.value() != outcome.origin_as {
            return None;
        }
        let announced_neighbor = *outcome.as_path.first()?;
        let existing_neighbor = existing.attrs.as_path.neighbor_as()?;
        if announced_neighbor == existing_neighbor.value() {
            // Same adjacency as the installed route: legitimate
            // de-aggregation by the same origin.
            return None;
        }
        Some(Fault::new(
            self.name(),
            FaultKind::MoreSpecificHijack {
                announced: outcome.prefix,
                existing_prefix: existing.prefix,
                origin: existing_origin,
            },
        ))
    }
}

/// Flags accepted routes whose next hop has no forwarding path.
///
/// A next hop is resolvable if the checkpointed table covers it or it is a
/// directly-connected address (configure those with
/// [`BlackholeChecker::with_connected`] — typically the node's peer
/// addresses). An accepted route failing both silently discards the
/// covered traffic once installed: the blackhole a session reset leaves
/// behind when the route that used to resolve the next hop was withdrawn.
/// Announcements covering their *own* next hop are left to
/// [`ForwardingLoopChecker`], which owns that shape.
#[derive(Debug, Clone, Default)]
pub struct BlackholeChecker {
    connected: Vec<Ipv4Addr>,
}

impl BlackholeChecker {
    /// Creates a checker with no connected addresses configured.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares directly-connected next-hop addresses that always resolve
    /// (typically the node's configured peer addresses).
    pub fn with_connected(mut self, addresses: Vec<Ipv4Addr>) -> Self {
        self.connected = addresses;
        self
    }
}

impl FaultChecker for BlackholeChecker {
    fn name(&self) -> &str {
        "blackhole"
    }

    fn check(&self, outcome: &HandlerOutcome, checkpoint_rib: &Rib) -> Option<Fault> {
        if !outcome.accepted {
            return None;
        }
        let next_hop = u32::from(outcome.next_hop);
        if next_hop == 0 {
            return None;
        }
        if outcome.prefix.contains_ip(next_hop) {
            // Self-covering next hop: ForwardingLoopChecker's case.
            return None;
        }
        if self.connected.contains(&outcome.next_hop) {
            return None;
        }
        if checkpoint_rib.lookup_ip(next_hop).is_some() {
            return None;
        }
        Some(Fault::new(
            self.name(),
            FaultKind::Blackhole {
                announced: outcome.prefix,
                next_hop: outcome.next_hop,
            },
        ))
    }
}

/// Detects flaps slower than one epoch window by stitching per-round
/// observed timelines across live rounds.
///
/// For each round and node, the checker reduces the node's observed window
/// to at most one direction per prefix (the *last* announce or withdraw of
/// that prefix in the window — BGP's implicit-replacement semantics), then
/// concatenates those per-round summaries into one timeline per
/// `(node, prefix)` and counts direction changes. A prefix announced in
/// round 0, withdrawn in round 1 and announced again in round 2 flips
/// twice — yet every individual round saw a single direction, so
/// [`FaultChecker::check`] and [`FaultChecker::check_round`] are
/// structurally unable to catch it. Only the
/// [`FaultChecker::check_live`] hook fires.
#[derive(Debug, Clone, Copy)]
pub struct CrossRoundFlapChecker {
    min_transitions: usize,
}

impl Default for CrossRoundFlapChecker {
    fn default() -> Self {
        CrossRoundFlapChecker { min_transitions: 2 }
    }
}

impl CrossRoundFlapChecker {
    /// Creates the checker with the default threshold of two transitions
    /// (one full announce→withdraw→announce cycle).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets how many cross-round direction changes a `(node, prefix)`
    /// timeline needs before it is reported (clamped to at least 1).
    pub fn with_min_transitions(mut self, transitions: usize) -> Self {
        self.min_transitions = transitions.max(1);
        self
    }
}

impl FaultChecker for CrossRoundFlapChecker {
    fn name(&self) -> &str {
        "cross-round-flap"
    }

    fn check(&self, _outcome: &HandlerOutcome, _checkpoint_rib: &Rib) -> Option<Fault> {
        None
    }

    fn check_live(&self, rounds: &[RoundOutcomes]) -> Vec<Fault> {
        // Per (node, prefix): one summary direction per round. The slice
        // arrives in round order, so appending preserves the timeline.
        let mut timelines: BTreeMap<(usize, Ipv4Prefix), Vec<bool>> = BTreeMap::new();
        for round in rounds {
            let mut last: BTreeMap<Ipv4Prefix, bool> = BTreeMap::new();
            for (_, update) in &round.observed {
                // Withdrawals before NLRI within one UPDATE, mirroring the
                // implicit-replacement order of RFC 4271 §3.1.
                for prefix in &update.withdrawn {
                    last.insert(*prefix, false);
                }
                for prefix in &update.nlri {
                    last.insert(*prefix, true);
                }
            }
            for (prefix, direction) in last {
                timelines
                    .entry((round.node.0, prefix))
                    .or_default()
                    .push(direction);
            }
        }
        timelines
            .into_iter()
            .filter_map(|((node, prefix), timeline)| {
                let transitions = timeline.windows(2).filter(|w| w[0] != w[1]).count();
                (transitions >= self.min_transitions).then(|| {
                    Fault::new(
                        self.name(),
                        FaultKind::CrossRoundFlap {
                            announced: prefix,
                            transitions,
                        },
                    )
                    .with_node(NodeId(node))
                })
            })
            .collect()
    }
}

/// Detects BGP wedgies — policy-dependent stable-state divergence — from
/// the observed timelines across live rounds.
///
/// Using the same per-round reduction as [`CrossRoundFlapChecker`] (at most
/// one direction per `(node, prefix)` per round, RFC 4271
/// implicit-replacement order), the checker flags a `(node, prefix)` whose
/// timeline ends in a withdrawal that followed an earlier announcement and
/// then *stayed* withdrawn while at least `min_stable_rounds` later rounds
/// flowed elsewhere in the fleet: the network re-stabilized, but in a
/// different stable state than the pre-fault one. A single round cannot see
/// this (the withdrawal alone is legitimate), and a flap checker cannot
/// either — the defining feature of a wedgie is that the route *never*
/// comes back, i.e. exactly one transition. Run the same scenario under an
/// empty fault plan as the control: the wedgie surface is the differential
/// against that clean run, which is how
/// [`FaultPlanSearch`](crate::fault_search::FaultPlanSearch) uses it.
#[derive(Debug, Clone, Copy)]
pub struct BgpWedgieChecker {
    min_stable_rounds: usize,
}

impl Default for BgpWedgieChecker {
    fn default() -> Self {
        BgpWedgieChecker {
            min_stable_rounds: 1,
        }
    }
}

impl BgpWedgieChecker {
    /// Creates the checker with the default stability threshold of one
    /// round after the withdrawal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets how many rounds must elapse after the final withdrawal, with
    /// the prefix never re-announced, before the divergence counts as a
    /// stable state rather than a transient (clamped to at least 1).
    pub fn with_min_stable_rounds(mut self, rounds: usize) -> Self {
        self.min_stable_rounds = rounds.max(1);
        self
    }
}

impl FaultChecker for BgpWedgieChecker {
    fn name(&self) -> &str {
        "bgp-wedgie"
    }

    fn check(&self, _outcome: &HandlerOutcome, _checkpoint_rib: &Rib) -> Option<Fault> {
        None
    }

    fn check_live(&self, rounds: &[RoundOutcomes]) -> Vec<Fault> {
        // Quiet nodes produce no RoundOutcomes, so "rounds after the
        // withdrawal" is measured on the fleet-wide round clock: any node's
        // activity proves time passed without the prefix coming back.
        let mut all_rounds: BTreeSet<usize> = BTreeSet::new();
        let mut timelines: BTreeMap<(usize, Ipv4Prefix), Vec<(usize, bool)>> = BTreeMap::new();
        for round in rounds {
            all_rounds.insert(round.round);
            let mut last: BTreeMap<Ipv4Prefix, bool> = BTreeMap::new();
            for (_, update) in &round.observed {
                for prefix in &update.withdrawn {
                    last.insert(*prefix, false);
                }
                for prefix in &update.nlri {
                    last.insert(*prefix, true);
                }
            }
            for (prefix, direction) in last {
                timelines
                    .entry((round.node.0, prefix))
                    .or_default()
                    .push((round.round, direction));
            }
        }
        timelines
            .into_iter()
            .filter_map(|((node, prefix), timeline)| {
                let &(withdrawn_at, last_direction) =
                    timeline.last().expect("timelines have at least one entry");
                if last_direction {
                    return None;
                }
                let announced_before = timeline.iter().any(|&(r, d)| d && r < withdrawn_at);
                if !announced_before {
                    return None;
                }
                let stuck_rounds = all_rounds.iter().filter(|&&r| r > withdrawn_at).count();
                (stuck_rounds >= self.min_stable_rounds).then(|| {
                    Fault::new(
                        self.name(),
                        FaultKind::BgpWedgie {
                            announced: prefix,
                            stuck_rounds,
                        },
                    )
                    .with_node(NodeId(node))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::message::UpdateMessage;
    use dice_bgp::route::{PeerId, Route};
    use dice_bgp::AsPath;
    use dice_router::FilterOutcome;
    use std::net::Ipv4Addr;

    fn rib_with_youtube() -> Rib {
        let mut rib = Rib::new();
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([1299, 3356, 36561]);
        attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
        rib.announce(Route::new(
            "208.65.152.0/22".parse().expect("valid"),
            attrs,
            PeerId(2),
            2,
        ));
        rib
    }

    fn outcome(prefix: &str, origin_as: u32, accepted: bool) -> HandlerOutcome {
        HandlerOutcome {
            prefix: prefix.parse().expect("valid"),
            origin_as,
            accepted,
            next_hop: Ipv4Addr::new(10, 0, 1, 1),
            as_path: vec![origin_as],
            filter: if accepted {
                FilterOutcome::accepted()
            } else {
                FilterOutcome::rejected()
            },
            intercepted: Vec::new(),
        }
    }

    /// An accepted outcome carrying an explicit AS path (neighbor first,
    /// origin last).
    fn outcome_with_path(prefix: &str, path: &[u32]) -> HandlerOutcome {
        let mut o = outcome(prefix, path.last().copied().unwrap_or(0), true);
        o.as_path = path.to_vec();
        o
    }

    /// An outcome that would have emitted one announce (or withdraw) of
    /// `prefix` toward a single peer.
    fn outcome_emitting(prefix: &str, announce: bool) -> HandlerOutcome {
        let mut o = outcome(prefix, 17557, announce);
        let parsed: Ipv4Prefix = prefix.parse().expect("valid");
        let update = if announce {
            UpdateMessage::announce(vec![parsed], &RouteAttrs::default())
        } else {
            UpdateMessage::withdraw(vec![parsed])
        };
        o.intercepted = vec![(PeerId(9), update)];
        o
    }

    #[test]
    fn detects_the_youtube_hijack() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new();
        // Pakistan Telecom (17557) announces the more-specific /24.
        let fault = checker
            .check(&outcome("208.65.153.0/24", 17557, true), &rib)
            .expect("hijack detected");
        match &fault.kind {
            FaultKind::PotentialHijack {
                claimed_origin,
                existing_origin,
                existing_prefix,
                ..
            } => {
                assert_eq!(*claimed_origin, Asn(17557));
                assert_eq!(*existing_origin, Asn(36561));
                assert_eq!(existing_prefix.to_string(), "208.65.152.0/22");
            }
            other => panic!("unexpected fault kind {other:?}"),
        }
        assert_eq!(fault.leaked_prefix().to_string(), "208.65.153.0/24");
        assert_eq!(fault.checker, "origin-hijack");
        assert_eq!(fault.node, None);
        assert!(fault.to_string().contains("17557"));
        assert!(fault.to_string().contains("origin-hijack"));
        assert_eq!(checker.name(), "origin-hijack");
    }

    #[test]
    fn node_provenance_is_stamped_and_displayed() {
        let rib = rib_with_youtube();
        let fault = OriginHijackChecker::new()
            .check(&outcome("208.65.153.0/24", 17557, true), &rib)
            .expect("hijack detected")
            .with_node(NodeId(1));
        assert_eq!(fault.node, Some(NodeId(1)));
        assert!(fault.to_string().contains("node 1"));
        // The fleet key ignores provenance: the same misbehaviour seen on
        // two nodes deduplicates.
        let unstamped = OriginHijackChecker::new()
            .check(&outcome("208.65.153.0/24", 17557, true), &rib)
            .expect("hijack detected");
        assert_eq!(fault.fleet_key(), unstamped.fleet_key());
        assert_ne!(fault, unstamped, "provenance still distinguishes values");
    }

    #[test]
    fn rejected_routes_are_not_faults() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new();
        assert!(checker
            .check(&outcome("208.65.153.0/24", 17557, false), &rib)
            .is_none());
    }

    #[test]
    fn same_origin_is_not_a_fault() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new();
        assert!(checker
            .check(&outcome("208.65.153.0/24", 36561, true), &rib)
            .is_none());
    }

    #[test]
    fn uncovered_prefixes_are_not_faults() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new();
        assert!(checker
            .check(&outcome("1.2.3.0/24", 17557, true), &rib)
            .is_none());
    }

    #[test]
    fn anycast_whitelist_suppresses_false_positives() {
        let rib = rib_with_youtube();
        let checker = OriginHijackChecker::new()
            .with_anycast_whitelist(vec!["208.65.152.0/22".parse().expect("valid")]);
        assert!(checker
            .check(&outcome("208.65.153.0/24", 17557, true), &rib)
            .is_none());
    }

    #[test]
    fn checkers_are_object_safe_and_shareable() {
        let checkers: Vec<std::sync::Arc<dyn FaultChecker>> = vec![
            std::sync::Arc::new(OriginHijackChecker::new()),
            std::sync::Arc::new(ForwardingLoopChecker::new()),
            std::sync::Arc::new(RouteOscillationChecker::new()),
        ];
        let names: Vec<&str> = checkers.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            ["origin-hijack", "forwarding-loop", "route-oscillation"]
        );
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        assert_send_sync(&checkers);
        // The default round hook reports nothing for per-outcome checkers.
        let rib = Rib::new();
        let round = [outcome("10.0.0.0/8", 17557, true)];
        assert!(checkers[0].check_round(&round, &rib).is_empty());
    }

    #[test]
    fn oscillation_flags_a_full_announce_withdraw_cycle() {
        let checker = RouteOscillationChecker::new();
        let rib = rib_with_youtube();
        let round = [
            outcome_emitting("41.1.0.0/16", true),
            outcome_emitting("41.1.0.0/16", false),
            outcome_emitting("41.1.0.0/16", true),
        ];
        let faults = checker.check_round(&round, &rib);
        assert_eq!(faults.len(), 1);
        let fault = &faults[0];
        assert_eq!(fault.checker, "route-oscillation");
        assert_eq!(fault.leaked_prefix().to_string(), "41.1.0.0/16");
        match fault.kind {
            FaultKind::RouteOscillation { transitions, .. } => assert_eq!(transitions, 2),
            ref other => panic!("unexpected fault kind {other:?}"),
        }
        assert!(fault.to_string().contains("route oscillation"));
        // The per-outcome hook stays silent by design.
        assert!(checker.check(&round[0], &rib).is_none());
    }

    #[test]
    fn oscillation_needs_enough_transitions_and_matching_prefixes() {
        let checker = RouteOscillationChecker::new();
        let rib = Rib::new();
        // Announce then withdraw is one transition — half a cycle.
        let half = [
            outcome_emitting("41.1.0.0/16", true),
            outcome_emitting("41.1.0.0/16", false),
        ];
        assert!(checker.check_round(&half, &rib).is_empty());
        // Flips across *different* prefixes never alternate.
        let disjoint = [
            outcome_emitting("41.1.0.0/16", true),
            outcome_emitting("41.64.0.0/12", false),
            outcome_emitting("41.1.0.0/16", true),
        ];
        assert!(checker.check_round(&disjoint, &rib).is_empty());
        // A lowered threshold reports the half cycle.
        let eager = RouteOscillationChecker::new().with_min_transitions(0);
        assert_eq!(eager.check_round(&half, &rib).len(), 1);
        // Runs that intercept nothing contribute no events.
        let quiet = [outcome("41.1.0.0/16", 17557, false)];
        assert!(checker.check_round(&quiet, &rib).is_empty());
    }

    #[test]
    fn oscillation_fleet_key_is_stable_across_transition_counts() {
        // Rounds of different lengths see different flip counts for the
        // same flapping prefix; dedup across rounds must still collapse
        // them into one fault.
        let few = Fault::new(
            "route-oscillation",
            FaultKind::RouteOscillation {
                announced: "41.1.0.0/16".parse().expect("valid"),
                transitions: 2,
            },
        );
        let many = Fault::new(
            "route-oscillation",
            FaultKind::RouteOscillation {
                announced: "41.1.0.0/16".parse().expect("valid"),
                transitions: 7,
            },
        );
        assert_eq!(few.fleet_key(), many.fleet_key());
        assert_ne!(few, many, "the counts still distinguish values");
    }

    #[test]
    fn forwarding_loop_fires_when_prefix_covers_next_hop() {
        let checker = ForwardingLoopChecker::new();
        let rib = Rib::new();
        // 10.0.0.0/8 with next hop 10.0.1.1: the route covers its own next
        // hop and nothing more specific resolves it.
        let fault = checker
            .check(&outcome("10.0.0.0/8", 17557, true), &rib)
            .expect("loop detected");
        match &fault.kind {
            FaultKind::ForwardingLoop {
                announced,
                next_hop,
            } => {
                assert_eq!(announced.to_string(), "10.0.0.0/8");
                assert_eq!(*next_hop, Ipv4Addr::new(10, 0, 1, 1));
            }
            other => panic!("unexpected fault kind {other:?}"),
        }
        assert_eq!(fault.checker, "forwarding-loop");
        assert!(fault.to_string().contains("forwarding loop"));
    }

    #[test]
    fn forwarding_loop_needs_acceptance_and_coverage() {
        let checker = ForwardingLoopChecker::new();
        let rib = Rib::new();
        // Rejected: no fault even though the prefix covers the next hop.
        assert!(checker
            .check(&outcome("10.0.0.0/8", 17557, false), &rib)
            .is_none());
        // Accepted but the next hop (10.0.1.1) lies outside the prefix.
        assert!(checker
            .check(&outcome("41.1.0.0/16", 17557, true), &rib)
            .is_none());
    }

    #[test]
    fn route_leak_detects_a_valley() {
        // From the provider's seat: 17557 is a customer, 1299 a peer.
        let checker = RouteLeakChecker::new()
            .with_customer(17557)
            .with_peer(1299)
            .with_provider(3356);
        let rib = Rib::new();
        // The customer re-exports a route it learned from its own transit
        // (1299): customer-learned but peer-transited — a valley.
        let leaked = outcome_with_path("41.1.0.0/16", &[17557, 1299, 15169]);
        let fault = checker.check(&leaked, &rib).expect("leak detected");
        assert_eq!(fault.checker, "route-leak");
        match &fault.kind {
            FaultKind::RouteLeak {
                customer_as,
                via_as,
                ..
            } => {
                assert_eq!(*customer_as, Asn(17557));
                assert_eq!(*via_as, Asn(1299));
            }
            other => panic!("unexpected fault kind {other:?}"),
        }
        assert_eq!(fault.leaked_prefix().to_string(), "41.1.0.0/16");
        assert!(fault.to_string().contains("valley-free"));

        // A provider in the tail is just as much of a valley.
        assert!(checker
            .check(
                &outcome_with_path("41.1.0.0/16", &[17557, 3356, 15169]),
                &rib
            )
            .is_some());
    }

    #[test]
    fn route_leak_stays_quiet_without_a_valley() {
        let checker = RouteLeakChecker::new().with_customer(17557).with_peer(1299);
        let rib = Rib::new();
        // The customer originating its own space is valley-free.
        assert!(checker
            .check(&outcome_with_path("41.1.0.0/16", &[17557, 17557]), &rib)
            .is_none());
        // Routes learned from the peer are unconstrained on import.
        assert!(checker
            .check(&outcome_with_path("8.8.0.0/16", &[1299, 15169]), &rib)
            .is_none());
        // Unclassified neighbor: no relationship knowledge, no report.
        assert!(checker
            .check(&outcome_with_path("8.8.0.0/16", &[64_512, 1299]), &rib)
            .is_none());
        // Rejected routes are never faults.
        let mut rejected = outcome_with_path("41.1.0.0/16", &[17557, 1299, 15169]);
        rejected.accepted = false;
        assert!(checker.check(&rejected, &rib).is_none());
        // An empty relationship map reports nothing at all.
        assert!(RouteLeakChecker::new()
            .check(&outcome_with_path("41.1.0.0/16", &[17557, 1299]), &rib)
            .is_none());
    }

    #[test]
    fn more_specific_hijack_detects_spoofed_origin_via_other_neighbor() {
        let rib = rib_with_youtube(); // /22 via neighbor 1299, origin 36561
        let checker = MoreSpecificHijackChecker::new();
        // A /24 inside the /22 claiming the victim's own origin (36561) but
        // arriving via the customer (17557): origin-hijack sees nothing
        // (origins match) — this checker fires.
        let spoofed = outcome_with_path("208.65.153.0/24", &[17557, 36561]);
        assert!(
            OriginHijackChecker::new().check(&spoofed, &rib).is_none(),
            "origin check is blind to a spoofed origin"
        );
        let fault = checker.check(&spoofed, &rib).expect("hijack detected");
        assert_eq!(fault.checker, "more-specific-hijack");
        match &fault.kind {
            FaultKind::MoreSpecificHijack {
                existing_prefix,
                origin,
                ..
            } => {
                assert_eq!(existing_prefix.to_string(), "208.65.152.0/22");
                assert_eq!(*origin, Asn(36561));
            }
            other => panic!("unexpected fault kind {other:?}"),
        }
    }

    #[test]
    fn more_specific_hijack_allows_legitimate_deaggregation() {
        let rib = rib_with_youtube();
        let checker = MoreSpecificHijackChecker::new();
        // Same origin AND same neighbor (1299): the victim de-aggregating
        // its own block over the same adjacency.
        assert!(checker
            .check(
                &outcome_with_path("208.65.153.0/24", &[1299, 3356, 36561]),
                &rib
            )
            .is_none());
        // A different origin is OriginHijackChecker's case, not ours.
        assert!(checker
            .check(&outcome_with_path("208.65.153.0/24", &[17557, 17557]), &rib)
            .is_none());
        // Equal-length announcements are not "more specific".
        assert!(checker
            .check(&outcome_with_path("208.65.152.0/22", &[17557, 36561]), &rib)
            .is_none());
        // Whitelisted ranges are suppressed.
        let lenient = MoreSpecificHijackChecker::new()
            .with_anycast_whitelist(vec!["208.65.152.0/22".parse().expect("valid")]);
        assert!(lenient
            .check(&outcome_with_path("208.65.153.0/24", &[17557, 36561]), &rib)
            .is_none());
    }

    #[test]
    fn blackhole_fires_on_unresolvable_next_hop() {
        let checker = BlackholeChecker::new();
        let rib = Rib::new();
        // 41.1.0.0/16 with next hop 10.0.1.1: the empty table cannot
        // resolve it and it is not declared connected.
        let fault = checker
            .check(&outcome("41.1.0.0/16", 17557, true), &rib)
            .expect("blackhole detected");
        assert_eq!(fault.checker, "blackhole");
        match &fault.kind {
            FaultKind::Blackhole { next_hop, .. } => {
                assert_eq!(*next_hop, Ipv4Addr::new(10, 0, 1, 1));
            }
            other => panic!("unexpected fault kind {other:?}"),
        }
        assert!(fault.to_string().contains("blackhole"));
    }

    #[test]
    fn blackhole_resolvable_next_hops_are_fine() {
        let rib = rib_with_youtube();
        let checker = BlackholeChecker::new();
        // Covered by an installed route? Use a next hop inside the /22.
        let mut covered = outcome("41.1.0.0/16", 17557, true);
        covered.next_hop = Ipv4Addr::new(208, 65, 152, 7);
        assert!(checker.check(&covered, &rib).is_none());
        // Declared directly connected.
        let connected = BlackholeChecker::new().with_connected(vec![Ipv4Addr::new(10, 0, 1, 1)]);
        assert!(connected
            .check(&outcome("41.1.0.0/16", 17557, true), &rib)
            .is_none());
        // Self-covering next hop is ForwardingLoopChecker's shape.
        assert!(checker
            .check(&outcome("10.0.0.0/8", 17557, true), &rib)
            .is_none());
        // Rejected routes are never faults.
        assert!(checker
            .check(&outcome("41.1.0.0/16", 17557, false), &rib)
            .is_none());
        // A zero next hop carries no forwarding claim.
        let mut zero = outcome("41.1.0.0/16", 17557, true);
        zero.next_hop = Ipv4Addr::new(0, 0, 0, 0);
        assert!(checker.check(&zero, &rib).is_none());
    }

    fn live_round(round: usize, node: usize, events: &[(&str, bool)]) -> RoundOutcomes {
        let observed = events
            .iter()
            .map(|(prefix, announce)| {
                let parsed: Ipv4Prefix = prefix.parse().expect("valid");
                let update = if *announce {
                    UpdateMessage::announce(vec![parsed], &RouteAttrs::default())
                } else {
                    UpdateMessage::withdraw(vec![parsed])
                };
                (PeerId(1), update)
            })
            .collect();
        RoundOutcomes {
            round,
            node: NodeId(node),
            observed,
            outcomes: Vec::new(),
        }
    }

    #[test]
    fn cross_round_flap_stitches_what_single_rounds_cannot_see() {
        let checker = CrossRoundFlapChecker::new();
        // Announce / withdraw / announce, one direction per round: within
        // any single round there is nothing to see.
        let rounds = [
            live_round(0, 2, &[("41.1.0.0/16", true)]),
            live_round(1, 2, &[("41.1.0.0/16", false)]),
            live_round(2, 2, &[("41.1.0.0/16", true)]),
        ];
        for round in &rounds {
            assert!(
                checker.check_live(std::slice::from_ref(round)).is_empty(),
                "a single round has no transitions"
            );
        }
        let faults = checker.check_live(&rounds);
        assert_eq!(faults.len(), 1);
        let fault = &faults[0];
        assert_eq!(fault.checker, "cross-round-flap");
        assert_eq!(fault.node, Some(NodeId(2)));
        assert_eq!(fault.leaked_prefix().to_string(), "41.1.0.0/16");
        match fault.kind {
            FaultKind::CrossRoundFlap { transitions, .. } => assert_eq!(transitions, 2),
            ref other => panic!("unexpected fault kind {other:?}"),
        }
        // The per-event hook stays silent by design; the dedup key is
        // stable as the timeline grows.
        assert!(checker
            .check(&outcome("41.1.0.0/16", 17557, true), &Rib::new())
            .is_none());
        let longer = [
            rounds[0].clone(),
            rounds[1].clone(),
            rounds[2].clone(),
            live_round(3, 2, &[("41.1.0.0/16", false)]),
        ];
        let more = checker.check_live(&longer);
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].fleet_key(), fault.fleet_key());
    }

    #[test]
    fn cross_round_flap_separates_nodes_and_needs_transitions() {
        let checker = CrossRoundFlapChecker::new();
        // The same prefix alternating across *different* nodes never forms
        // one timeline.
        let split = [
            live_round(0, 1, &[("41.1.0.0/16", true)]),
            live_round(1, 2, &[("41.1.0.0/16", false)]),
            live_round(2, 1, &[("41.1.0.0/16", true)]),
        ];
        assert!(checker.check_live(&split).is_empty());
        // One announce + one withdraw is half a cycle.
        let half = [
            live_round(0, 1, &[("41.1.0.0/16", true)]),
            live_round(1, 1, &[("41.1.0.0/16", false)]),
        ];
        assert!(checker.check_live(&half).is_empty());
        assert_eq!(
            CrossRoundFlapChecker::new()
                .with_min_transitions(0)
                .check_live(&half)
                .len(),
            1
        );
        // Within one round, only the *last* direction of a prefix counts
        // (implicit replacement): announce-then-withdraw in the same
        // window summarizes as withdrawn.
        let collapsed = [
            live_round(0, 1, &[("41.1.0.0/16", true)]),
            live_round(1, 1, &[("41.1.0.0/16", true), ("41.1.0.0/16", false)]),
            live_round(2, 1, &[("41.1.0.0/16", true)]),
        ];
        assert_eq!(checker.check_live(&collapsed).len(), 1);
        // The default check_live of per-event checkers reports nothing.
        assert!(OriginHijackChecker::new().check_live(&half).is_empty());
    }

    #[test]
    fn forwarding_loop_suppressed_by_more_specific_route() {
        let checker = ForwardingLoopChecker::new();
        let mut rib = Rib::new();
        // A /24 covering the next hop already installed: resolution never
        // recurses through the announced /8.
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([1299, 64_500]);
        attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
        rib.announce(Route::new(
            "10.0.1.0/24".parse().expect("valid"),
            attrs,
            PeerId(2),
            2,
        ));
        assert!(checker
            .check(&outcome("10.0.0.0/8", 17557, true), &rib)
            .is_none());
        // A covering route *broader* than the announcement does not help:
        // the announced route stays the most specific match for its own
        // next hop.
        assert!(checker
            .check(&outcome("10.0.1.0/25", 17557, true), &rib)
            .is_some());
        // Neither does an *equal-length* covering route: it is the very
        // prefix the announcement competes to replace.
        assert!(checker
            .check(&outcome("10.0.1.0/24", 17557, true), &rib)
            .is_some());
    }

    #[test]
    fn bgp_wedgie_fires_on_a_stable_post_fault_divergence() {
        let checker = BgpWedgieChecker::new();
        // Announced, withdrawn, then a later round flowed elsewhere in the
        // fleet while the prefix stayed gone: the steady state diverged.
        let wedged = [
            live_round(0, 2, &[("41.1.0.0/16", true)]),
            live_round(1, 2, &[("41.1.0.0/16", false)]),
            live_round(2, 1, &[("198.51.100.0/24", true)]),
        ];
        let faults = checker.check_live(&wedged);
        assert_eq!(faults.len(), 1);
        let fault = &faults[0];
        assert_eq!(fault.checker, "bgp-wedgie");
        assert_eq!(fault.node, Some(NodeId(2)));
        assert_eq!(fault.leaked_prefix().to_string(), "41.1.0.0/16");
        match fault.kind {
            FaultKind::BgpWedgie { stuck_rounds, .. } => assert_eq!(stuck_rounds, 1),
            ref other => panic!("expected a wedgie, got {other:?}"),
        }
        // One transition is below the flap checker's threshold: the two
        // cross-round detectors partition the anomaly space.
        assert!(CrossRoundFlapChecker::new().check_live(&wedged).is_empty());
    }

    #[test]
    fn bgp_wedgie_needs_stability_and_a_prior_announcement() {
        let checker = BgpWedgieChecker::new();
        // The withdrawal is in the last round: nothing proves the network
        // re-stabilized without the route, so nothing fires yet.
        let transient = [
            live_round(0, 2, &[("41.1.0.0/16", true)]),
            live_round(1, 2, &[("41.1.0.0/16", false)]),
        ];
        assert!(checker.check_live(&transient).is_empty());
        // A withdrawal with no earlier announcement is not a divergence.
        let never_held = [
            live_round(0, 2, &[("41.1.0.0/16", false)]),
            live_round(1, 1, &[("198.51.100.0/24", true)]),
        ];
        assert!(checker.check_live(&never_held).is_empty());
        // A re-announcement anywhere later clears the wedge.
        let recovered = [
            live_round(0, 2, &[("41.1.0.0/16", true)]),
            live_round(1, 2, &[("41.1.0.0/16", false)]),
            live_round(2, 2, &[("41.1.0.0/16", true)]),
        ];
        assert!(checker.check_live(&recovered).is_empty());
        // A higher stability threshold needs more post-withdrawal rounds.
        let strict = BgpWedgieChecker::new().with_min_stable_rounds(2);
        let wedged = [
            live_round(0, 2, &[("41.1.0.0/16", true)]),
            live_round(1, 2, &[("41.1.0.0/16", false)]),
            live_round(2, 1, &[("198.51.100.0/24", true)]),
        ];
        assert!(strict.check_live(&wedged).is_empty());
        let longer = [
            live_round(0, 2, &[("41.1.0.0/16", true)]),
            live_round(1, 2, &[("41.1.0.0/16", false)]),
            live_round(2, 1, &[("198.51.100.0/24", true)]),
            live_round(3, 1, &[("198.51.101.0/24", true)]),
        ];
        assert_eq!(strict.check_live(&longer).len(), 1);
    }
}
