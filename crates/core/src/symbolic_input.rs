//! Deriving symbolic inputs from observed UPDATE messages.
//!
//! The paper marks *selected, small-sized fields* of observed UPDATE
//! messages as symbolic — the NLRI prefix and netmask length plus path
//! attribute values — rather than whole messages, so that every generated
//! exploratory message is syntactically valid and exploration goes deep
//! into route processing instead of the parser (§3.2). [`UpdateTemplate`]
//! implements exactly that: it captures the observed message, exposes the
//! symbolic fields as an input assignment, and rebuilds a valid UPDATE from
//! any assignment the solver produces.

use dice_bgp::attributes::{Community, Origin, RouteAttrs};
use dice_bgp::message::UpdateMessage;
use dice_bgp::prefix::Ipv4Prefix;
use dice_bgp::{AsPath, Asn};
use dice_router::policy::RouteView;
use dice_symexec::{Concolic, ExecCtx, InputSpec, InputValues};

/// Names of the symbolic input fields.
pub mod fields {
    /// Network address of the announced NLRI prefix (32 bits).
    pub const NLRI_ADDR: &str = "nlri.addr";
    /// Netmask length of the announced NLRI prefix (8 bits).
    pub const NLRI_LEN: &str = "nlri.len";
    /// ORIGIN attribute code (8 bits).
    pub const ORIGIN: &str = "attr.origin";
    /// MULTI_EXIT_DISC (32 bits).
    pub const MED: &str = "attr.med";
    /// LOCAL_PREF (32 bits).
    pub const LOCAL_PREF: &str = "attr.local_pref";
    /// Origin AS — the last AS on the path (32 bits).
    pub const SOURCE_AS: &str = "attr.source_as";
    /// An extra COMMUNITIES attribute slot the solver may fill, encoded as
    /// `asn << 16 | value` (32 bits). Zero means "no extra community"; the
    /// `(0, 0)` community therefore cannot be synthesized through this slot.
    pub const COMMUNITY: &str = "attr.community";
    /// AS-path length (32 bits, clamped to `1..=64` on materialization).
    pub const PATH_LEN: &str = "attr.path_len";
}

/// A template derived from one observed UPDATE message.
#[derive(Debug, Clone)]
pub struct UpdateTemplate {
    observed_prefix: Ipv4Prefix,
    observed_attrs: RouteAttrs,
    /// Whether the policy-oriented fields ([`fields::COMMUNITY`],
    /// [`fields::PATH_LEN`]) are part of the symbolic input. On by default;
    /// turned off to reproduce the message-field-only exploration surface.
    policy_fields: bool,
}

impl UpdateTemplate {
    /// Builds a template from an observed announcement. Returns `None` for
    /// messages that announce nothing (pure withdrawals), which the paper
    /// leaves to future work.
    pub fn from_update(update: &UpdateMessage) -> Option<Self> {
        let prefix = *update.nlri.first()?;
        Some(UpdateTemplate {
            observed_prefix: prefix,
            observed_attrs: update.route_attrs(),
            policy_fields: true,
        })
    }

    /// Enables or disables the policy-oriented symbolic fields.
    pub fn with_policy_fields(mut self, enabled: bool) -> Self {
        self.policy_fields = enabled;
        self
    }

    /// Whether the policy-oriented symbolic fields are enabled.
    pub fn policy_fields(&self) -> bool {
        self.policy_fields
    }

    /// The observed AS-path length clamped into the materializable range.
    fn observed_path_len(&self) -> u64 {
        (self.observed_attrs.as_path.length() as u64).clamp(1, 64)
    }

    /// The prefix of the observed announcement.
    pub fn observed_prefix(&self) -> Ipv4Prefix {
        self.observed_prefix
    }

    /// The attributes of the observed announcement.
    pub fn observed_attrs(&self) -> &RouteAttrs {
        &self.observed_attrs
    }

    /// The declared symbolic input fields with their observed values as
    /// defaults.
    pub fn input_spec(&self) -> InputSpec {
        let a = &self.observed_attrs;
        let spec = InputSpec::new()
            .field(fields::NLRI_ADDR, 32, self.observed_prefix.addr() as u64)
            .field(fields::NLRI_LEN, 8, self.observed_prefix.len() as u64)
            .field(fields::ORIGIN, 8, a.origin.code() as u64)
            .field(fields::MED, 32, a.effective_med() as u64)
            .field(fields::LOCAL_PREF, 32, a.effective_local_pref() as u64)
            .field(
                fields::SOURCE_AS,
                32,
                a.origin_as().map(|x| x.value()).unwrap_or(0) as u64,
            );
        if !self.policy_fields {
            return spec;
        }
        spec.field(fields::COMMUNITY, 32, 0)
            .field(fields::PATH_LEN, 32, self.observed_path_len())
    }

    /// The seed input: the values observed on the wire.
    pub fn seed(&self) -> InputValues {
        self.input_spec().defaults()
    }

    /// Reconstructs a *syntactically valid* UPDATE message from an input
    /// assignment: the prefix length is clamped to 32, host bits beyond the
    /// length are masked off, and the origin code is folded into the three
    /// defined values.
    pub fn build_update(&self, values: &InputValues) -> UpdateMessage {
        let (prefix, attrs) = self.materialize(values);
        UpdateMessage::announce(vec![prefix], &attrs)
    }

    /// Returns the concrete prefix and attributes described by an input
    /// assignment.
    pub fn materialize(&self, values: &InputValues) -> (Ipv4Prefix, RouteAttrs) {
        let len = values
            .get_or(fields::NLRI_LEN, self.observed_prefix.len() as u64)
            .min(32) as u8;
        let addr = values.get_or(fields::NLRI_ADDR, self.observed_prefix.addr() as u64) as u32;
        let prefix = Ipv4Prefix::new(addr, len).expect("length clamped to 32");
        let mut attrs = self.observed_attrs.clone();
        attrs.origin = Origin::from_code((values.get_or(fields::ORIGIN, 0) % 3) as u8)
            .expect("code folded into 0..=2");
        attrs.med = Some(values.get_or(fields::MED, 0) as u32);
        attrs.local_pref = Some(values.get_or(fields::LOCAL_PREF, 100) as u32);
        let source_as = values.get_or(
            fields::SOURCE_AS,
            self.observed_attrs
                .origin_as()
                .map(|x| x.value())
                .unwrap_or(0) as u64,
        ) as u32;
        attrs.as_path = replace_origin_as(&self.observed_attrs.as_path, Asn(source_as));
        if self.policy_fields {
            let target = values
                .get_or(fields::PATH_LEN, self.observed_path_len())
                .clamp(1, 64) as usize;
            attrs.as_path = resize_path(&attrs.as_path, target);
            let slot = values.get_or(fields::COMMUNITY, 0) as u32;
            if slot != 0 {
                let community = Community(slot);
                if !attrs.communities.contains(&community) {
                    attrs.communities.push(community);
                }
            }
        }
        (prefix, attrs)
    }

    /// Builds the symbolic [`RouteView`] the filter interpreter evaluates:
    /// the selected fields are registered as symbolic variables in `ctx`
    /// with the assignment's concrete values; everything else stays
    /// concrete from the observed message.
    pub fn symbolic_view(&self, ctx: &mut ExecCtx, values: &InputValues) -> RouteView {
        let spec = self.input_spec();
        let get = |name: &str| values.get_or(name, spec.get(name).map(|f| f.default).unwrap_or(0));
        let a = &self.observed_attrs;
        let path_len = if self.policy_fields {
            ctx.symbolic_u32(fields::PATH_LEN, get(fields::PATH_LEN).clamp(1, 64) as u32)
        } else {
            Concolic::concrete(a.as_path.length() as u32)
        };
        let community_slot = if self.policy_fields {
            ctx.symbolic_u32(fields::COMMUNITY, get(fields::COMMUNITY) as u32)
        } else {
            Concolic::concrete(0)
        };
        RouteView {
            prefix_addr: ctx.symbolic_u32(fields::NLRI_ADDR, get(fields::NLRI_ADDR) as u32),
            prefix_len: ctx.symbolic_u8(fields::NLRI_LEN, get(fields::NLRI_LEN).min(32) as u8),
            source_as: ctx.symbolic_u32(fields::SOURCE_AS, get(fields::SOURCE_AS) as u32),
            neighbor_as: Concolic::concrete(
                a.as_path.neighbor_as().map(|x| x.value()).unwrap_or(0),
            ),
            path_len,
            med: ctx.symbolic_u32(fields::MED, get(fields::MED) as u32),
            local_pref: ctx.symbolic_u32(fields::LOCAL_PREF, get(fields::LOCAL_PREF) as u32),
            origin_code: ctx.symbolic_u8(fields::ORIGIN, (get(fields::ORIGIN) % 3) as u8),
            communities: a
                .communities
                .iter()
                .map(|c| (c.asn_part(), c.value_part()))
                .collect(),
            community_slot,
        }
    }
}

/// Returns a copy of `path` whose origin AS (last ASN of the last sequence
/// segment) is replaced with `origin`. Empty paths become a one-hop path.
fn replace_origin_as(path: &AsPath, origin: Asn) -> AsPath {
    let mut asns: Vec<u32> = path.flatten().iter().map(|a| a.value()).collect();
    match asns.last_mut() {
        Some(last) => *last = origin.value(),
        None => asns.push(origin.value()),
    }
    AsPath::from_sequence(asns)
}

/// Returns a copy of `path` resized to exactly `target` hops. The origin AS
/// (last hop) is preserved; longer paths are produced by repeating the first
/// hop (mimicking neighbor-side prepending), shorter ones by dropping hops
/// from the front. Empty paths stay empty — there is no AS to repeat.
fn resize_path(path: &AsPath, target: usize) -> AsPath {
    let asns: Vec<u32> = path.flatten().iter().map(|a| a.value()).collect();
    if asns.is_empty() || asns.len() == target {
        return path.clone();
    }
    let mut resized = asns.clone();
    if asns.len() < target {
        let first = asns[0];
        let mut padded = vec![first; target - asns.len()];
        padded.extend(resized);
        resized = padded;
    } else {
        resized = resized.split_off(asns.len() - target);
    }
    AsPath::from_sequence(resized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn observed() -> UpdateMessage {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([17557, 36561]);
        attrs.next_hop = Ipv4Addr::new(10, 0, 1, 1);
        attrs.med = Some(5);
        UpdateMessage::announce(vec!["208.65.152.0/22".parse().expect("valid")], &attrs)
    }

    #[test]
    fn template_captures_observed_values() {
        let template = UpdateTemplate::from_update(&observed()).expect("has NLRI");
        let seed = template.seed();
        assert_eq!(seed.get(fields::NLRI_LEN), Some(22));
        assert_eq!(seed.get(fields::SOURCE_AS), Some(36561));
        assert_eq!(seed.get(fields::MED), Some(5));
        assert_eq!(seed.get(fields::COMMUNITY), Some(0));
        assert_eq!(seed.get(fields::PATH_LEN), Some(2));
        assert_eq!(template.input_spec().len(), 8);
        assert_eq!(
            template
                .clone()
                .with_policy_fields(false)
                .input_spec()
                .len(),
            6
        );
        assert!(UpdateTemplate::from_update(&UpdateMessage::withdraw(vec![])).is_none());
    }

    #[test]
    fn rebuilt_update_from_seed_matches_observed_prefix() {
        let template = UpdateTemplate::from_update(&observed()).expect("has NLRI");
        let rebuilt = template.build_update(&template.seed());
        assert_eq!(
            rebuilt.nlri,
            vec!["208.65.152.0/22".parse().expect("valid")]
        );
        let attrs = rebuilt.route_attrs();
        assert_eq!(attrs.origin_as().map(|a| a.value()), Some(36561));
        assert_eq!(attrs.med, Some(5));
    }

    #[test]
    fn generated_updates_are_always_syntactically_valid() {
        let template = UpdateTemplate::from_update(&observed()).expect("has NLRI");
        // Hostile assignments: oversized length, unmasked host bits, origin
        // code out of range.
        let values = InputValues::new()
            .with(fields::NLRI_ADDR, 0xd041_99ff)
            .with(fields::NLRI_LEN, 250)
            .with(fields::ORIGIN, 200)
            .with(fields::SOURCE_AS, 17557);
        let update = template.build_update(&values);
        let prefix = update.nlri[0];
        assert!(prefix.len() <= 32);
        // Wire round-trip proves syntactic validity.
        let bytes = dice_bgp::wire::encode(&dice_bgp::BgpMessage::Update(update.clone()));
        let (decoded, _) = dice_bgp::wire::decode(&bytes).expect("valid on the wire");
        assert_eq!(decoded.as_update(), Some(&update));
        let attrs = update.route_attrs();
        assert_eq!(attrs.origin_as().map(|a| a.value()), Some(17557));
        assert!(attrs.origin.code() <= 2);
    }

    #[test]
    fn symbolic_view_registers_symbolic_fields() {
        let template = UpdateTemplate::from_update(&observed()).expect("has NLRI");
        let mut ctx = ExecCtx::new();
        let view = template.symbolic_view(&mut ctx, &template.seed());
        assert!(view.prefix_addr.is_symbolic());
        assert!(view.prefix_len.is_symbolic());
        assert!(view.source_as.is_symbolic());
        assert!(view.med.is_symbolic());
        assert!(!view.neighbor_as.is_symbolic());
        assert!(view.community_slot.is_symbolic());
        assert!(view.path_len.is_symbolic());
        assert_eq!(view.prefix_len.value(), 22);
        assert_eq!(view.path_len.value(), 2);
        assert_eq!(view.community_slot.value(), 0);
        assert_eq!(ctx.var_map().len(), 8);
    }

    #[test]
    fn opaque_template_keeps_policy_fields_concrete() {
        let template = UpdateTemplate::from_update(&observed())
            .expect("has NLRI")
            .with_policy_fields(false);
        let mut ctx = ExecCtx::new();
        let view = template.symbolic_view(&mut ctx, &template.seed());
        assert!(!view.community_slot.is_symbolic());
        assert!(!view.path_len.is_symbolic());
        assert_eq!(ctx.var_map().len(), 6);
    }

    #[test]
    fn materialize_synthesizes_community_and_path_length() {
        let template = UpdateTemplate::from_update(&observed()).expect("has NLRI");
        let values = template
            .seed()
            .with(
                fields::COMMUNITY,
                dice_router::policy::encode_community(3491, 666) as u64,
            )
            .with(fields::PATH_LEN, 4);
        let (_, attrs) = template.materialize(&values);
        assert_eq!(
            attrs.communities,
            vec![Community::new(3491, 666)],
            "solver-chosen community is attached"
        );
        assert_eq!(attrs.as_path.length(), 4);
        // Origin AS survives the resize; padding repeats the first hop.
        assert_eq!(attrs.origin_as().map(|a| a.value()), Some(36561));
        assert_eq!(
            attrs.as_path.flatten(),
            vec![Asn(17557), Asn(17557), Asn(17557), Asn(36561)]
        );
        // An out-of-range length request is clamped, not rejected.
        let (_, attrs) = template.materialize(&template.seed().with(fields::PATH_LEN, 10_000));
        assert_eq!(attrs.as_path.length(), 64);
        let (_, attrs) = template.materialize(&template.seed().with(fields::PATH_LEN, 0));
        assert_eq!(attrs.as_path.length(), 1);
        assert_eq!(attrs.origin_as().map(|a| a.value()), Some(36561));
    }

    #[test]
    fn materialize_uses_solver_assignment_over_observed() {
        let template = UpdateTemplate::from_update(&observed()).expect("has NLRI");
        let values = template
            .seed()
            .with(
                fields::NLRI_ADDR,
                u32::from_be_bytes([208, 65, 153, 0]) as u64,
            )
            .with(fields::NLRI_LEN, 24);
        let (prefix, attrs) = template.materialize(&values);
        assert_eq!(prefix.to_string(), "208.65.153.0/24");
        // Unmentioned fields keep observed values.
        assert_eq!(attrs.as_path.neighbor_as().map(|a| a.value()), Some(17557));
    }

    #[test]
    fn replace_origin_handles_empty_paths() {
        let empty = AsPath::empty();
        let replaced = replace_origin_as(&empty, Asn(65001));
        assert_eq!(replaced.origin_as(), Some(Asn(65001)));
        let path = AsPath::from_sequence([1, 2, 3]);
        let replaced = replace_origin_as(&path, Asn(9));
        assert_eq!(replaced.flatten(), vec![Asn(1), Asn(2), Asn(9)]);
    }
}
