//! Work-stealing fan-out shared by the session (per observed input) and
//! fleet (per topology node) layers.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a configured core count: `0` (the codebase-wide "all cores"
/// convention) becomes the machine's available parallelism, anything else
/// passes through.
pub(crate) fn resolve_cores(configured: usize) -> usize {
    match configured {
        0 => std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        n => n,
    }
}

/// Maps `f` over every item, fanned out across `workers` threads.
///
/// Workers claim the next unprocessed index from a shared counter, so
/// uneven per-item costs balance across cores; result `i` still lands in
/// slot `i`, which keeps the output — and everything merged from it —
/// identical to the sequential map for every worker count.
pub(crate) fn fan_out<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, f) = (&next, &f);
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            return done;
                        };
                        done.push((i, f(item)));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("fan-out worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every item was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_preserves_input_order_for_every_worker_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|i| i * 2).collect();
        for workers in [0, 1, 2, 5, 64] {
            assert_eq!(
                fan_out(&items, workers, |i| i * 2),
                expected,
                "workers={workers}"
            );
        }
        let empty: Vec<usize> = Vec::new();
        assert!(fan_out(&empty, 4, |i| *i).is_empty());
    }
}
