//! The single-node DiCE exploration entry point.
//!
//! One exploration round implements §2.3 end to end:
//!
//! 1. take a checkpoint of the live node (a fork — the live router object
//!    is never touched again);
//! 2. for each previously observed input (an UPDATE message), derive the
//!    symbolic input template and run the concolic engine from the
//!    checkpointed state, which records constraints, negates them one at a
//!    time and re-executes generated inputs;
//! 3. intercept every message the exploratory executions produce;
//! 4. apply the fault checkers to every explored outcome against the
//!    checkpointed routing table.
//!
//! [`Dice`] is the legacy single-node wrapper kept for compatibility: it
//! owns a [`DiceSession`] built from a [`DiceConfig`] (with the default
//! [`crate::OriginHijackChecker`]) and delegates every round to
//! [`DiceSession::explore`] — reports are identical to driving the session
//! directly. New code should use [`crate::DiceBuilder`] (pluggable
//! checkers) and, for multi-node topologies, [`crate::FleetExplorer`].

use dice_bgp::message::UpdateMessage;
use dice_bgp::route::PeerId;
use dice_router::BgpRouter;
use dice_symexec::EngineConfig;

use crate::checker::Fault;
use crate::report::ExplorationReport;
use crate::session::{DiceBuilder, DiceSession};

/// How a round materializes the router state each handler executes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum CheckpointMode {
    /// One copy-on-write [`crate::RoundCheckpoint`] captured per round and
    /// shared by every handler (the default): per-input setup is a
    /// reference-count bump, and the capture itself shares every untouched
    /// RIB shard with the live router.
    #[default]
    CowRound,
    /// Deep-clone the full router once per observed input — the
    /// pre-copy-on-write reference path. Kept selectable so equivalence
    /// anchors (tests and the RIB bench) can assert byte-identical reports
    /// against it; reports are identical in both modes.
    DeepClonePerInput,
}

/// Configuration of a DiCE instance.
///
/// `#[non_exhaustive]`: construct via [`DiceConfig::default`] and the
/// `with_*` builder methods (or [`crate::DiceBuilder`]) so future fields
/// are not breaking changes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DiceConfig {
    /// Concolic engine configuration (path budget, strategy, solver).
    ///
    /// The engine default runs the batched worklist inner loop
    /// ([`EngineConfig::batch_size`]) with a single solver worker per
    /// exploration — exploration already fans observed inputs out across
    /// [`DiceConfig::workers`] threads, and one overlapped solver thread
    /// per input is the sweet spot that avoids oversubscribing cores with
    /// nested parallelism. Raise `engine.solver_workers` only for rounds
    /// with few observed inputs and deep traces.
    pub engine: EngineConfig,
    /// Maximum number of observed inputs explored per round.
    pub max_observed_inputs: usize,
    /// Anycast prefixes excluded from hijack reports.
    pub anycast_whitelist: Vec<dice_bgp::Ipv4Prefix>,
    /// Worker threads exploring observed inputs concurrently.
    ///
    /// `0` (the default) uses the machine's available parallelism; `1`
    /// forces fully sequential exploration. Observed inputs are
    /// independent of each other, so the report is identical for every
    /// worker count — only the wall clock changes.
    pub workers: usize,
    /// How handler state is materialized per observed input (shared
    /// copy-on-write round checkpoint by default). Reports are identical
    /// in every mode — only allocation and copy costs change.
    pub checkpoint: CheckpointMode,
    /// Whether the policy-oriented symbolic input fields (community slot,
    /// AS-path length) are part of each template's exploration surface.
    /// On by default; turning it off restores the message-field-only
    /// surface, leaving filter arms gated on those attributes opaque.
    pub symbolic_policy_fields: bool,
}

impl Default for DiceConfig {
    fn default() -> Self {
        DiceConfig {
            engine: EngineConfig::default().with_max_runs(64),
            max_observed_inputs: 16,
            anycast_whitelist: Vec::new(),
            workers: 0,
            checkpoint: CheckpointMode::default(),
            symbolic_policy_fields: true,
        }
    }
}

impl DiceConfig {
    /// Sets the concolic engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the maximum number of observed inputs explored per round.
    pub fn with_max_observed_inputs(mut self, max: usize) -> Self {
        self.max_observed_inputs = max;
        self
    }

    /// Sets the anycast prefixes excluded from hijack reports.
    pub fn with_anycast_whitelist(mut self, prefixes: Vec<dice_bgp::Ipv4Prefix>) -> Self {
        self.anycast_whitelist = prefixes;
        self
    }

    /// Sets the worker thread count (0 = available parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets how handler state is materialized per observed input.
    pub fn with_checkpoint_mode(mut self, mode: CheckpointMode) -> Self {
        self.checkpoint = mode;
        self
    }

    /// Enables or disables the policy-oriented symbolic input fields.
    pub fn with_symbolic_policy_fields(mut self, enabled: bool) -> Self {
        self.symbolic_policy_fields = enabled;
        self
    }
}

/// The DiCE online-testing facility attached to one router.
///
/// A thin wrapper over [`DiceSession`] with the default checker registry;
/// kept so pre-session callers keep compiling. The session — and thus the
/// checker set — is built once at construction and shared across rounds
/// and worker threads.
#[derive(Debug, Clone, Default)]
pub struct Dice {
    session: DiceSession,
}

impl Dice {
    /// Creates a DiCE instance with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a DiCE instance with the given configuration.
    pub fn with_config(config: DiceConfig) -> Self {
        Dice {
            session: DiceBuilder::new().config(config).build(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DiceConfig {
        self.session.config()
    }

    /// The underlying exploration session.
    pub fn session(&self) -> &DiceSession {
        &self.session
    }

    /// Runs one exploration round over the live router, seeding from the
    /// given observed `(peer, update)` inputs. Equivalent to
    /// [`DiceSession::explore`] on [`Dice::session`].
    pub fn run(&self, live: &BgpRouter, observed: &[(PeerId, UpdateMessage)]) -> ExplorationReport {
        self.session.explore(live, observed)
    }

    /// Convenience wrapper: explore a single observed update.
    pub fn run_single(
        &self,
        live: &BgpRouter,
        peer: PeerId,
        update: &UpdateMessage,
    ) -> ExplorationReport {
        self.run(live, &[(peer, update.clone())])
    }

    /// Applies the session's checkers to one already-computed outcome
    /// (exposed for tests and custom orchestration); returns the first
    /// fault found, matching the legacy single-checker signature.
    pub fn check_outcome(
        &self,
        outcome: &crate::handler::HandlerOutcome,
        rib: &dice_router::Rib,
    ) -> Option<Fault> {
        self.session.check_outcome(outcome, rib).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::AsPath;
    use dice_netsim::topology::{addr, asn, figure2_topology, CustomerFilterMode};
    use std::net::Ipv4Addr;

    /// Builds the Provider router with the victim /22 installed from the
    /// Internet peer, then returns it plus the customer's observed update.
    fn scenario(mode: CustomerFilterMode) -> (BgpRouter, PeerId, UpdateMessage) {
        let topo = figure2_topology(mode);
        let spec = &topo.nodes()[topo.node_by_name("Provider").expect("node").0];
        let mut router = BgpRouter::new(spec.config.clone());
        router.start();

        // The rest of the Internet announces YouTube's /22 (origin 36561).
        let internet = router.peer_by_address(addr::INTERNET).expect("peer");
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356, asn::VICTIM]);
        attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
        router.handle_update(
            internet,
            &UpdateMessage::announce(vec!["208.65.152.0/22".parse().expect("valid")], &attrs),
        );

        // The customer's routine announcement of its own block — the
        // observed input DiCE derives exploratory messages from.
        let customer = router.peer_by_address(addr::CUSTOMER).expect("peer");
        let mut cattrs = RouteAttrs::default();
        cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
        cattrs.next_hop = Ipv4Addr::new(10, 0, 1, 1);
        let observed =
            UpdateMessage::announce(vec!["41.1.0.0/16".parse().expect("valid")], &cattrs);
        (router, customer, observed)
    }

    #[test]
    fn detects_route_leak_with_erroneous_filter() {
        let (router, customer, observed) = scenario(CustomerFilterMode::Erroneous);
        let dice = Dice::new();
        let report = dice.run_single(&router, customer, &observed);
        assert!(
            report.has_faults(),
            "erroneous filter must be flagged:\n{report}"
        );
        assert!(
            report.generated_inputs > 0,
            "faults come from generated exploratory inputs"
        );
        assert!(report.isolation_preserved);
        // The leaked range covers the victim prefix space.
        assert!(report
            .leaked_prefixes()
            .iter()
            .any(|p| p.overlaps(&"208.65.152.0/22".parse().expect("valid"))));
    }

    #[test]
    fn missing_filter_gives_no_configuration_branches() {
        // With no import filter at all there is no policy code for this
        // input to exercise: exploration runs the observed input once and
        // finds nothing to negate. Detection of the "fails to filter" case
        // therefore needs at least a partially correct filter, which is the
        // configuration the paper's §4.2 experiment uses.
        let (router, customer, observed) = scenario(CustomerFilterMode::Missing);
        let dice = Dice::new();
        let report = dice.run_single(&router, customer, &observed);
        assert_eq!(report.runs, 1, "only the seed execution");
        assert_eq!(report.branch_sites, 0);
        assert!(!report.has_faults());
        assert!(report.isolation_preserved);
    }

    #[test]
    fn correct_filter_produces_no_hijack_faults() {
        let (router, customer, observed) = scenario(CustomerFilterMode::Correct);
        let dice = Dice::new();
        let report = dice.run_single(&router, customer, &observed);
        assert!(
            !report.has_faults(),
            "correct origin-pinning filter must not be flagged:\n{report}"
        );
        assert!(
            report.branch_sites > 0,
            "the filter's branches were explored"
        );
        assert!(report.isolation_preserved);
    }

    #[test]
    fn exploration_does_not_touch_live_state() {
        let (router, customer, observed) = scenario(CustomerFilterMode::Missing);
        let before_prefixes = router.rib().prefix_count();
        let before_updates = router.stats().updates_processed;
        let report = Dice::new().run_single(&router, customer, &observed);
        assert_eq!(router.rib().prefix_count(), before_prefixes);
        assert_eq!(router.stats().updates_processed, before_updates);
        assert!(report.isolation_preserved);
        assert!(
            report.intercepted_messages > 0,
            "exploratory messages were intercepted"
        );
    }

    #[test]
    fn anycast_whitelist_suppresses_reports() {
        let (router, customer, observed) = scenario(CustomerFilterMode::Missing);
        let dice = Dice::with_config(
            DiceConfig::default().with_anycast_whitelist(vec!["0.0.0.0/0".parse().expect("valid")]),
        );
        let report = dice.run_single(&router, customer, &observed);
        assert!(
            !report.has_faults(),
            "whitelisting everything suppresses all reports"
        );
    }

    /// A round with several observed inputs of different shapes: the
    /// routine customer announcement, a second customer announcement for an
    /// unrelated block, an announcement from the Internet peer, and a pure
    /// withdrawal (which yields no template).
    fn multi_input_observed(
        router: &BgpRouter,
        customer: PeerId,
        observed: &UpdateMessage,
    ) -> Vec<(PeerId, UpdateMessage)> {
        let internet = router.peer_by_address(addr::INTERNET).expect("peer");
        let mut other_attrs = RouteAttrs::default();
        other_attrs.as_path = AsPath::from_sequence([asn::CUSTOMER]);
        other_attrs.next_hop = Ipv4Addr::new(10, 0, 1, 1);
        let other =
            UpdateMessage::announce(vec!["41.128.0.0/12".parse().expect("valid")], &other_attrs);
        let mut internet_attrs = RouteAttrs::default();
        internet_attrs.as_path = AsPath::from_sequence([asn::INTERNET, 6453, 4788]);
        internet_attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
        let transit = UpdateMessage::announce(
            vec!["202.128.0.0/12".parse().expect("valid")],
            &internet_attrs,
        );
        let withdrawal = UpdateMessage::withdraw(vec!["41.1.0.0/16".parse().expect("valid")]);
        vec![
            (customer, observed.clone()),
            (customer, other),
            (internet, transit),
            (customer, withdrawal),
            (customer, observed.clone()),
        ]
    }

    fn assert_reports_equal(a: &ExplorationReport, b: &ExplorationReport, what: &str) {
        assert_eq!(a.runs, b.runs, "{what}: runs");
        assert_eq!(a.distinct_paths, b.distinct_paths, "{what}: distinct paths");
        assert_eq!(
            a.generated_inputs, b.generated_inputs,
            "{what}: generated inputs"
        );
        assert_eq!(a.branch_sites, b.branch_sites, "{what}: branch sites");
        assert_eq!(a.complete_sites, b.complete_sites, "{what}: complete sites");
        assert_eq!(
            a.intercepted_messages, b.intercepted_messages,
            "{what}: intercepted"
        );
        assert_eq!(a.faults, b.faults, "{what}: faults (content and order)");
        assert_eq!(
            a.solver_stats.queries, b.solver_stats.queries,
            "{what}: solver queries"
        );
        assert_eq!(a.digest(), b.digest(), "{what}: digest");
    }

    #[test]
    fn parallel_round_equals_sequential_round() {
        let (router, customer, observed) = scenario(CustomerFilterMode::Erroneous);
        let inputs = multi_input_observed(&router, customer, &observed);
        assert!(inputs.len() >= 4);

        let sequential =
            Dice::with_config(DiceConfig::default().with_workers(1)).run(&router, &inputs);
        let parallel =
            Dice::with_config(DiceConfig::default().with_workers(4)).run(&router, &inputs);

        assert_reports_equal(&sequential, &parallel, "workers=1 vs workers=4");
        assert!(
            sequential.has_faults(),
            "the erroneous filter is still flagged"
        );
        assert!(
            parallel.isolation_preserved,
            "concurrent exploration must not touch live state"
        );
        assert!(sequential.isolation_preserved);
    }

    #[test]
    fn legacy_run_is_equivalent_to_a_default_session() {
        // `Dice::run` must stay a faithful wrapper: the same round driven
        // through the builder API produces an identical report.
        let (router, customer, observed) = scenario(CustomerFilterMode::Erroneous);
        let inputs = multi_input_observed(&router, customer, &observed);

        let legacy = Dice::new().run(&router, &inputs);
        let session = crate::DiceBuilder::new().build();
        let direct = session.explore(&router, &inputs);

        assert_reports_equal(&legacy, &direct, "Dice::run vs DiceSession::explore");
        assert!(legacy.has_faults());
    }

    #[test]
    fn multi_input_round_equals_merge_of_single_input_rounds() {
        let (router, customer, observed) = scenario(CustomerFilterMode::Erroneous);
        let inputs = multi_input_observed(&router, customer, &observed);
        let dice = Dice::new();
        let combined = dice.run(&router, &inputs);

        let singles: Vec<ExplorationReport> = inputs
            .iter()
            .map(|(peer, update)| dice.run_single(&router, *peer, update))
            .collect();

        assert_eq!(combined.runs, singles.iter().map(|r| r.runs).sum::<usize>());
        assert_eq!(
            combined.distinct_paths,
            singles.iter().map(|r| r.distinct_paths).sum::<usize>()
        );
        assert_eq!(
            combined.generated_inputs,
            singles.iter().map(|r| r.generated_inputs).sum::<usize>()
        );
        assert_eq!(
            combined.intercepted_messages,
            singles
                .iter()
                .map(|r| r.intercepted_messages)
                .sum::<usize>()
        );

        // The combined fault list is the input-order union of the per-input
        // fault lists (deduplicated, first sighting wins).
        let mut merged_faults: Vec<Fault> = Vec::new();
        for single in &singles {
            for fault in &single.faults {
                if !merged_faults.contains(fault) {
                    merged_faults.push(fault.clone());
                }
            }
        }
        assert_eq!(combined.faults, merged_faults);
        assert!(combined.isolation_preserved);
        assert!(singles.iter().all(|r| r.isolation_preserved));
    }

    #[test]
    fn batched_inner_loop_equals_sequential_inner_loop() {
        // PR-1's engine solved one candidate at a time from scratch
        // (batch_size = 0); the batched worklist engine must find the same
        // faults, runs and coverage on the Figure 2 scenario.
        let (router, customer, observed) = scenario(CustomerFilterMode::Erroneous);
        let inputs = multi_input_observed(&router, customer, &observed);

        let sequential = Dice::with_config(
            DiceConfig::default()
                .with_engine(EngineConfig::default().with_max_runs(64).with_batch_size(0)),
        )
        .run(&router, &inputs);
        let batched = Dice::new().run(&router, &inputs);

        assert_eq!(sequential.faults, batched.faults, "fault sets diverged");
        assert_eq!(sequential.runs, batched.runs);
        assert_eq!(sequential.distinct_paths, batched.distinct_paths);
        assert_eq!(sequential.generated_inputs, batched.generated_inputs);
        assert_eq!(sequential.branch_sites, batched.branch_sites);
        assert_eq!(sequential.complete_sites, batched.complete_sites);
        assert_eq!(
            sequential.intercepted_messages,
            batched.intercepted_messages
        );
        assert_eq!(sequential.solver_waves, 0);
        assert!(batched.solver_waves > 0, "batched engine processed waves");
        assert!(
            batched.solver_stats.incremental_queries > 0,
            "candidates were solved through incremental sessions"
        );
        assert!(batched.has_faults());
    }

    #[test]
    fn cow_round_checkpoint_equals_per_input_deep_cloning() {
        // The copy-on-write round checkpoint (one Arc-shared snapshot per
        // round) must be a pure cost optimisation: the same round under
        // the pre-change deep-clone-per-input path produces a byte-identical
        // report, for sequential and parallel rounds alike.
        let (router, customer, observed) = scenario(CustomerFilterMode::Erroneous);
        let inputs = multi_input_observed(&router, customer, &observed);

        let cow = Dice::new().run(&router, &inputs);
        let cloned = Dice::with_config(
            DiceConfig::default().with_checkpoint_mode(crate::CheckpointMode::DeepClonePerInput),
        )
        .run(&router, &inputs);
        assert_reports_equal(&cow, &cloned, "CowRound vs DeepClonePerInput");
        assert!(cow.has_faults(), "the erroneous filter is still flagged");
        assert!(cow.isolation_preserved && cloned.isolation_preserved);

        let cloned_sequential = Dice::with_config(
            DiceConfig::default()
                .with_workers(1)
                .with_checkpoint_mode(crate::CheckpointMode::DeepClonePerInput),
        )
        .run(&router, &inputs);
        assert_reports_equal(
            &cow,
            &cloned_sequential,
            "CowRound vs sequential deep clones",
        );
    }

    #[test]
    fn worker_count_is_bounded_by_inputs_and_never_zero() {
        let dice = Dice::with_config(DiceConfig::default().with_workers(8));
        assert_eq!(dice.session().effective_workers(3), 3);
        assert_eq!(dice.session().effective_workers(0), 1);
        let auto = Dice::new();
        assert!(auto.session().effective_workers(1_000) >= 1);
        let sequential = Dice::with_config(DiceConfig::default().with_workers(1));
        assert_eq!(sequential.session().effective_workers(64), 1);
    }

    #[test]
    fn pure_withdrawals_are_skipped() {
        let (router, customer, _) = scenario(CustomerFilterMode::Missing);
        let withdrawal = UpdateMessage::withdraw(vec!["41.1.0.0/16".parse().expect("valid")]);
        let report = Dice::new().run_single(&router, customer, &withdrawal);
        assert_eq!(report.runs, 0);
        assert!(!report.has_faults());
    }
}
