//! The DiCE exploration orchestrator.
//!
//! One exploration round implements §2.3 end to end:
//!
//! 1. take a checkpoint of the live node (a fork — the live router object
//!    is never touched again);
//! 2. for each previously observed input (an UPDATE message), derive the
//!    symbolic input template and run the concolic engine from the
//!    checkpointed state, which records constraints, negates them one at a
//!    time and re-executes generated inputs;
//! 3. intercept every message the exploratory executions produce;
//! 4. apply the fault checkers to every explored outcome against the
//!    checkpointed routing table.

use std::time::Instant;

use dice_bgp::message::UpdateMessage;
use dice_bgp::route::PeerId;
use dice_router::BgpRouter;
use dice_symexec::{ConcolicEngine, EngineConfig, InputValues};

use crate::checker::{Fault, FaultChecker, OriginHijackChecker};
use crate::handler::SymbolicUpdateHandler;
use crate::isolation::LiveStateFingerprint;
use crate::report::ExplorationReport;
use crate::symbolic_input::UpdateTemplate;

/// Configuration of a DiCE instance.
#[derive(Debug, Clone)]
pub struct DiceConfig {
    /// Concolic engine configuration (path budget, strategy, solver).
    pub engine: EngineConfig,
    /// Maximum number of observed inputs explored per round.
    pub max_observed_inputs: usize,
    /// Anycast prefixes excluded from hijack reports.
    pub anycast_whitelist: Vec<dice_bgp::Ipv4Prefix>,
}

impl Default for DiceConfig {
    fn default() -> Self {
        DiceConfig {
            engine: EngineConfig { max_runs: 64, ..Default::default() },
            max_observed_inputs: 16,
            anycast_whitelist: Vec::new(),
        }
    }
}

/// The DiCE online-testing facility attached to one router.
#[derive(Debug, Clone, Default)]
pub struct Dice {
    config: DiceConfig,
}

impl Dice {
    /// Creates a DiCE instance with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a DiCE instance with the given configuration.
    pub fn with_config(config: DiceConfig) -> Self {
        Dice { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DiceConfig {
        &self.config
    }

    /// Runs one exploration round over the live router, seeding from the
    /// given observed `(peer, update)` inputs.
    ///
    /// The live router is only read to take the checkpoint and to verify
    /// isolation afterwards; all execution happens on clones.
    pub fn run(&self, live: &BgpRouter, observed: &[(PeerId, UpdateMessage)]) -> ExplorationReport {
        let started = Instant::now();
        let fingerprint = LiveStateFingerprint::capture(live);
        // Checkpoint: a fork of the live node's state.
        let checkpoint = live.clone();
        let checker = OriginHijackChecker::new().with_anycast_whitelist(self.config.anycast_whitelist.clone());

        let mut report = ExplorationReport {
            observed_inputs: observed.len().min(self.config.max_observed_inputs),
            ..Default::default()
        };
        let mut coverage = dice_symexec::Coverage::new();

        for (peer, update) in observed.iter().take(self.config.max_observed_inputs) {
            let Some(template) = UpdateTemplate::from_update(update) else {
                continue;
            };
            let seed: InputValues = template.seed();
            let mut handler = SymbolicUpdateHandler::new(checkpoint.clone(), *peer, template);
            let engine = ConcolicEngine::with_config(self.config.engine);
            let exploration = engine.explore(&mut handler, &[seed]);

            report.runs += exploration.stats.runs;
            report.distinct_paths += exploration.distinct_paths();
            report.generated_inputs += exploration.generated_inputs().len();
            report.solver_stats.merge(&exploration.solver_stats);
            coverage.merge(&exploration.coverage);
            report.intercepted_messages += handler.interceptor().len();

            for run in &exploration.runs {
                if let Some(fault) = checker.check(&run.output, checkpoint.rib()) {
                    if !report.faults.contains(&fault) {
                        report.faults.push(fault);
                    }
                }
            }
        }

        report.branch_sites = coverage.site_count();
        report.complete_sites = coverage.complete_sites();
        report.isolation_preserved = fingerprint.matches(live);
        report.elapsed = started.elapsed();
        report
    }

    /// Convenience wrapper: explore a single observed update.
    pub fn run_single(&self, live: &BgpRouter, peer: PeerId, update: &UpdateMessage) -> ExplorationReport {
        self.run(live, &[(peer, update.clone())])
    }

    /// Applies the configured checkers to one already-computed outcome
    /// (exposed for tests and custom orchestration).
    pub fn check_outcome(&self, outcome: &crate::handler::HandlerOutcome, rib: &dice_router::Rib) -> Option<Fault> {
        OriginHijackChecker::new()
            .with_anycast_whitelist(self.config.anycast_whitelist.clone())
            .check(outcome, rib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::AsPath;
    use dice_netsim::topology::{addr, asn, figure2_topology, CustomerFilterMode};
    use std::net::Ipv4Addr;

    /// Builds the Provider router with the victim /22 installed from the
    /// Internet peer, then returns it plus the customer's observed update.
    fn scenario(mode: CustomerFilterMode) -> (BgpRouter, PeerId, UpdateMessage) {
        let topo = figure2_topology(mode);
        let spec = &topo.nodes()[topo.node_by_name("Provider").expect("node").0];
        let mut router = BgpRouter::new(spec.config.clone());
        router.start();

        // The rest of the Internet announces YouTube's /22 (origin 36561).
        let internet = router.peer_by_address(addr::INTERNET).expect("peer");
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356, asn::VICTIM]);
        attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
        router.handle_update(
            internet,
            &UpdateMessage::announce(vec!["208.65.152.0/22".parse().expect("valid")], &attrs),
        );

        // The customer's routine announcement of its own block — the
        // observed input DiCE derives exploratory messages from.
        let customer = router.peer_by_address(addr::CUSTOMER).expect("peer");
        let mut cattrs = RouteAttrs::default();
        cattrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
        cattrs.next_hop = Ipv4Addr::new(10, 0, 1, 1);
        let observed = UpdateMessage::announce(vec!["41.1.0.0/16".parse().expect("valid")], &cattrs);
        (router, customer, observed)
    }

    #[test]
    fn detects_route_leak_with_erroneous_filter() {
        let (router, customer, observed) = scenario(CustomerFilterMode::Erroneous);
        let dice = Dice::new();
        let report = dice.run_single(&router, customer, &observed);
        assert!(report.has_faults(), "erroneous filter must be flagged:\n{report}");
        assert!(report.generated_inputs > 0, "faults come from generated exploratory inputs");
        assert!(report.isolation_preserved);
        // The leaked range covers the victim prefix space.
        assert!(report
            .leaked_prefixes()
            .iter()
            .any(|p| p.overlaps(&"208.65.152.0/22".parse().expect("valid"))));
    }

    #[test]
    fn missing_filter_gives_no_configuration_branches() {
        // With no import filter at all there is no policy code for this
        // input to exercise: exploration runs the observed input once and
        // finds nothing to negate. Detection of the "fails to filter" case
        // therefore needs at least a partially correct filter, which is the
        // configuration the paper's §4.2 experiment uses.
        let (router, customer, observed) = scenario(CustomerFilterMode::Missing);
        let dice = Dice::new();
        let report = dice.run_single(&router, customer, &observed);
        assert_eq!(report.runs, 1, "only the seed execution");
        assert_eq!(report.branch_sites, 0);
        assert!(!report.has_faults());
        assert!(report.isolation_preserved);
    }

    #[test]
    fn correct_filter_produces_no_hijack_faults() {
        let (router, customer, observed) = scenario(CustomerFilterMode::Correct);
        let dice = Dice::new();
        let report = dice.run_single(&router, customer, &observed);
        assert!(
            !report.has_faults(),
            "correct origin-pinning filter must not be flagged:\n{report}"
        );
        assert!(report.branch_sites > 0, "the filter's branches were explored");
        assert!(report.isolation_preserved);
    }

    #[test]
    fn exploration_does_not_touch_live_state() {
        let (router, customer, observed) = scenario(CustomerFilterMode::Missing);
        let before_prefixes = router.rib().prefix_count();
        let before_updates = router.stats().updates_processed;
        let report = Dice::new().run_single(&router, customer, &observed);
        assert_eq!(router.rib().prefix_count(), before_prefixes);
        assert_eq!(router.stats().updates_processed, before_updates);
        assert!(report.isolation_preserved);
        assert!(report.intercepted_messages > 0, "exploratory messages were intercepted");
    }

    #[test]
    fn anycast_whitelist_suppresses_reports() {
        let (router, customer, observed) = scenario(CustomerFilterMode::Missing);
        let dice = Dice::with_config(DiceConfig {
            anycast_whitelist: vec!["0.0.0.0/0".parse().expect("valid")],
            ..Default::default()
        });
        let report = dice.run_single(&router, customer, &observed);
        assert!(!report.has_faults(), "whitelisting everything suppresses all reports");
    }

    #[test]
    fn pure_withdrawals_are_skipped() {
        let (router, customer, _) = scenario(CustomerFilterMode::Missing);
        let withdrawal = UpdateMessage::withdraw(vec!["41.1.0.0/16".parse().expect("valid")]);
        let report = Dice::new().run_single(&router, customer, &withdrawal);
        assert_eq!(report.runs, 0);
        assert!(!report.has_faults());
    }
}
