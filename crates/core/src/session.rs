//! The exploration session: configuration plus a pluggable checker
//! registry, built once and reused across rounds.
//!
//! [`DiceBuilder`] composes a [`DiceSession`]:
//!
//! ```
//! use dice_core::{DiceBuilder, ForwardingLoopChecker};
//! use dice_symexec::EngineConfig;
//!
//! let session = DiceBuilder::new()
//!     .engine(EngineConfig::default().with_max_runs(64))
//!     .workers(2)
//!     .checker(Box::new(ForwardingLoopChecker::new()))
//!     .build();
//! assert_eq!(session.checker_names(), ["forwarding-loop"]);
//! ```
//!
//! The session owns its checkers as `Arc<dyn FaultChecker>`: they are
//! constructed exactly once at `build()` time and shared by reference
//! across the worker threads of every exploration round (the legacy
//! `Dice::run` path rebuilt its hardcoded checker each round). A session
//! with no registered checkers defaults to the paper's showcase
//! [`OriginHijackChecker`], configured from
//! [`DiceConfig::anycast_whitelist`].

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use dice_bgp::message::UpdateMessage;
use dice_bgp::route::PeerId;
use dice_router::BgpRouter;
use dice_solver::SolverStats;
use dice_symexec::{ConcolicEngine, Coverage, EngineConfig, InputValues};

use crate::checker::{Fault, FaultChecker, OriginHijackChecker};
use crate::checkpoint::RoundCheckpoint;
use crate::explorer::{CheckpointMode, DiceConfig};
use crate::handler::{HandlerOutcome, SymbolicUpdateHandler};
use crate::isolation::LiveStateFingerprint;
use crate::report::ExplorationReport;
use crate::symbolic_input::UpdateTemplate;

/// Builds a [`DiceSession`]: engine/worker configuration plus the fault
/// checker registry.
#[derive(Default)]
pub struct DiceBuilder {
    config: DiceConfig,
    checkers: Vec<Arc<dyn FaultChecker>>,
}

impl DiceBuilder {
    /// Starts from the default configuration and an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, config: DiceConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the concolic engine configuration.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.config.engine = engine;
        self
    }

    /// Sets the number of worker threads exploring observed inputs
    /// concurrently (0 = available parallelism, 1 = sequential).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the maximum number of observed inputs explored per round.
    pub fn max_observed_inputs(mut self, max: usize) -> Self {
        self.config.max_observed_inputs = max;
        self
    }

    /// Sets how handler state is materialized per observed input
    /// ([`CheckpointMode`]; shared copy-on-write round checkpoint by
    /// default). Reports are identical in every mode.
    pub fn checkpoint_mode(mut self, mode: CheckpointMode) -> Self {
        self.config.checkpoint = mode;
        self
    }

    /// Enables or disables the policy-oriented symbolic input fields
    /// (community slot, AS-path length). On by default; turning them off
    /// restores the message-field-only exploration surface, leaving filter
    /// arms gated on those attributes opaque to the solver.
    pub fn symbolic_policy_fields(mut self, enabled: bool) -> Self {
        self.config.symbolic_policy_fields = enabled;
        self
    }

    /// Sets the anycast whitelist applied by the default
    /// [`OriginHijackChecker`] (ignored once any checker is registered
    /// explicitly — configure explicit checkers directly).
    pub fn anycast_whitelist(mut self, prefixes: Vec<dice_bgp::Ipv4Prefix>) -> Self {
        self.config.anycast_whitelist = prefixes;
        self
    }

    /// Registers a fault checker. Checkers run against every explored
    /// outcome in registration order. Registering any checker replaces the
    /// default [`OriginHijackChecker`]; re-register it explicitly alongside
    /// others to keep hijack detection.
    pub fn checker(mut self, checker: Box<dyn FaultChecker>) -> Self {
        self.checkers.push(Arc::from(checker));
        self
    }

    /// Finalizes the session, constructing the checker registry once.
    pub fn build(self) -> DiceSession {
        let mut checkers = self.checkers;
        if checkers.is_empty() {
            checkers
                .push(Arc::new(OriginHijackChecker::new().with_anycast_whitelist(
                    self.config.anycast_whitelist.clone(),
                )));
        }
        DiceSession {
            config: self.config,
            checkers: checkers.into(),
        }
    }
}

impl fmt::Debug for DiceBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiceBuilder")
            .field("config", &self.config)
            .field(
                "checkers",
                &self.checkers.iter().map(|c| c.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Everything one observed input contributes to the round's report.
///
/// Produced per `(peer, update)` pair — possibly on a worker thread — and
/// merged into the [`ExplorationReport`] in input order, so the merged
/// report is byte-for-byte the one sequential exploration produces.
#[derive(Debug)]
struct InputOutcome {
    runs: usize,
    distinct_paths: usize,
    generated_inputs: usize,
    waves: usize,
    wave_latency: dice_obs::Histogram,
    solver_stats: SolverStats,
    coverage: Coverage,
    intercepted_messages: usize,
    faults: Vec<Fault>,
    /// Every run's application-level outcome, in execution order — the
    /// sequence the round-level checker pass ([`FaultChecker::check_round`])
    /// replays after per-input outcomes are merged in input order.
    outcomes: Vec<HandlerOutcome>,
}

/// A configured exploration session: engine settings plus the checker
/// registry, shared (cheaply, via `Arc`) across rounds and worker threads.
#[derive(Clone)]
pub struct DiceSession {
    config: DiceConfig,
    checkers: Arc<[Arc<dyn FaultChecker>]>,
}

impl Default for DiceSession {
    fn default() -> Self {
        DiceBuilder::new().build()
    }
}

impl fmt::Debug for DiceSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiceSession")
            .field("config", &self.config)
            .field("checkers", &self.checker_names())
            .finish()
    }
}

impl DiceSession {
    /// Starts building a session.
    pub fn builder() -> DiceBuilder {
        DiceBuilder::new()
    }

    /// The configuration in use.
    pub fn config(&self) -> &DiceConfig {
        &self.config
    }

    /// The registered checker names, in application order.
    pub fn checker_names(&self) -> Vec<&str> {
        self.checkers.iter().map(|c| c.name()).collect()
    }

    /// Returns a session sharing this session's checker registry but using
    /// `workers` exploration threads — how a fleet orchestrator slices a
    /// global core budget across nodes without rebuilding checkers.
    pub fn with_workers(&self, workers: usize) -> DiceSession {
        let mut config = self.config.clone();
        config.workers = workers;
        DiceSession {
            config,
            checkers: Arc::clone(&self.checkers),
        }
    }

    /// Returns a session whose engine solver workers are capped to
    /// `budget` cores ([`EngineConfig::with_core_budget`]), checker
    /// registry shared. Thread counts only — reports are unchanged.
    pub fn with_engine_core_budget(&self, budget: usize) -> DiceSession {
        let mut config = self.config.clone();
        config.engine = config.engine.with_core_budget(budget);
        DiceSession {
            config,
            checkers: Arc::clone(&self.checkers),
        }
    }

    /// Runs one exploration round over the live router, seeding from the
    /// given observed `(peer, update)` inputs.
    ///
    /// The live router is only read to take the checkpoint and to verify
    /// isolation afterwards; all execution happens over the round's shared
    /// copy-on-write snapshot ([`RoundCheckpoint`], captured exactly once
    /// per round and handed to every handler — or a deep clone per input
    /// under [`CheckpointMode::DeepClonePerInput`]). Observed inputs are
    /// independent of each other, so they are fanned out across
    /// [`DiceConfig::workers`] threads and their outcomes merged in input
    /// order — the report is identical to a sequential round and for every
    /// checkpoint mode.
    pub fn explore(
        &self,
        live: &BgpRouter,
        observed: &[(PeerId, UpdateMessage)],
    ) -> ExplorationReport {
        self.explore_collecting(live, observed).0
    }

    /// Like [`DiceSession::explore`], but also returns every explored
    /// outcome of the round, concatenated in input order (each input's runs
    /// in execution order) — the same sequence the round-level checker pass
    /// replays. Orchestrators stitch these into
    /// [`crate::checker::RoundOutcomes`] histories for the cross-round
    /// ([`FaultChecker::check_live`]) pass.
    pub fn explore_collecting(
        &self,
        live: &BgpRouter,
        observed: &[(PeerId, UpdateMessage)],
    ) -> (ExplorationReport, Vec<HandlerOutcome>) {
        let started = Instant::now();
        let fingerprint = LiveStateFingerprint::capture(live);
        // Checkpoint: a copy-on-write fork of the live node's state, taken
        // once for the whole round.
        let checkpoint = RoundCheckpoint::capture(live);

        let inputs = &observed[..observed.len().min(self.config.max_observed_inputs)];
        let mut report = ExplorationReport {
            observed_inputs: inputs.len(),
            ..Default::default()
        };

        // Work-stealing fan-out over inputs; outcomes land in input order,
        // so the merged report is identical to a sequential round.
        let workers = self.effective_workers(inputs.len());
        let outcomes: Vec<Option<InputOutcome>> =
            crate::parallel::fan_out(inputs, workers, |(peer, update)| {
                self.explore_input(&checkpoint, *peer, update)
            });

        let mut coverage = Coverage::new();
        let mut round_outcomes: Vec<HandlerOutcome> = Vec::new();
        for outcome in outcomes.into_iter().flatten() {
            report.runs += outcome.runs;
            report.distinct_paths += outcome.distinct_paths;
            report.generated_inputs += outcome.generated_inputs;
            report.solver_waves += outcome.waves;
            report.wave_latency.merge(&outcome.wave_latency);
            report.solver_stats.merge(&outcome.solver_stats);
            coverage.merge(&outcome.coverage);
            report.intercepted_messages += outcome.intercepted_messages;
            for fault in outcome.faults {
                if !report.faults.contains(&fault) {
                    report.faults.push(fault);
                }
            }
            round_outcomes.extend(outcome.outcomes);
        }

        // Round-level pass: sequence-aware checkers see the whole round's
        // outcomes, concatenated in input order (each input's runs already
        // in execution order) — deterministic for every worker count.
        for fault in self.check_round(&round_outcomes, checkpoint.router().rib()) {
            if !report.faults.contains(&fault) {
                report.faults.push(fault);
            }
        }

        report.branch_sites = coverage.site_count();
        report.complete_sites = coverage.complete_sites();
        report.policy_sites = coverage.policy_site_count();
        report.policy_complete_sites = coverage.policy_complete_sites();
        report.policy_directions = coverage.policy_directions_covered();
        report.isolation_preserved = fingerprint.matches(live);
        report.elapsed = started.elapsed();
        (report, round_outcomes)
    }

    /// Explores one observed input from the checkpointed state.
    ///
    /// Returns `None` for inputs that yield no symbolic template (pure
    /// withdrawals). Takes only shared references so input exploration can
    /// run on worker threads. Under the default [`CheckpointMode::CowRound`]
    /// the handler shares the round snapshot (a reference-count bump);
    /// under [`CheckpointMode::DeepClonePerInput`] it gets a full copy, the
    /// pre-copy-on-write reference path.
    fn explore_input(
        &self,
        checkpoint: &RoundCheckpoint,
        peer: PeerId,
        update: &UpdateMessage,
    ) -> Option<InputOutcome> {
        let template = UpdateTemplate::from_update(update)?
            .with_policy_fields(self.config.symbolic_policy_fields);
        let seed: InputValues = template.seed();
        let handler_checkpoint = match self.config.checkpoint {
            CheckpointMode::DeepClonePerInput => {
                RoundCheckpoint::from_router(checkpoint.router().deep_clone())
            }
            _ => checkpoint.clone(),
        };
        let mut handler = SymbolicUpdateHandler::new(handler_checkpoint, peer, template);
        let engine = ConcolicEngine::with_config(self.config.engine);
        let mut exploration = engine.explore(&mut handler, &[seed]);

        let mut faults = Vec::new();
        for run in &exploration.runs {
            for fault in self.check_outcome(&run.output, checkpoint.router().rib()) {
                if !faults.contains(&fault) {
                    faults.push(fault);
                }
            }
        }

        Some(InputOutcome {
            runs: exploration.stats.runs,
            distinct_paths: exploration.distinct_paths(),
            generated_inputs: exploration.generated_inputs().len(),
            waves: exploration.stats.waves,
            wave_latency: exploration.wave_latency,
            solver_stats: exploration.solver_stats,
            coverage: std::mem::replace(&mut exploration.coverage, Coverage::new()),
            intercepted_messages: handler.interceptor().len(),
            faults,
            outcomes: exploration.into_outputs(),
        })
    }

    /// Applies every registered checker to one already-computed outcome, in
    /// registration order.
    pub fn check_outcome(&self, outcome: &HandlerOutcome, rib: &dice_router::Rib) -> Vec<Fault> {
        self.checkers
            .iter()
            .filter_map(|checker| checker.check(outcome, rib))
            .collect()
    }

    /// Applies every registered checker's round-level hook
    /// ([`FaultChecker::check_round`]) to a whole round's outcome sequence,
    /// in registration order. [`DiceSession::explore`] calls this once per
    /// round, after the per-outcome pass.
    pub fn check_round(&self, outcomes: &[HandlerOutcome], rib: &dice_router::Rib) -> Vec<Fault> {
        self.checkers
            .iter()
            .flat_map(|checker| checker.check_round(outcomes, rib))
            .collect()
    }

    /// Applies every registered checker's cross-round hook
    /// ([`FaultChecker::check_live`]) to a rolling history of per-round
    /// outcome windows, in registration order. Live orchestrators call this
    /// after each round with their bounded [`crate::checker::RoundOutcomes`]
    /// history; the
    /// default hook returns nothing, so sessions without temporal checkers
    /// pay nothing.
    pub fn check_live(&self, rounds: &[crate::checker::RoundOutcomes]) -> Vec<Fault> {
        self.checkers
            .iter()
            .flat_map(|checker| checker.check_live(rounds))
            .collect()
    }

    /// The worker count for a round over `input_count` inputs: the
    /// configured count, or available parallelism when the configuration
    /// says `0`, never more threads than inputs.
    pub(crate) fn effective_workers(&self, input_count: usize) -> usize {
        crate::parallel::resolve_cores(self.config.workers)
            .min(input_count)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::ForwardingLoopChecker;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::AsPath;
    use dice_netsim::topology::{addr, figure2_topology, CustomerFilterMode};
    use std::net::Ipv4Addr;

    fn provider(mode: CustomerFilterMode) -> BgpRouter {
        let topo = figure2_topology(mode);
        let spec = &topo.nodes()[topo.node_by_name("Provider").expect("node").0];
        let mut router = BgpRouter::new(spec.config.clone());
        router.start();
        router
    }

    #[test]
    fn empty_builder_registers_the_default_hijack_checker() {
        let session = DiceBuilder::new().build();
        assert_eq!(session.checker_names(), ["origin-hijack"]);
        assert!(format!("{session:?}").contains("origin-hijack"));
        assert!(format!("{:?}", DiceBuilder::new()).contains("DiceBuilder"));
    }

    #[test]
    fn registered_checkers_replace_the_default() {
        let session = DiceBuilder::new()
            .checker(Box::new(ForwardingLoopChecker::new()))
            .checker(Box::new(OriginHijackChecker::new()))
            .build();
        assert_eq!(
            session.checker_names(),
            ["forwarding-loop", "origin-hijack"]
        );
    }

    #[test]
    fn builder_setters_reach_the_config() {
        let session = DiceBuilder::new()
            .engine(EngineConfig::default().with_max_runs(7))
            .workers(3)
            .max_observed_inputs(5)
            .anycast_whitelist(vec!["0.0.0.0/0".parse().expect("valid")])
            .build();
        assert_eq!(session.config().engine.max_runs, 7);
        assert_eq!(session.config().workers, 3);
        assert_eq!(session.config().max_observed_inputs, 5);
        assert_eq!(session.config().anycast_whitelist.len(), 1);
    }

    #[test]
    fn with_workers_shares_the_checker_registry() {
        let session = DiceBuilder::new().workers(1).build();
        let wide = session.with_workers(4);
        assert_eq!(wide.config().workers, 4);
        assert_eq!(session.config().workers, 1);
        assert!(Arc::ptr_eq(&session.checkers[0], &wide.checkers[0]));
    }

    #[test]
    fn route_oscillation_checker_fires_through_a_session_round() {
        // A customer import filter gated on *attributes only* (origin AS,
        // MED): every exploratory variant keeps the announced prefix, so
        // generated inputs alternate between acceptance (re-announce) and
        // rejection (revoke the installed route) of the very same prefix —
        // the node would flap it. Only the round-level sequence pass can
        // see that.
        let filter = dice_router::policy::parse_filter(
            r#"filter customer_in {
                if source_as = 17557 then accept;
                if med > 100 then accept;
                reject;
            }"#,
        )
        .expect("valid filter");
        let topo = dice_netsim::topology::figure2_topology_with_customer_filter(filter);
        let spec = &topo.nodes()[topo.node_by_name("Provider").expect("node").0];
        let mut router = BgpRouter::new(spec.config.clone());
        router.start();

        let customer = router.peer_by_address(addr::CUSTOMER).expect("peer");
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([17557, 17557]);
        attrs.next_hop = Ipv4Addr::new(10, 0, 1, 1);
        let observed = UpdateMessage::announce(vec!["41.1.0.0/16".parse().expect("valid")], &attrs);
        router.handle_update(customer, &observed);
        assert!(router
            .rib()
            .best_route(&"41.1.0.0/16".parse().expect("valid"))
            .is_some());

        let session = DiceBuilder::new()
            .checker(Box::new(crate::checker::RouteOscillationChecker::new()))
            .build();
        let report = session.explore(&router, &[(customer, observed.clone())]);
        let fault = report
            .faults
            .iter()
            .find(|f| f.checker == "route-oscillation")
            .unwrap_or_else(|| panic!("oscillation must be flagged:\n{report}"));
        assert_eq!(fault.leaked_prefix().to_string(), "41.1.0.0/16");
        assert!(report.isolation_preserved);

        // Per-outcome checkers alone cannot: the same round through the
        // default (hijack-only) session stays clean.
        let hijack_only = DiceBuilder::new().build();
        let report = hijack_only.explore(&router, &[(customer, observed)]);
        assert!(report
            .faults
            .iter()
            .all(|f| f.checker != "route-oscillation"));
    }

    #[test]
    fn forwarding_loop_checker_fires_through_a_session_round() {
        // The customer announces a block covering the peering links
        // themselves (10.0.0.0/8): with no customer filtering the Provider
        // accepts it, and the route's next hop (10.0.1.1) resolves through
        // the route — the forwarding-loop scenario, invisible to the hijack
        // checker because no covered route is installed.
        let router = provider(CustomerFilterMode::Missing);
        let customer = router.peer_by_address(addr::CUSTOMER).expect("peer");
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([17557, 17557]);
        attrs.next_hop = Ipv4Addr::new(10, 0, 1, 1);
        let observed = UpdateMessage::announce(vec!["10.0.0.0/8".parse().expect("valid")], &attrs);

        let session = DiceBuilder::new()
            .checker(Box::new(OriginHijackChecker::new()))
            .checker(Box::new(ForwardingLoopChecker::new()))
            .build();
        let report = session.explore(&router, &[(customer, observed.clone())]);
        assert!(report.has_faults(), "loop checker must fire:\n{report}");
        assert!(report.faults.iter().any(|f| f.checker == "forwarding-loop"));
        assert!(report.faults.iter().all(|f| f.checker != "origin-hijack"));

        // The same round through a hijack-only session stays clean: the
        // fault class genuinely needs the second checker.
        let hijack_only = DiceBuilder::new().build();
        let report = hijack_only.explore(&router, &[(customer, observed)]);
        assert!(!report.has_faults());
    }
}
