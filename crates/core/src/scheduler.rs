//! Off-the-critical-path scheduling of exploration work.
//!
//! In the paper's setup "the BIRD processes are configured to run on
//! separate CPU cores, with the explorer having to share the single CPU
//! core with its checkpoints" (§4.1); the measured quantity is how many
//! updates per second the live router still manages while exploration runs
//! on that shared core. [`SharedCoreScheduler`] reproduces the arrangement
//! on one thread: live update processing is interleaved with bounded slices
//! of exploration work, and the achieved updates/second is reported for the
//! with- and without-exploration configurations.

use std::time::Instant;

use dice_bgp::message::UpdateMessage;
use dice_bgp::route::PeerId;
use dice_netsim::ThroughputMeter;
use dice_router::BgpRouter;

/// Result of one interleaved processing run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScheduleResult {
    /// Live UPDATE messages processed.
    pub updates_processed: u64,
    /// Exploration work slices executed.
    pub exploration_slices: u64,
    /// Achieved live throughput in updates/second (wall clock, including
    /// the time stolen by exploration — this is the paper's metric).
    pub updates_per_second: f64,
}

/// Interleaves live update processing with exploration work on one core.
#[derive(Debug, Clone, Copy)]
pub struct SharedCoreScheduler {
    /// Run one exploration slice after this many live updates
    /// (0 disables exploration entirely — the baseline configuration).
    pub explore_every: usize,
}

impl Default for SharedCoreScheduler {
    fn default() -> Self {
        SharedCoreScheduler { explore_every: 8 }
    }
}

impl SharedCoreScheduler {
    /// A scheduler that never runs exploration (baseline).
    pub fn baseline() -> Self {
        SharedCoreScheduler { explore_every: 0 }
    }

    /// Processes `updates` from `peer` on `router`, running one slice of
    /// `exploration_work` after every `explore_every` updates.
    pub fn run<F>(
        &self,
        router: &mut BgpRouter,
        peer: PeerId,
        updates: &[UpdateMessage],
        mut exploration_work: F,
    ) -> ScheduleResult
    where
        F: FnMut(),
    {
        let mut meter = ThroughputMeter::new();
        let started = Instant::now();
        let mut slices = 0u64;
        for (i, update) in updates.iter().enumerate() {
            router.handle_update(peer, update);
            if self.explore_every != 0 && (i + 1) % self.explore_every == 0 {
                exploration_work();
                slices += 1;
            }
        }
        meter.record(updates.len() as u64, started.elapsed());
        ScheduleResult {
            updates_processed: updates.len() as u64,
            exploration_slices: slices,
            updates_per_second: meter.updates_per_second(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::AsPath;
    use dice_netsim::topology::{addr, figure2_topology, CustomerFilterMode};
    use std::net::Ipv4Addr;

    fn provider() -> (BgpRouter, PeerId) {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let spec = &topo.nodes()[topo.node_by_name("Provider").expect("node").0];
        let mut router = BgpRouter::new(spec.config.clone());
        router.start();
        let peer = router.peer_by_address(addr::INTERNET).expect("peer");
        (router, peer)
    }

    fn updates(n: u32) -> Vec<UpdateMessage> {
        (0..n)
            .map(|i| {
                let mut attrs = RouteAttrs::default();
                attrs.as_path = AsPath::from_sequence([1299, 100_000 + i]);
                attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
                let prefix = dice_bgp::Ipv4Prefix::new((50 << 24) | (i << 8), 24).expect("valid");
                UpdateMessage::announce(vec![prefix], &attrs)
            })
            .collect()
    }

    #[test]
    fn baseline_runs_no_exploration_slices() {
        let (mut router, peer) = provider();
        let msgs = updates(100);
        let result = SharedCoreScheduler::baseline().run(&mut router, peer, &msgs, || {});
        assert_eq!(result.updates_processed, 100);
        assert_eq!(result.exploration_slices, 0);
        assert!(result.updates_per_second > 0.0);
        assert_eq!(router.stats().updates_processed, 100);
    }

    #[test]
    fn exploration_slices_are_interleaved() {
        let (mut router, peer) = provider();
        let msgs = updates(64);
        let mut work = 0u64;
        let result =
            SharedCoreScheduler { explore_every: 8 }.run(&mut router, peer, &msgs, || work += 1);
        assert_eq!(result.exploration_slices, 8);
        assert_eq!(work, 8);
        assert_eq!(result.updates_processed, 64);
    }

    #[test]
    fn exploration_work_reduces_live_throughput() {
        let (mut baseline_router, peer) = provider();
        let msgs = updates(400);
        let baseline =
            SharedCoreScheduler::baseline().run(&mut baseline_router, peer, &msgs, || {});

        let (mut loaded_router, peer2) = provider();
        // Each exploration slice burns CPU, standing in for a concolic run.
        let loaded =
            SharedCoreScheduler { explore_every: 4 }.run(&mut loaded_router, peer2, &msgs, || {
                let mut acc = 0u64;
                for i in 0..20_000u64 {
                    acc = acc.wrapping_mul(31).wrapping_add(i);
                }
                std::hint::black_box(acc);
            });
        assert!(
            loaded.updates_per_second < baseline.updates_per_second,
            "sharing the core with exploration must cost throughput ({} vs {})",
            loaded.updates_per_second,
            baseline.updates_per_second
        );
    }
}
