//! The copy-on-write round checkpoint: one immutable router snapshot
//! shared by every exploration of a round.
//!
//! The paper takes checkpoints "by simply using the `fork` system call"
//! (§3.2): forks share every memory page with the live process until one
//! side writes. [`RoundCheckpoint`] is that model applied at the
//! orchestration layer. Capturing one is a [`BgpRouter`] clone — itself a
//! copy-on-write fork now that RIB shards sit behind `Arc`s ([`Rib`] docs)
//! — wrapped in an `Arc` so every [`crate::SymbolicUpdateHandler`] of the
//! round shares the *same* snapshot instead of deep-cloning the router per
//! observed input. The pre-change cost model survives as
//! [`crate::CheckpointMode::DeepClonePerInput`], and reports are
//! byte-identical between the two (asserted by test and bench).
//!
//! Lifecycle: [`crate::DiceSession::explore`] captures one checkpoint per
//! round and drops it when the round's report is merged; in continuous
//! operation ([`crate::LiveOrchestrator`]) that means a fresh capture per
//! epoch window — a checkpoint is implicitly invalidated as soon as its
//! window closes, so no round ever explores stale state.

use std::sync::Arc;

use dice_checkpoint::CowForkStats;
use dice_router::{BgpRouter, Rib};

/// An `Arc`-shared immutable snapshot of a router, taken once per
/// exploration round and handed to every handler in that round.
///
/// Cloning a `RoundCheckpoint` is one reference-count bump; the underlying
/// router state is shared copy-on-write with the live router it was
/// captured from (at RIB-shard granularity).
#[derive(Debug, Clone)]
pub struct RoundCheckpoint {
    router: Arc<BgpRouter>,
}

impl RoundCheckpoint {
    /// Captures a checkpoint of the live router (the fork operation): a
    /// copy-on-write clone whose RIB shards stay shared with `live` until
    /// either side writes.
    pub fn capture(live: &BgpRouter) -> Self {
        RoundCheckpoint {
            router: Arc::new(live.clone()),
        }
    }

    /// Wraps an already-owned router (e.g. a
    /// [`BgpRouter::deep_clone`]) as a checkpoint.
    pub fn from_router(router: BgpRouter) -> Self {
        RoundCheckpoint {
            router: Arc::new(router),
        }
    }

    /// The checkpointed router state.
    pub fn router(&self) -> &BgpRouter {
        &self.router
    }

    /// The checkpointed routing table.
    pub fn rib(&self) -> &Rib {
        self.router.rib()
    }

    /// How many handles (captures plus handler clones) currently share
    /// this snapshot.
    pub fn share_count(&self) -> usize {
        Arc::strong_count(&self.router)
    }

    /// Copy-on-write accounting against the live router this checkpoint
    /// was captured from: how many RIB shard units are still physically
    /// shared. Right after [`RoundCheckpoint::capture`] everything is
    /// shared; live writes during the round copy only the touched shards —
    /// the shard-granular analogue of the paper's 3.45% unique pages.
    pub fn cow_stats_vs(&self, live: &BgpRouter) -> CowForkStats {
        let (shared, total) = self.router.rib().cow_shard_sharing(live.rib());
        CowForkStats::from_sharing(shared, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::message::UpdateMessage;
    use dice_bgp::AsPath;
    use dice_netsim::topology::{addr, figure2_topology, CustomerFilterMode};
    use std::net::Ipv4Addr;

    fn provider() -> BgpRouter {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let spec = &topo.nodes()[topo.node_by_name("Provider").expect("node").0];
        let mut router = BgpRouter::new(spec.config.clone());
        router.start();
        router
    }

    fn announce(router: &mut BgpRouter, prefix: &str, tail: u32) {
        let peer = router.peer_by_address(addr::INTERNET).expect("peer");
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([1299, tail]);
        attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
        router.handle_update(
            peer,
            &UpdateMessage::announce(vec![prefix.parse().expect("valid")], &attrs),
        );
    }

    #[test]
    fn capture_shares_everything_until_the_live_router_writes() {
        let mut live = provider();
        for i in 0..32u32 {
            announce(
                &mut live,
                &format!("{}.{}.0.0/16", 20 + i % 8, i),
                100_000 + i,
            );
        }
        let checkpoint = RoundCheckpoint::capture(&live);
        let stats = checkpoint.cow_stats_vs(&live);
        assert_eq!(stats.units_copied(), 0, "a fresh capture copies nothing");
        assert!(stats.shared_fraction() >= 1.0 - 1e-9);

        // The live router keeps processing; only touched shards diverge,
        // and the checkpoint's view stays frozen.
        let before = checkpoint.rib().prefix_count();
        announce(&mut live, "198.51.100.0/24", 7);
        let stats = checkpoint.cow_stats_vs(&live);
        assert!(stats.units_copied() >= 1);
        assert!(
            stats.units_copied() <= 2,
            "a single update dirties at most its shard (plus a short cover)"
        );
        assert_eq!(checkpoint.rib().prefix_count(), before);
        assert_eq!(live.rib().prefix_count(), before + 1);
    }

    #[test]
    fn clones_share_the_snapshot_and_from_router_wraps() {
        let live = provider();
        let checkpoint = RoundCheckpoint::capture(&live);
        assert_eq!(checkpoint.share_count(), 1);
        let handles: Vec<RoundCheckpoint> = (0..4).map(|_| checkpoint.clone()).collect();
        assert_eq!(checkpoint.share_count(), 5, "one Arc, five handles");
        drop(handles);
        assert_eq!(checkpoint.share_count(), 1);

        let owned = RoundCheckpoint::from_router(live.deep_clone());
        assert_eq!(owned.cow_stats_vs(&live).units_shared, 0);
        assert_eq!(owned.router().local_as(), live.local_as());
    }
}
