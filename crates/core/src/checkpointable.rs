//! Checkpointing the BGP router with page-level memory accounting.

use dice_checkpoint::{Checkpointable, Encoder};
use dice_router::BgpRouter;

/// A newtype wrapping [`BgpRouter`] so its state can be tracked by the
/// fork-style checkpoint layer.
///
/// The serialization covers the routing table (the state that dominates
/// BIRD's memory with a full table loaded). To mirror the *in-place* memory
/// layout that makes kernel copy-on-write effective — updating one route in
/// BIRD dirties the page holding that route, not the whole heap — every
/// candidate route is written into a fixed-size slot at a position derived
/// from its prefix and peer. Identical logical state therefore maps to
/// identical pages, and an incremental RIB change dirties only the page
/// holding the affected slot.
#[derive(Debug, Clone)]
pub struct CheckpointedRouter(pub BgpRouter);

/// Bytes reserved per route slot in the serialized image.
const SLOT_BYTES: usize = 64;

impl CheckpointedRouter {
    /// Read access to the wrapped router.
    pub fn router(&self) -> &BgpRouter {
        &self.0
    }

    /// Mutable access to the wrapped router.
    pub fn router_mut(&mut self) -> &mut BgpRouter {
        &mut self.0
    }
}

impl Checkpointable for CheckpointedRouter {
    fn serialize_state(&self, out: &mut Vec<u8>) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        let rib = self.0.rib();
        // Slot table sized with headroom so routine churn never resizes it
        // (a resize would rewrite the whole image, which fork+COW does not
        // do in reality).
        let capacity = (rib.route_count().max(1) * 2).next_power_of_two().max(1024);
        let mut image = vec![0u8; capacity * SLOT_BYTES];
        for (prefix, _) in rib.loc_rib() {
            for route in rib.candidates(&prefix) {
                let mut e = Encoder::new();
                e.put_u32(prefix.addr());
                e.put_u8(prefix.len());
                e.put_u32(route.learned_from.0);
                e.put_u32(route.peer_router_id);
                e.put_u8(route.attrs.origin.code());
                e.put_u32(route.attrs.effective_med());
                e.put_u32(route.attrs.effective_local_pref());
                e.put_u32(u32::from(route.attrs.next_hop));
                let path = route.attrs.as_path.flatten();
                e.put_u16(path.len() as u16);
                for asn in path.iter().take(8) {
                    e.put_u32(asn.value());
                }
                let record = e.finish();

                let mut hasher = DefaultHasher::new();
                (prefix.addr(), prefix.len(), route.learned_from.0).hash(&mut hasher);
                let slot = (hasher.finish() as usize) % capacity;
                let base = slot * SLOT_BYTES;
                // Colliding slots combine order-independently (XOR), so the
                // image stays deterministic for a given logical state.
                for (i, b) in record.iter().take(SLOT_BYTES).enumerate() {
                    image[base + i] ^= b;
                }
            }
        }
        // A small header outside the slot table records identity.
        let mut header = Encoder::new();
        header.put_u32(self.0.local_as());
        header.put_u32(rib.prefix_count() as u32);
        out.extend_from_slice(&header.finish());
        out.extend_from_slice(&image);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::message::UpdateMessage;
    use dice_bgp::AsPath;
    use dice_checkpoint::CheckpointManager;
    use dice_netsim::topology::{addr, figure2_topology, CustomerFilterMode};
    use std::net::Ipv4Addr;

    fn provider_with_routes(n: u32) -> BgpRouter {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let spec = &topo.nodes()[topo.node_by_name("Provider").expect("node").0];
        let mut router = BgpRouter::new(spec.config.clone());
        router.start();
        let peer = router.peer_by_address(addr::INTERNET).expect("peer");
        for i in 0..n {
            let mut attrs = RouteAttrs::default();
            attrs.as_path = AsPath::from_sequence([1299, 100_000 + i]);
            attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
            let prefix = dice_bgp::Ipv4Prefix::new((20 << 24) | (i << 8), 24).expect("valid");
            router.handle_update(peer, &UpdateMessage::announce(vec![prefix], &attrs));
        }
        router
    }

    #[test]
    fn serialization_is_deterministic() {
        let router = provider_with_routes(100);
        let a = CheckpointedRouter(router.clone()).state_bytes();
        let b = CheckpointedRouter(router).state_bytes();
        assert_eq!(a, b);
        assert!(a.len() > 100 * 20, "each route contributes to the image");
    }

    #[test]
    fn checkpoint_shares_pages_until_live_router_changes() {
        let router = provider_with_routes(2_000);
        let mut manager = CheckpointManager::new(CheckpointedRouter(router));
        let checkpoint = manager.take_checkpoint();
        assert_eq!(checkpoint.memory_stats_vs(manager.live()).unique_pages, 0);

        // The live router keeps processing a handful of updates.
        let peer = manager
            .live()
            .state()
            .router()
            .peer_by_address(addr::INTERNET)
            .expect("peer");
        for i in 0..20u32 {
            let mut attrs = RouteAttrs::default();
            attrs.as_path = AsPath::from_sequence([1299, 150_000 + i]);
            attrs.next_hop = Ipv4Addr::new(10, 0, 2, 1);
            let prefix = dice_bgp::Ipv4Prefix::new((30 << 24) | (i << 8), 24).expect("valid");
            manager
                .live_mut()
                .state_mut()
                .router_mut()
                .handle_update(peer, &UpdateMessage::announce(vec![prefix], &attrs));
        }
        manager.live_mut().sync();
        let stats = checkpoint.memory_stats_vs(manager.live());
        assert!(stats.unique_pages > 0);
        assert!(
            stats.unique_fraction() < 0.5,
            "a small update burst should leave most pages shared, got {}",
            stats
        );
    }
}
