//! Isolation of exploration from the deployed system.
//!
//! "We want the exploratory execution over a node checkpoint to work
//! alongside the running system. Therefore, DiCE intercepts the messages
//! generated during exploration" (§2.3). The interceptor collects every
//! message an exploratory execution would have sent; nothing reaches the
//! live peers, and the live router object is never touched.

use dice_bgp::message::UpdateMessage;
use dice_bgp::route::PeerId;
use dice_router::BgpRouter;

/// Captures messages generated during exploration instead of sending them.
#[derive(Debug, Clone, Default)]
pub struct MessageInterceptor {
    captured: Vec<(PeerId, UpdateMessage)>,
}

impl MessageInterceptor {
    /// Creates an empty interceptor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a message that would have been sent to `peer`.
    pub fn capture(&mut self, peer: PeerId, message: UpdateMessage) {
        self.captured.push((peer, message));
    }

    /// Number of intercepted messages.
    pub fn len(&self) -> usize {
        self.captured.len()
    }

    /// Returns true if nothing was intercepted.
    pub fn is_empty(&self) -> bool {
        self.captured.is_empty()
    }

    /// The intercepted messages, in capture order.
    pub fn messages(&self) -> &[(PeerId, UpdateMessage)] {
        &self.captured
    }

    /// Drains the intercepted messages.
    pub fn drain(&mut self) -> Vec<(PeerId, UpdateMessage)> {
        std::mem::take(&mut self.captured)
    }
}

/// A fingerprint of the externally visible state of the live router, taken
/// before exploration and compared afterwards to assert that exploration
/// ran in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveStateFingerprint {
    /// Prefixes in the Loc-RIB.
    pub rib_prefixes: usize,
    /// Candidate routes across all peers.
    pub rib_routes: usize,
    /// UPDATE messages the live router has processed.
    pub updates_processed: u64,
    /// Messages the live router has queued for sending.
    pub messages_sent: u64,
}

impl LiveStateFingerprint {
    /// Captures the fingerprint of a router.
    pub fn capture(router: &BgpRouter) -> Self {
        LiveStateFingerprint {
            rib_prefixes: router.rib().prefix_count(),
            rib_routes: router.rib().route_count(),
            updates_processed: router.stats().updates_processed,
            messages_sent: router.stats().messages_sent,
        }
    }

    /// Returns true if the router's externally visible state is unchanged.
    pub fn matches(&self, router: &BgpRouter) -> bool {
        *self == Self::capture(router)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::RouteAttrs;
    use dice_router::{NeighborConfig, RouterConfig};
    use std::net::Ipv4Addr;

    #[test]
    fn interceptor_accumulates_and_drains() {
        let mut interceptor = MessageInterceptor::new();
        assert!(interceptor.is_empty());
        let attrs = RouteAttrs::originated(65001, Ipv4Addr::new(10, 0, 0, 1));
        let msg = UpdateMessage::announce(vec!["203.0.113.0/24".parse().expect("valid")], &attrs);
        interceptor.capture(PeerId(1), msg.clone());
        interceptor.capture(PeerId(2), msg);
        assert_eq!(interceptor.len(), 2);
        assert_eq!(interceptor.messages()[0].0, PeerId(1));
        let drained = interceptor.drain();
        assert_eq!(drained.len(), 2);
        assert!(interceptor.is_empty());
    }

    #[test]
    fn fingerprint_detects_live_state_changes() {
        let config =
            RouterConfig::new(Ipv4Addr::new(10, 0, 0, 1), 65001).with_neighbor(NeighborConfig {
                address: Ipv4Addr::new(10, 0, 0, 2),
                remote_as: 65002,
                import_filter: None,
                export_filter: None,
            });
        let mut router = dice_router::BgpRouter::new(config);
        router.start();
        let fp = LiveStateFingerprint::capture(&router);
        assert!(fp.matches(&router));
        // Processing an update changes the fingerprint.
        let attrs = RouteAttrs::originated(65002, Ipv4Addr::new(10, 0, 0, 2));
        let update =
            UpdateMessage::announce(vec!["203.0.113.0/24".parse().expect("valid")], &attrs);
        let peer = router
            .peer_by_address(Ipv4Addr::new(10, 0, 0, 2))
            .expect("peer");
        router.handle_update(peer, &update);
        assert!(!fp.matches(&router));
    }
}
