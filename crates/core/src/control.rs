//! The operational control plane: a versioned, lock-cheap status surface
//! for long-running live exploration.
//!
//! The live orchestrator runs for as long as the feed does, which makes it
//! infrastructure, not a test harness — and infrastructure needs a status
//! endpoint. [`ControlPlane`] is that surface: after every executed round
//! the orchestrator assembles a [`ControlSnapshot`] (round latencies,
//! solver reuse rates, policy coverage, injected-fault counts, CoW fork
//! sharing, the delivery-log compaction watermark, and — when the run is
//! fed by a [`dice_netsim::ingest::WireReplayDriver`] — wire-ingest
//! decode/error counters) and publishes it behind an `Arc` swap. Sampling
//! from another thread is one brief mutex lock and an `Arc` clone, never a
//! copy of the snapshot itself, so a sidecar can poll mid-run without
//! perturbing exploration.
//!
//! The snapshot carries [`ControlSnapshot::schema_version`]
//! ([`CONTROL_SCHEMA_VERSION`]) and a stable rendered form
//! ([`ControlSnapshot::render`], asserted by golden tests): consumers pin
//! the version, and any field change bumps it.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dice_checkpoint::CowForkStats;
use dice_netsim::IngestStats;
use dice_obs::HistogramSummary;

/// Schema version of [`ControlSnapshot`]. Bumped whenever a field is
/// added, removed or changes meaning; consumers should check it before
/// interpreting the rest of the snapshot.
///
/// **v1 → v2:** every v1 field is preserved with its meaning and rendered
/// position unchanged; v2 appends latency *distributions* — histogram
/// summaries (count/p50/p90/p99/max) for round latency, solver wave
/// latency, and per-epoch ingest decode time — where v1 only carried
/// last/mean scalars.
///
/// **v2 → v3:** every v2 field line is preserved byte-identically; v3
/// appends the fault-trace identity (event count plus the FNV-1a
/// fingerprint of [`dice_netsim::FaultTrace::digest`], so two runs with
/// equal injected counts but different event sequences stay
/// distinguishable) and the fault-plan search counters
/// ([`SearchCounters`], all zero for plain no-search runs).
pub const CONTROL_SCHEMA_VERSION: u32 = 3;

/// Wire-ingest counters, mirrored from
/// [`dice_netsim::IngestStats`] into the control plane's stable schema
/// (the throughput meter is flattened to its updates/s reading).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestCounters {
    /// Frames pulled from the wire trace.
    pub frames: u64,
    /// Messages decoded and byte-identity-verified.
    pub decoded: u64,
    /// Decoded UPDATEs injected into the simulator.
    pub injected_updates: u64,
    /// Frames rejected by the codec (including trailing-byte frames).
    pub decode_errors: u64,
    /// Frames whose re-encoding differed from the captured bytes.
    pub reencode_mismatches: u64,
    /// Raw trace bytes consumed.
    pub bytes_consumed: u64,
    /// Decode throughput in updates/s (0 before any frame).
    pub updates_per_second: f64,
    /// Distribution of per-epoch frame-decode time (schema v2).
    pub decode_latency: HistogramSummary,
}

impl From<&IngestStats> for IngestCounters {
    fn from(stats: &IngestStats) -> Self {
        IngestCounters {
            frames: stats.frames,
            decoded: stats.decoded,
            injected_updates: stats.injected_updates,
            decode_errors: stats.decode_errors,
            reencode_mismatches: stats.reencode_mismatches,
            bytes_consumed: stats.bytes_consumed,
            updates_per_second: stats.updates_per_second(),
            decode_latency: stats.decode_time.summary(),
        }
    }
}

/// Fault-plan search counters in the control plane's stable schema
/// (schema v3), mirrored from the [`crate::SearchSummary`] a
/// [`crate::FaultPlanSearch`] attaches to its report. All zero for plain
/// runs that never searched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchCounters {
    /// Candidate fault plans evaluated.
    pub plans: u64,
    /// Plans that surfaced never-seen coverage (fleet keys, checker
    /// classes, or fault-trace event shapes).
    pub novel: u64,
    /// Distinct minimized, replayable counterexamples emitted.
    pub repros: u64,
}

impl From<&crate::live::SearchSummary> for SearchCounters {
    fn from(summary: &crate::live::SearchSummary) -> Self {
        SearchCounters {
            plans: summary.plans_tried,
            novel: summary.novel_plans,
            repros: summary.minimized_repros,
        }
    }
}

/// A point-in-time status snapshot of a live exploration run.
///
/// Assembled by [`crate::LiveOrchestrator::run`] after every executed
/// round (and once more when the run ends) from the in-progress
/// [`crate::LiveReport`], the simulator's [`dice_netsim::SimStats`], the
/// rounds' accumulated [`dice_solver::SolverStats`], per-node
/// [`crate::RoundCheckpoint`] CoW probes, and the optional shared ingest
/// counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlSnapshot {
    /// [`CONTROL_SCHEMA_VERSION`] at assembly time.
    pub schema_version: u32,
    /// Executed rounds so far.
    pub rounds: usize,
    /// Total exploration executions across all rounds and nodes.
    pub total_runs: usize,
    /// Distinct faults after cross-round deduplication.
    pub distinct_faults: usize,
    /// Faults the run's fault plan injected into the simulation so far.
    pub injected_faults: u64,
    /// Wall-clock latency of the most recent round (drive + quiesce +
    /// explore).
    pub last_round_latency: Duration,
    /// Mean wall-clock latency across executed rounds.
    pub mean_round_latency: Duration,
    /// Total solver queries across all rounds.
    pub solver_queries: u64,
    /// Queries answered through incremental sessions.
    pub solver_incremental_queries: u64,
    /// Share of incremental constraint work reused from assertion stacks
    /// instead of recomputed, in `[0, 1]`.
    pub solver_reuse_rate: f64,
    /// Policy-branch coverage across rounds, in `[0, 1]` (1.0 when no
    /// policies are registered).
    pub policy_coverage: f64,
    /// RIB-shard copy-on-write sharing, summed over every per-node round
    /// fork: of all shard units forked so far, how many were still shared
    /// when their round ended.
    pub cow: CowForkStats,
    /// The delivery-log compaction watermark: every log entry below this
    /// sequence number has been harvested (and dropped, when compaction is
    /// on).
    pub compaction_watermark: u64,
    /// Messages the simulator has delivered.
    pub delivered: u64,
    /// Wire-ingest counters; all zero when the run is not fed from a wire
    /// trace.
    pub ingest: IngestCounters,
    /// Distribution of round wall-clock latency across the run (schema
    /// v2; one sample per executed round).
    pub round_latency: HistogramSummary,
    /// Distribution of batched solver-wave latency across all rounds and
    /// inputs (schema v2; empty when exploration runs sequentially).
    pub wave_latency: HistogramSummary,
    /// Events in the simulator's fault trace, including structural
    /// delivery errors (schema v3).
    pub fault_trace_events: u64,
    /// FNV-1a fingerprint of the fault-trace digest, `0` for an empty
    /// trace (schema v3).
    pub fault_trace_fingerprint: u64,
    /// Fault-plan search counters; all zero without a search (schema v3).
    pub search: SearchCounters,
}

impl Default for ControlSnapshot {
    fn default() -> Self {
        ControlSnapshot {
            schema_version: CONTROL_SCHEMA_VERSION,
            rounds: 0,
            total_runs: 0,
            distinct_faults: 0,
            injected_faults: 0,
            last_round_latency: Duration::ZERO,
            mean_round_latency: Duration::ZERO,
            solver_queries: 0,
            solver_incremental_queries: 0,
            solver_reuse_rate: 0.0,
            policy_coverage: 1.0,
            cow: CowForkStats::default(),
            compaction_watermark: 0,
            delivered: 0,
            ingest: IngestCounters::default(),
            round_latency: HistogramSummary::default(),
            wave_latency: HistogramSummary::default(),
            fault_trace_events: 0,
            fault_trace_fingerprint: 0,
            search: SearchCounters::default(),
        }
    }
}

impl ControlSnapshot {
    /// Mean round latency from a running total, guarding the zero-round
    /// state: before the first round completes there is nothing to divide
    /// by, and the mean is defined as `Duration::ZERO`.
    pub fn mean_latency(latency_total: Duration, rounds: usize) -> Duration {
        if rounds == 0 {
            return Duration::ZERO;
        }
        // A round count beyond u32::MAX saturates the divisor instead of
        // panicking; the mean is indistinguishable from zero there anyway.
        latency_total / u32::try_from(rounds).unwrap_or(u32::MAX)
    }

    /// The stable rendered form, one field group per line. This is the
    /// serialized surface consumers scrape; its shape is pinned by golden
    /// tests and changes only with [`CONTROL_SCHEMA_VERSION`]. The v1
    /// lines render first, byte-identical to schema v1; the v2 latency
    /// distributions follow, then the v3 fault-trace identity and search
    /// counters.
    pub fn render(&self) -> String {
        format!(
            "control-snapshot v{}\n\
             rounds={} runs={} faults={} injected={} delivered={} watermark={}\n\
             latency last={:?} mean={:?}\n\
             solver queries={} incremental={} reuse={:.1}%\n\
             policy coverage={:.1}%\n\
             cow shards {}/{} shared\n\
             ingest frames={} decoded={} injected={} errors={} mismatches={} bytes={} rate={:.0}/s\n\
             round-latency {}\n\
             wave-latency {}\n\
             decode-latency {}\n\
             fault-trace events={} fingerprint={:016x}\n\
             search plans={} novel={} repros={}\n",
            self.schema_version,
            self.rounds,
            self.total_runs,
            self.distinct_faults,
            self.injected_faults,
            self.delivered,
            self.compaction_watermark,
            self.last_round_latency,
            self.mean_round_latency,
            self.solver_queries,
            self.solver_incremental_queries,
            self.solver_reuse_rate * 100.0,
            self.policy_coverage * 100.0,
            self.cow.units_shared,
            self.cow.units_total,
            self.ingest.frames,
            self.ingest.decoded,
            self.ingest.injected_updates,
            self.ingest.decode_errors,
            self.ingest.reencode_mismatches,
            self.ingest.bytes_consumed,
            self.ingest.updates_per_second,
            self.round_latency,
            self.wave_latency,
            self.ingest.decode_latency,
            self.fault_trace_events,
            self.fault_trace_fingerprint,
            self.search.plans,
            self.search.novel,
            self.search.repros,
        )
    }

    /// The machine-readable export: the snapshot as Prometheus text
    /// exposition format. Counters and gauges mirror the rendered lines;
    /// the three latency distributions export as `summary` families with
    /// `quantile` labels (the snapshot carries condensed summaries, not
    /// raw buckets). Output parses against
    /// [`dice_obs::validate_prometheus_text`].
    pub fn prometheus(&self) -> String {
        let mut text = dice_obs::PrometheusText::new();
        text.counter(
            "dice_rounds_total",
            "Exploration rounds executed.",
            self.rounds as u64,
        );
        text.counter(
            "dice_runs_total",
            "Exploration executions across all rounds and nodes.",
            self.total_runs as u64,
        );
        text.gauge(
            "dice_distinct_faults",
            "Distinct faults after cross-round deduplication.",
            self.distinct_faults as f64,
        );
        text.counter(
            "dice_injected_faults_total",
            "Faults injected by the fault plan.",
            self.injected_faults,
        );
        text.counter(
            "dice_delivered_messages_total",
            "Messages delivered by the simulator.",
            self.delivered,
        );
        text.counter(
            "dice_compaction_watermark",
            "Delivery-log compaction watermark.",
            self.compaction_watermark,
        );
        text.counter(
            "dice_solver_queries_total",
            "Solver queries across all rounds.",
            self.solver_queries,
        );
        text.counter(
            "dice_solver_incremental_queries_total",
            "Solver queries answered through incremental sessions.",
            self.solver_incremental_queries,
        );
        text.gauge(
            "dice_solver_reuse_ratio",
            "Share of incremental constraint work reused.",
            self.solver_reuse_rate,
        );
        text.gauge(
            "dice_policy_coverage_ratio",
            "Policy-branch coverage.",
            self.policy_coverage,
        );
        text.counter(
            "dice_ingest_frames_total",
            "Wire frames pulled from the trace.",
            self.ingest.frames,
        );
        text.counter(
            "dice_ingest_decode_errors_total",
            "Wire frames rejected by the codec.",
            self.ingest.decode_errors,
        );
        text.gauge(
            "dice_ingest_updates_per_second",
            "Decode throughput through the wire codec.",
            self.ingest.updates_per_second,
        );
        text.counter(
            "dice_fault_trace_events_total",
            "Events recorded in the fault trace.",
            self.fault_trace_events,
        );
        text.counter(
            "dice_search_plans_total",
            "Candidate fault plans evaluated by the search.",
            self.search.plans,
        );
        text.counter(
            "dice_search_novel_plans_total",
            "Searched plans that surfaced never-seen coverage.",
            self.search.novel,
        );
        text.counter(
            "dice_search_repros_total",
            "Minimized replayable counterexamples emitted.",
            self.search.repros,
        );
        let mut out = text.finish();
        summary_family(
            &mut out,
            "dice_round_latency_seconds",
            "Round wall-clock latency distribution.",
            &self.round_latency,
        );
        summary_family(
            &mut out,
            "dice_wave_latency_seconds",
            "Batched solver-wave latency distribution.",
            &self.wave_latency,
        );
        summary_family(
            &mut out,
            "dice_ingest_decode_latency_seconds",
            "Per-epoch wire decode latency distribution.",
            &self.ingest.decode_latency,
        );
        out
    }
}

/// Append one Prometheus `summary` family rendering a condensed
/// [`HistogramSummary`] (quantile labels in seconds, plus `_count`).
fn summary_family(out: &mut String, name: &str, help: &str, summary: &HistogramSummary) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} summary");
    for (quantile, value) in [
        ("0.5", summary.p50),
        ("0.9", summary.p90),
        ("0.99", summary.p99),
        ("1", summary.max),
    ] {
        let _ = writeln!(
            out,
            "{name}{{quantile=\"{quantile}\"}} {}",
            value as f64 / 1e9
        );
    }
    let _ = writeln!(out, "{name}_count {}", summary.count);
}

impl fmt::Display for ControlSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The shared handle a run publishes through and observers sample from.
///
/// Cloning shares the same slot: hand one clone to
/// [`crate::LiveOrchestrator::with_control_plane`] (or take the
/// orchestrator's own via [`crate::LiveOrchestrator::control_plane`]) and
/// keep another wherever status is served from. [`ControlPlane::sample`]
/// is a brief lock and an `Arc` bump — cheap enough to call from a status
/// endpoint at any rate — and never blocks on snapshot assembly, which
/// happens outside the lock.
#[derive(Debug, Clone, Default)]
pub struct ControlPlane {
    slot: Arc<Mutex<Arc<ControlSnapshot>>>,
}

impl ControlPlane {
    /// Creates a control plane holding a default (pre-run) snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recently published snapshot.
    pub fn sample(&self) -> Arc<ControlSnapshot> {
        self.slot
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Publishes a new snapshot, replacing the previous one.
    pub fn publish(&self, snapshot: ControlSnapshot) {
        let snapshot = Arc::new(snapshot);
        *self
            .slot
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> ControlSnapshot {
        ControlSnapshot {
            schema_version: CONTROL_SCHEMA_VERSION,
            rounds: 3,
            total_runs: 120,
            distinct_faults: 2,
            injected_faults: 1,
            last_round_latency: Duration::from_millis(12),
            mean_round_latency: Duration::from_millis(10),
            solver_queries: 400,
            solver_incremental_queries: 350,
            solver_reuse_rate: 0.625,
            policy_coverage: 0.75,
            cow: CowForkStats::from_sharing(7, 8),
            compaction_watermark: 9,
            delivered: 42,
            ingest: IngestCounters {
                frames: 100,
                decoded: 98,
                injected_updates: 98,
                decode_errors: 2,
                reencode_mismatches: 0,
                bytes_consumed: 5400,
                updates_per_second: 1234.0,
                decode_latency: HistogramSummary {
                    count: 3,
                    p50: 200_000,
                    p90: 350_000,
                    p99: 350_000,
                    max: 350_000,
                },
            },
            round_latency: HistogramSummary {
                count: 3,
                p50: 10_000_000,
                p90: 12_000_000,
                p99: 12_000_000,
                max: 12_000_000,
            },
            wave_latency: HistogramSummary {
                count: 40,
                p50: 60_000,
                p90: 110_000,
                p99: 140_000,
                max: 140_000,
            },
            fault_trace_events: 2,
            fault_trace_fingerprint: 0x00ab_cdef_0123_4567,
            search: SearchCounters {
                plans: 16,
                novel: 5,
                repros: 1,
            },
        }
    }

    #[test]
    fn golden_render_of_a_populated_snapshot() {
        assert_eq!(
            populated().render(),
            "control-snapshot v3\n\
             rounds=3 runs=120 faults=2 injected=1 delivered=42 watermark=9\n\
             latency last=12ms mean=10ms\n\
             solver queries=400 incremental=350 reuse=62.5%\n\
             policy coverage=75.0%\n\
             cow shards 7/8 shared\n\
             ingest frames=100 decoded=98 injected=98 errors=2 mismatches=0 bytes=5400 rate=1234/s\n\
             round-latency n=3 p50=10ms p90=12ms p99=12ms max=12ms\n\
             wave-latency n=40 p50=60µs p90=110µs p99=140µs max=140µs\n\
             decode-latency n=3 p50=200µs p90=350µs p99=350µs max=350µs\n\
             fault-trace events=2 fingerprint=00abcdef01234567\n\
             search plans=16 novel=5 repros=1\n"
        );
        assert_eq!(populated().to_string(), populated().render());
    }

    #[test]
    fn golden_render_of_the_default_snapshot() {
        assert_eq!(
            ControlSnapshot::default().render(),
            "control-snapshot v3\n\
             rounds=0 runs=0 faults=0 injected=0 delivered=0 watermark=0\n\
             latency last=0ns mean=0ns\n\
             solver queries=0 incremental=0 reuse=0.0%\n\
             policy coverage=100.0%\n\
             cow shards 0/0 shared\n\
             ingest frames=0 decoded=0 injected=0 errors=0 mismatches=0 bytes=0 rate=0/s\n\
             round-latency n=0\n\
             wave-latency n=0\n\
             decode-latency n=0\n\
             fault-trace events=0 fingerprint=0000000000000000\n\
             search plans=0 novel=0 repros=0\n"
        );
    }

    #[test]
    fn v2_field_lines_survive_the_v3_bump_byte_identically() {
        // The migration contract: a v2 consumer scraping by line prefix
        // keeps working — every v2 field line is byte-identical, and the
        // v3 additions strictly append after the last v2 line.
        let rendered = populated().render();
        let v2_lines = "rounds=3 runs=120 faults=2 injected=1 delivered=42 watermark=9\n\
             latency last=12ms mean=10ms\n\
             solver queries=400 incremental=350 reuse=62.5%\n\
             policy coverage=75.0%\n\
             cow shards 7/8 shared\n\
             ingest frames=100 decoded=98 injected=98 errors=2 mismatches=0 bytes=5400 rate=1234/s\n\
             round-latency n=3 p50=10ms p90=12ms p99=12ms max=12ms\n\
             wave-latency n=40 p50=60µs p90=110µs p99=140µs max=140µs\n\
             decode-latency n=3 p50=200µs p90=350µs p99=350µs max=350µs\n";
        assert!(rendered.contains(v2_lines));
        let after = rendered.split(v2_lines).nth(1).expect("v2 block present");
        assert_eq!(
            after,
            "fault-trace events=2 fingerprint=00abcdef01234567\nsearch plans=16 novel=5 repros=1\n"
        );
    }

    #[test]
    fn golden_render_of_the_empty_zero_round_snapshot() {
        // The zero-round state a sidecar samples before the first round
        // completes: latency fields must render as zeros (the mean guard),
        // and every distribution is empty.
        let empty = ControlSnapshot {
            mean_round_latency: ControlSnapshot::mean_latency(Duration::ZERO, 0),
            ..ControlSnapshot::default()
        };
        assert_eq!(empty, ControlSnapshot::default());
        assert_eq!(
            empty.render(),
            ControlSnapshot::default().render(),
            "the published zero-round snapshot is the golden default"
        );
        assert!(empty.render().contains("latency last=0ns mean=0ns\n"));
    }

    #[test]
    fn mean_latency_guards_the_zero_round_division() {
        assert_eq!(
            ControlSnapshot::mean_latency(Duration::ZERO, 0),
            Duration::ZERO
        );
        assert_eq!(
            ControlSnapshot::mean_latency(Duration::from_secs(9), 0),
            Duration::ZERO
        );
        assert_eq!(
            ControlSnapshot::mean_latency(Duration::from_secs(9), 3),
            Duration::from_secs(3)
        );
    }

    #[test]
    fn prometheus_export_parses_and_carries_the_quantiles() {
        let doc = populated().prometheus();
        dice_obs::validate_prometheus_text(&doc).expect("export parses against the grammar");
        assert!(doc.contains("# TYPE dice_round_latency_seconds summary"));
        assert!(doc.contains("dice_round_latency_seconds{quantile=\"0.5\"} 0.01"));
        assert!(doc.contains("dice_round_latency_seconds_count 3"));
        assert!(doc.contains("dice_rounds_total 3"));
        assert!(doc.contains("dice_solver_reuse_ratio 0.625"));
        assert!(doc.contains("dice_ingest_updates_per_second 1234"));
        assert!(doc.contains("dice_fault_trace_events_total 2"));
        assert!(doc.contains("dice_search_plans_total 16"));
        assert!(doc.contains("dice_search_novel_plans_total 5"));
        assert!(doc.contains("dice_search_repros_total 1"));

        // The empty snapshot also exports a complete, parseable document.
        let empty = ControlSnapshot::default().prometheus();
        dice_obs::validate_prometheus_text(&empty).expect("empty export parses");
        assert!(empty.contains("dice_round_latency_seconds_count 0"));
    }

    #[test]
    fn sampling_returns_the_latest_published_snapshot() {
        let plane = ControlPlane::new();
        let before = plane.sample();
        assert_eq!(*before, ControlSnapshot::default());
        assert_eq!(before.schema_version, CONTROL_SCHEMA_VERSION);

        plane.publish(populated());
        // Clones share the slot; earlier samples stay frozen.
        let observer = plane.clone();
        assert_eq!(observer.sample().rounds, 3);
        assert_eq!(*before, ControlSnapshot::default());

        let mut next = populated();
        next.rounds = 4;
        plane.publish(next);
        assert_eq!(observer.sample().rounds, 4);
    }

    #[test]
    fn ingest_counters_mirror_netsim_stats() {
        let mut stats = dice_netsim::IngestStats::default();
        stats.frames = 10;
        stats.decoded = 9;
        stats.injected_updates = 8;
        stats.decode_errors = 1;
        stats.bytes_consumed = 512;
        stats.meter.record(9, Duration::from_secs(3));
        let counters = IngestCounters::from(&stats);
        assert_eq!(counters.frames, 10);
        assert_eq!(counters.decoded, 9);
        assert_eq!(counters.injected_updates, 8);
        assert_eq!(counters.decode_errors, 1);
        assert_eq!(counters.bytes_consumed, 512);
        assert!((counters.updates_per_second - 3.0).abs() < 1e-9);
    }
}
