//! The operational control plane: a versioned, lock-cheap status surface
//! for long-running live exploration.
//!
//! The live orchestrator runs for as long as the feed does, which makes it
//! infrastructure, not a test harness — and infrastructure needs a status
//! endpoint. [`ControlPlane`] is that surface: after every executed round
//! the orchestrator assembles a [`ControlSnapshot`] (round latencies,
//! solver reuse rates, policy coverage, injected-fault counts, CoW fork
//! sharing, the delivery-log compaction watermark, and — when the run is
//! fed by a [`dice_netsim::ingest::WireReplayDriver`] — wire-ingest
//! decode/error counters) and publishes it behind an `Arc` swap. Sampling
//! from another thread is one brief mutex lock and an `Arc` clone, never a
//! copy of the snapshot itself, so a sidecar can poll mid-run without
//! perturbing exploration.
//!
//! The snapshot carries [`ControlSnapshot::schema_version`]
//! ([`CONTROL_SCHEMA_VERSION`]) and a stable rendered form
//! ([`ControlSnapshot::render`], asserted by golden tests): consumers pin
//! the version, and any field change bumps it.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dice_checkpoint::CowForkStats;
use dice_netsim::IngestStats;

/// Schema version of [`ControlSnapshot`]. Bumped whenever a field is
/// added, removed or changes meaning; consumers should check it before
/// interpreting the rest of the snapshot.
pub const CONTROL_SCHEMA_VERSION: u32 = 1;

/// Wire-ingest counters, mirrored from
/// [`dice_netsim::IngestStats`] into the control plane's stable schema
/// (the throughput meter is flattened to its updates/s reading).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestCounters {
    /// Frames pulled from the wire trace.
    pub frames: u64,
    /// Messages decoded and byte-identity-verified.
    pub decoded: u64,
    /// Decoded UPDATEs injected into the simulator.
    pub injected_updates: u64,
    /// Frames rejected by the codec (including trailing-byte frames).
    pub decode_errors: u64,
    /// Frames whose re-encoding differed from the captured bytes.
    pub reencode_mismatches: u64,
    /// Raw trace bytes consumed.
    pub bytes_consumed: u64,
    /// Decode throughput in updates/s (0 before any frame).
    pub updates_per_second: f64,
}

impl From<&IngestStats> for IngestCounters {
    fn from(stats: &IngestStats) -> Self {
        IngestCounters {
            frames: stats.frames,
            decoded: stats.decoded,
            injected_updates: stats.injected_updates,
            decode_errors: stats.decode_errors,
            reencode_mismatches: stats.reencode_mismatches,
            bytes_consumed: stats.bytes_consumed,
            updates_per_second: stats.updates_per_second(),
        }
    }
}

/// A point-in-time status snapshot of a live exploration run.
///
/// Assembled by [`crate::LiveOrchestrator::run`] after every executed
/// round (and once more when the run ends) from the in-progress
/// [`crate::LiveReport`], the simulator's [`dice_netsim::SimStats`], the
/// rounds' accumulated [`dice_solver::SolverStats`], per-node
/// [`crate::RoundCheckpoint`] CoW probes, and the optional shared ingest
/// counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlSnapshot {
    /// [`CONTROL_SCHEMA_VERSION`] at assembly time.
    pub schema_version: u32,
    /// Executed rounds so far.
    pub rounds: usize,
    /// Total exploration executions across all rounds and nodes.
    pub total_runs: usize,
    /// Distinct faults after cross-round deduplication.
    pub distinct_faults: usize,
    /// Faults the run's fault plan injected into the simulation so far.
    pub injected_faults: u64,
    /// Wall-clock latency of the most recent round (drive + quiesce +
    /// explore).
    pub last_round_latency: Duration,
    /// Mean wall-clock latency across executed rounds.
    pub mean_round_latency: Duration,
    /// Total solver queries across all rounds.
    pub solver_queries: u64,
    /// Queries answered through incremental sessions.
    pub solver_incremental_queries: u64,
    /// Share of incremental constraint work reused from assertion stacks
    /// instead of recomputed, in `[0, 1]`.
    pub solver_reuse_rate: f64,
    /// Policy-branch coverage across rounds, in `[0, 1]` (1.0 when no
    /// policies are registered).
    pub policy_coverage: f64,
    /// RIB-shard copy-on-write sharing, summed over every per-node round
    /// fork: of all shard units forked so far, how many were still shared
    /// when their round ended.
    pub cow: CowForkStats,
    /// The delivery-log compaction watermark: every log entry below this
    /// sequence number has been harvested (and dropped, when compaction is
    /// on).
    pub compaction_watermark: u64,
    /// Messages the simulator has delivered.
    pub delivered: u64,
    /// Wire-ingest counters; all zero when the run is not fed from a wire
    /// trace.
    pub ingest: IngestCounters,
}

impl Default for ControlSnapshot {
    fn default() -> Self {
        ControlSnapshot {
            schema_version: CONTROL_SCHEMA_VERSION,
            rounds: 0,
            total_runs: 0,
            distinct_faults: 0,
            injected_faults: 0,
            last_round_latency: Duration::ZERO,
            mean_round_latency: Duration::ZERO,
            solver_queries: 0,
            solver_incremental_queries: 0,
            solver_reuse_rate: 0.0,
            policy_coverage: 1.0,
            cow: CowForkStats::default(),
            compaction_watermark: 0,
            delivered: 0,
            ingest: IngestCounters::default(),
        }
    }
}

impl ControlSnapshot {
    /// The stable rendered form, one field group per line. This is the
    /// serialized surface consumers scrape; its shape is pinned by golden
    /// tests and changes only with [`CONTROL_SCHEMA_VERSION`].
    pub fn render(&self) -> String {
        format!(
            "control-snapshot v{}\n\
             rounds={} runs={} faults={} injected={} delivered={} watermark={}\n\
             latency last={:?} mean={:?}\n\
             solver queries={} incremental={} reuse={:.1}%\n\
             policy coverage={:.1}%\n\
             cow shards {}/{} shared\n\
             ingest frames={} decoded={} injected={} errors={} mismatches={} bytes={} rate={:.0}/s\n",
            self.schema_version,
            self.rounds,
            self.total_runs,
            self.distinct_faults,
            self.injected_faults,
            self.delivered,
            self.compaction_watermark,
            self.last_round_latency,
            self.mean_round_latency,
            self.solver_queries,
            self.solver_incremental_queries,
            self.solver_reuse_rate * 100.0,
            self.policy_coverage * 100.0,
            self.cow.units_shared,
            self.cow.units_total,
            self.ingest.frames,
            self.ingest.decoded,
            self.ingest.injected_updates,
            self.ingest.decode_errors,
            self.ingest.reencode_mismatches,
            self.ingest.bytes_consumed,
            self.ingest.updates_per_second,
        )
    }
}

impl fmt::Display for ControlSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The shared handle a run publishes through and observers sample from.
///
/// Cloning shares the same slot: hand one clone to
/// [`crate::LiveOrchestrator::with_control_plane`] (or take the
/// orchestrator's own via [`crate::LiveOrchestrator::control_plane`]) and
/// keep another wherever status is served from. [`ControlPlane::sample`]
/// is a brief lock and an `Arc` bump — cheap enough to call from a status
/// endpoint at any rate — and never blocks on snapshot assembly, which
/// happens outside the lock.
#[derive(Debug, Clone, Default)]
pub struct ControlPlane {
    slot: Arc<Mutex<Arc<ControlSnapshot>>>,
}

impl ControlPlane {
    /// Creates a control plane holding a default (pre-run) snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recently published snapshot.
    pub fn sample(&self) -> Arc<ControlSnapshot> {
        self.slot
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Publishes a new snapshot, replacing the previous one.
    pub fn publish(&self, snapshot: ControlSnapshot) {
        let snapshot = Arc::new(snapshot);
        *self
            .slot
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> ControlSnapshot {
        ControlSnapshot {
            schema_version: CONTROL_SCHEMA_VERSION,
            rounds: 3,
            total_runs: 120,
            distinct_faults: 2,
            injected_faults: 1,
            last_round_latency: Duration::from_millis(12),
            mean_round_latency: Duration::from_millis(10),
            solver_queries: 400,
            solver_incremental_queries: 350,
            solver_reuse_rate: 0.625,
            policy_coverage: 0.75,
            cow: CowForkStats::from_sharing(7, 8),
            compaction_watermark: 9,
            delivered: 42,
            ingest: IngestCounters {
                frames: 100,
                decoded: 98,
                injected_updates: 98,
                decode_errors: 2,
                reencode_mismatches: 0,
                bytes_consumed: 5400,
                updates_per_second: 1234.0,
            },
        }
    }

    #[test]
    fn golden_render_of_a_populated_snapshot() {
        assert_eq!(
            populated().render(),
            "control-snapshot v1\n\
             rounds=3 runs=120 faults=2 injected=1 delivered=42 watermark=9\n\
             latency last=12ms mean=10ms\n\
             solver queries=400 incremental=350 reuse=62.5%\n\
             policy coverage=75.0%\n\
             cow shards 7/8 shared\n\
             ingest frames=100 decoded=98 injected=98 errors=2 mismatches=0 bytes=5400 rate=1234/s\n"
        );
        assert_eq!(populated().to_string(), populated().render());
    }

    #[test]
    fn golden_render_of_the_default_snapshot() {
        assert_eq!(
            ControlSnapshot::default().render(),
            "control-snapshot v1\n\
             rounds=0 runs=0 faults=0 injected=0 delivered=0 watermark=0\n\
             latency last=0ns mean=0ns\n\
             solver queries=0 incremental=0 reuse=0.0%\n\
             policy coverage=100.0%\n\
             cow shards 0/0 shared\n\
             ingest frames=0 decoded=0 injected=0 errors=0 mismatches=0 bytes=0 rate=0/s\n"
        );
    }

    #[test]
    fn sampling_returns_the_latest_published_snapshot() {
        let plane = ControlPlane::new();
        let before = plane.sample();
        assert_eq!(*before, ControlSnapshot::default());
        assert_eq!(before.schema_version, CONTROL_SCHEMA_VERSION);

        plane.publish(populated());
        // Clones share the slot; earlier samples stay frozen.
        let observer = plane.clone();
        assert_eq!(observer.sample().rounds, 3);
        assert_eq!(*before, ControlSnapshot::default());

        let mut next = populated();
        next.rounds = 4;
        plane.publish(next);
        assert_eq!(observer.sample().rounds, 4);
    }

    #[test]
    fn ingest_counters_mirror_netsim_stats() {
        let mut stats = dice_netsim::IngestStats::default();
        stats.frames = 10;
        stats.decoded = 9;
        stats.injected_updates = 8;
        stats.decode_errors = 1;
        stats.bytes_consumed = 512;
        stats.meter.record(9, Duration::from_secs(3));
        let counters = IngestCounters::from(&stats);
        assert_eq!(counters.frames, 10);
        assert_eq!(counters.decoded, 9);
        assert_eq!(counters.injected_updates, 8);
        assert_eq!(counters.decode_errors, 1);
        assert_eq!(counters.bytes_consumed, 512);
        assert!((counters.updates_per_second - 3.0).abs() < 1e-9);
    }
}
