//! The symbolic UPDATE handler: the program DiCE explores.
//!
//! Each execution processes one (generated) UPDATE over a clone of the node
//! checkpoint: the import filter of the originating peer is interpreted
//! over symbolic route fields (recording constraints), the acceptance
//! decision is taken, and any messages the node would emit are intercepted
//! rather than sent (§2.3: "DiCE intercepts the messages generated during
//! exploration").

use dice_bgp::message::UpdateMessage;
use dice_bgp::prefix::Ipv4Prefix;
use dice_bgp::route::PeerId;
use dice_router::policy::eval_filter;
use dice_router::{BgpRouter, FilterOutcome};
use dice_symexec::{ExecCtx, InputValues, SymbolicProgram};

use crate::checkpoint::RoundCheckpoint;
use crate::isolation::MessageInterceptor;
use crate::symbolic_input::UpdateTemplate;

/// The application-level outcome of one exploratory execution.
#[derive(Debug, Clone)]
pub struct HandlerOutcome {
    /// The prefix announced by the exploratory message.
    pub prefix: Ipv4Prefix,
    /// The origin AS carried by the exploratory message.
    pub origin_as: u32,
    /// Whether the import policy accepted the route.
    pub accepted: bool,
    /// The BGP next hop carried by the exploratory message.
    pub next_hop: std::net::Ipv4Addr,
    /// The flattened AS path carried by the exploratory message, neighbor
    /// AS first, origin AS last. Relationship-aware checkers (e.g. the
    /// Gao-Rexford [`crate::RouteLeakChecker`]) classify each hop.
    pub as_path: Vec<u32>,
    /// The filter outcome (attribute modifications requested).
    pub filter: FilterOutcome,
    /// The messages this execution would have emitted, in emission order —
    /// all intercepted, never sent. Sequence-aware checkers (e.g.
    /// [`crate::RouteOscillationChecker`]) read announce/withdraw events
    /// from here across a round's runs.
    pub intercepted: Vec<(PeerId, UpdateMessage)>,
}

impl HandlerOutcome {
    /// Number of messages the execution would have emitted (all
    /// intercepted).
    ///
    /// Migration shim: this used to be a plain `usize` field of the same
    /// name; it is now derived from the recorded
    /// [`intercepted`](HandlerOutcome::intercepted) message *sequence*.
    /// Existing `outcome.intercepted_messages` readers only need added
    /// parentheses; the field form goes away entirely in the next release.
    pub fn intercepted_messages(&self) -> usize {
        self.intercepted.len()
    }
}

/// The symbolic UPDATE handler explored by the concolic engine.
///
/// The handler only *reads* the checkpointed router (filters, peers, the
/// routing table), so every handler of a round shares one
/// [`RoundCheckpoint`] by reference count instead of deep-cloning the
/// router per observed input.
#[derive(Debug)]
pub struct SymbolicUpdateHandler {
    checkpoint: RoundCheckpoint,
    peer: PeerId,
    template: UpdateTemplate,
    interceptor: MessageInterceptor,
}

impl SymbolicUpdateHandler {
    /// Creates a handler over a shared round checkpoint, exploring inputs
    /// derived from an update observed from `peer`.
    ///
    /// Migration note: this used to take an owned `BgpRouter` (a deep
    /// clone per handler); pass [`RoundCheckpoint::capture`] of the
    /// router, or use [`SymbolicUpdateHandler::from_router`] to keep the
    /// old call shape.
    pub fn new(checkpoint: RoundCheckpoint, peer: PeerId, template: UpdateTemplate) -> Self {
        SymbolicUpdateHandler {
            checkpoint,
            peer,
            template,
            interceptor: MessageInterceptor::new(),
        }
    }

    /// Convenience wrapper for the pre-copy-on-write call shape: wraps an
    /// owned router as a single-handler checkpoint.
    pub fn from_router(router: BgpRouter, peer: PeerId, template: UpdateTemplate) -> Self {
        Self::new(RoundCheckpoint::from_router(router), peer, template)
    }

    /// The checkpoint the handler executes over.
    pub fn checkpoint(&self) -> &BgpRouter {
        self.checkpoint.router()
    }

    /// The input template.
    pub fn template(&self) -> &UpdateTemplate {
        &self.template
    }

    /// The messages intercepted across all executions so far.
    pub fn interceptor(&self) -> &MessageInterceptor {
        &self.interceptor
    }

    /// Consumes the handler, returning its interceptor.
    pub fn into_interceptor(self) -> MessageInterceptor {
        self.interceptor
    }
}

impl SymbolicProgram for SymbolicUpdateHandler {
    type Output = HandlerOutcome;

    fn run(&mut self, ctx: &mut ExecCtx, input: &InputValues) -> HandlerOutcome {
        // Materialize the concrete message described by this input and the
        // symbolic view the filter interpreter sees.
        let (prefix, attrs) = self.template.materialize(input);
        let view = self.template.symbolic_view(ctx, input);

        // Everything below only reads the shared snapshot.
        let router = self.checkpoint.router();

        // Run the peer's import policy over the symbolic view. A peer
        // without an import filter accepts everything; a reference to a
        // missing filter fails closed, mirroring the live router.
        let filter_outcome = match router.peer(self.peer).and_then(|p| p.import_filter.clone()) {
            None => FilterOutcome::accepted(),
            Some(name) => match router.config().filter(&name) {
                Some(filter) => eval_filter(filter, &view, ctx),
                None => FilterOutcome::rejected(),
            },
        };
        let accepted = filter_outcome.is_accept();

        // If accepted, the node would re-advertise to its other established
        // peers; if rejected while the checkpointed table holds a best
        // route for the very same prefix learned from the same peer, the
        // node would instead revoke it (treat-as-withdraw). Either way the
        // exploratory messages are intercepted, never sent — and recorded
        // in emission order so sequence-aware checkers can replay them.
        let exploratory = if accepted {
            Some(UpdateMessage::announce(vec![prefix], &attrs))
        } else {
            match router.rib().best_route(&prefix) {
                Some(existing) if existing.learned_from == self.peer => {
                    Some(UpdateMessage::withdraw(vec![prefix]))
                }
                _ => None,
            }
        };
        let mut intercepted = Vec::new();
        if let Some(exploratory) = exploratory {
            for p in router.peers() {
                if p.id != self.peer && p.is_established() {
                    self.interceptor.capture(p.id, exploratory.clone());
                    intercepted.push((p.id, exploratory.clone()));
                }
            }
        }

        HandlerOutcome {
            prefix,
            origin_as: attrs.origin_as().map(|a| a.value()).unwrap_or(0),
            accepted,
            next_hop: attrs.next_hop,
            as_path: attrs.as_path.flatten().iter().map(|a| a.value()).collect(),
            filter: filter_outcome,
            intercepted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::message::UpdateMessage;
    use dice_bgp::AsPath;
    use dice_netsim::topology::{addr, figure2_topology, CustomerFilterMode};
    use dice_symexec::{ConcolicEngine, EngineConfig};
    use std::net::Ipv4Addr;

    fn provider(mode: CustomerFilterMode) -> BgpRouter {
        let topo = figure2_topology(mode);
        let provider = topo.node_by_name("Provider").expect("node");
        let mut r = BgpRouter::new(topo.nodes()[provider.0].config.clone());
        r.start();
        r
    }

    fn observed_update() -> UpdateMessage {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence([17557, 17557]);
        attrs.next_hop = Ipv4Addr::new(10, 0, 1, 1);
        UpdateMessage::announce(vec!["41.1.0.0/16".parse().expect("valid")], &attrs)
    }

    #[test]
    fn handler_runs_and_intercepts_messages() {
        let router = provider(CustomerFilterMode::Missing);
        let peer = router.peer_by_address(addr::CUSTOMER).expect("peer");
        let template = UpdateTemplate::from_update(&observed_update()).expect("template");
        let mut handler = SymbolicUpdateHandler::from_router(router, peer, template);
        let mut ctx = ExecCtx::new();
        let seed = handler.template().seed();
        let outcome = handler.run(&mut ctx, &seed);
        assert!(outcome.accepted, "missing filter accepts everything");
        // The message toward the transit peer was intercepted, not sent.
        assert_eq!(outcome.intercepted_messages(), 1);
        assert_eq!(outcome.intercepted[0].1.nlri, vec![outcome.prefix]);
        assert!(outcome.intercepted[0].1.withdrawn.is_empty());
        assert_eq!(handler.interceptor().len(), 1);
    }

    #[test]
    fn rejection_of_an_installed_route_emits_a_withdraw() {
        // The provider installed the customer's block; an exploratory
        // variant the (correct) filter rejects would revoke that route, so
        // the handler intercepts a withdraw for the same prefix.
        let mut router = provider(CustomerFilterMode::Correct);
        let peer = router.peer_by_address(addr::CUSTOMER).expect("peer");
        router.handle_update(peer, &observed_update());
        assert!(router
            .rib()
            .best_route(&"41.1.0.0/16".parse().expect("valid"))
            .is_some());

        let template = UpdateTemplate::from_update(&observed_update()).expect("template");
        let mut handler = SymbolicUpdateHandler::from_router(router, peer, template);
        let mut ctx = ExecCtx::new();
        // Same prefix, wrong origin AS: the correct filter rejects it.
        let rejected = handler
            .template()
            .seed()
            .with(crate::symbolic_input::fields::SOURCE_AS, 64_999);
        let outcome = handler.run(&mut ctx, &rejected);
        assert!(!outcome.accepted);
        assert_eq!(outcome.intercepted_messages(), 1);
        let (_, update) = &outcome.intercepted[0];
        assert!(update.nlri.is_empty());
        assert_eq!(update.withdrawn, vec![outcome.prefix]);

        // A rejected prefix the checkpoint never installed from this peer
        // revokes nothing.
        let mut ctx = ExecCtx::new();
        let foreign = handler
            .template()
            .seed()
            .with(
                crate::symbolic_input::fields::NLRI_ADDR,
                u32::from_be_bytes([198, 51, 100, 0]) as u64,
            )
            .with(crate::symbolic_input::fields::NLRI_LEN, 24)
            .with(crate::symbolic_input::fields::SOURCE_AS, 64_999);
        let outcome = handler.run(&mut ctx, &foreign);
        assert!(!outcome.accepted);
        assert_eq!(outcome.intercepted_messages(), 0);
    }

    #[test]
    fn correct_filter_records_branches_and_rejects_foreign_origin() {
        let router = provider(CustomerFilterMode::Correct);
        let peer = router.peer_by_address(addr::CUSTOMER).expect("peer");
        let template = UpdateTemplate::from_update(&observed_update()).expect("template");
        let mut handler = SymbolicUpdateHandler::from_router(router, peer, template);
        let mut ctx = ExecCtx::new();
        let seed = handler.template().seed();
        let outcome = handler.run(&mut ctx, &seed);
        // Observed announcement: 41.1.0.0/16 with origin 17557 → accepted.
        assert!(outcome.accepted);
        assert!(!ctx.branches().is_empty(), "filter branches were recorded");
    }

    #[test]
    fn exploration_discovers_both_filter_outcomes() {
        let router = provider(CustomerFilterMode::Correct);
        let peer = router.peer_by_address(addr::CUSTOMER).expect("peer");
        let template = UpdateTemplate::from_update(&observed_update()).expect("template");
        let seed = template.seed();
        let mut handler = SymbolicUpdateHandler::from_router(router, peer, template);
        let engine = ConcolicEngine::with_config(EngineConfig::default().with_max_runs(32));
        let exploration = engine.explore(&mut handler, &[seed]);
        let accepted = exploration.outputs().filter(|o| o.accepted).count();
        let rejected = exploration.outputs().filter(|o| !o.accepted).count();
        assert!(accepted > 0, "some explored inputs pass the filter");
        assert!(rejected > 0, "some explored inputs are rejected");
    }
}
