//! # dice-netsim
//!
//! A deterministic network simulator, synthetic RouteViews-like trace
//! generator and replay harness for the DiCE evaluation.
//!
//! The paper's testbed runs three BIRD instances over virtual interfaces on
//! a 48-core machine, loads a 319,355-prefix RouteViews dump and replays a
//! 15-minute update trace (§4). This crate substitutes that setup with:
//!
//! * [`topology::figure2_topology`] — the Customer / Provider / Rest-of-
//!   Internet topology of Figure 2, with selectable customer-filter
//!   misconfiguration;
//! * [`Simulator`] — step-driven message delivery between the routers;
//! * [`trace::generate_trace`] — synthetic full-table and update traces
//!   with realistic prefix-length and AS-path distributions;
//! * [`Replayer`] and [`ThroughputMeter`] — the updates/second measurement
//!   used by the CPU-overhead experiment;
//! * [`faults::FaultPlan`] — deterministic, seeded fault injection (link
//!   flaps, session resets, message drop/duplicate/reorder) the simulator
//!   consults at enqueue and delivery time, with every injected event
//!   recorded in a replayable [`faults::FaultTrace`];
//! * [`ingest::WireTrace`] and [`ingest::WireReplayDriver`] — MRT-style
//!   wire-level replay: framed raw BGP message bytes decoded strictly
//!   through `dice_bgp::wire::decode` (with per-message byte-identity
//!   checks) and driven into the simulator epoch by epoch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod ingest;
pub mod metrics;
pub mod replay;
pub mod sim;
pub mod topology;
pub mod trace;

pub use faults::{
    DeliveryError, FaultPlan, FaultSpec, FaultTrace, InjectedFault, InjectedFaultKind,
};
pub use ingest::{
    synthesize_wire_trace, IngestError, IngestStats, SharedIngestStats, WireRecord,
    WireReplayDriver, WireTrace,
};
pub use metrics::{slowdown_percent, MeasuredRegion, ThroughputMeter};
pub use replay::{ReplayStats, Replayer};
pub use sim::{ObservedInput, SimStats, Simulator};
pub use topology::{
    figure2_topology, figure2_topology_with_customer_filter, CustomerFilterMode, NodeId, NodeSpec,
    Topology,
};
pub use trace::{
    generate_trace, BgpTrace, TraceEvent, TraceGenConfig, PAPER_TABLE_SIZE, PAPER_TRACE_SECONDS,
};
