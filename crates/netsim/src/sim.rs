//! A deterministic, step-driven simulator for a topology of BGP routers.
//!
//! The simulator plays the role of the paper's testbed (multiple BIRD
//! instances wired over virtual interfaces): each node is a [`BgpRouter`],
//! links are message queues with a configurable delay in ticks, and the
//! run loop delivers messages in timestamp order until quiescence.

use std::collections::VecDeque;

use dice_bgp::message::{BgpMessage, UpdateMessage};
use dice_bgp::route::PeerId;
use dice_router::BgpRouter;

use crate::topology::{NodeId, Topology};

/// One UPDATE observed by a node during simulation: the raw material DiCE
/// exploration seeds from ("previously observed inputs", §2.3).
#[derive(Debug, Clone)]
pub struct ObservedInput {
    /// Global delivery-log sequence number (the entry's *epoch tag*):
    /// assigned monotonically at record time and never reused, so harvest
    /// windows `[from, to)` taken against [`Simulator::observed_cursor`]
    /// stay valid even after earlier entries are drained.
    pub seq: u64,
    /// The node that received the message.
    pub node: NodeId,
    /// The receiving node's peer the message arrived from.
    pub peer: PeerId,
    /// The UPDATE message.
    pub update: UpdateMessage,
}

/// A message in flight between two nodes.
#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: u64,
    to_node: NodeId,
    from_peer: PeerId,
    message: BgpMessage,
}

/// Counters describing a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages delivered to nodes.
    pub delivered: u64,
    /// Messages dropped because the receiving peer could not be resolved.
    pub undeliverable: u64,
    /// Current virtual time in ticks.
    pub now: u64,
}

/// The simulator.
pub struct Simulator {
    routers: Vec<BgpRouter>,
    names: Vec<String>,
    link_delay: u64,
    queue: VecDeque<InFlight>,
    stats: SimStats,
    observed: Vec<ObservedInput>,
    /// Next sequence number to tag an observed entry with; equals the
    /// number of UPDATEs ever recorded, independent of drains.
    observed_seq: u64,
}

impl Simulator {
    /// Instantiates every node of the topology and establishes all
    /// sessions. Link delay defaults to one tick.
    pub fn new(topology: &Topology) -> Self {
        let mut routers = Vec::new();
        let mut names = Vec::new();
        for node in topology.nodes() {
            let mut r = BgpRouter::new(node.config.clone());
            r.start();
            routers.push(r);
            names.push(node.name.clone());
        }
        Simulator {
            routers,
            names,
            link_delay: 1,
            queue: VecDeque::new(),
            stats: SimStats::default(),
            observed: Vec::new(),
            observed_seq: 0,
        }
    }

    /// Sets the link delay in ticks.
    pub fn with_link_delay(mut self, ticks: u64) -> Self {
        self.link_delay = ticks.max(1);
        self
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// Returns true if the simulator has no nodes.
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }

    /// Read access to a node's router.
    pub fn router(&self, node: NodeId) -> &BgpRouter {
        &self.routers[node.0]
    }

    /// Mutable access to a node's router.
    pub fn router_mut(&mut self, node: NodeId) -> &mut BgpRouter {
        &mut self.routers[node.0]
    }

    /// The node's name.
    pub fn name(&self, node: NodeId) -> &str {
        &self.names[node.0]
    }

    /// Simulation counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.stats.now
    }

    /// Number of messages currently in flight.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Injects a message into `node` as if it arrived from the peer with
    /// the given address, and queues any responses.
    pub fn inject(&mut self, node: NodeId, from_address: std::net::Ipv4Addr, message: BgpMessage) {
        let Some(peer) = self.routers[node.0].peer_by_address(from_address) else {
            self.stats.undeliverable += 1;
            return;
        };
        self.record_observed(node, peer, &message);
        let out = self.routers[node.0].handle_message(peer, &message);
        self.stats.delivered += 1;
        self.enqueue_outgoing(node, out);
    }

    /// Logs an UPDATE delivered to a node — exactly what the DiCE instance
    /// beside that node would have observed on the wire. Non-UPDATE
    /// messages carry no explorable input and are not recorded.
    fn record_observed(&mut self, node: NodeId, peer: PeerId, message: &BgpMessage) {
        if let BgpMessage::Update(update) = message {
            self.observed.push(ObservedInput {
                seq: self.observed_seq,
                node,
                peer,
                update: update.clone(),
            });
            self.observed_seq += 1;
        }
    }

    /// The UPDATEs a node observed so far, in delivery order, as the
    /// `(peer, update)` pairs a DiCE exploration round seeds from.
    pub fn observed_inputs(&self, node: NodeId) -> Vec<(PeerId, UpdateMessage)> {
        self.observed
            .iter()
            .filter(|o| o.node == node)
            .map(|o| (o.peer, o.update.clone()))
            .collect()
    }

    /// The full observation log across all nodes, in delivery order.
    pub fn observed_log(&self) -> &[ObservedInput] {
        &self.observed
    }

    /// The current harvest cursor: the sequence number the *next* observed
    /// UPDATE will be tagged with. Two cursors taken before and after a
    /// stretch of live traffic bound the epoch window `[before, after)`
    /// that [`Simulator::observed_inputs_in`] harvests — continuous
    /// orchestrators advance through the delivery log this way without
    /// ever wiping it.
    pub fn observed_cursor(&self) -> u64 {
        self.observed_seq
    }

    /// The UPDATEs `node` observed inside the epoch window `[from, to)`
    /// (sequence numbers per [`ObservedInput::seq`]), in delivery order.
    ///
    /// Windows partition the log losslessly: for any ascending cursor
    /// sequence, concatenating the per-window harvests reproduces exactly
    /// what a one-shot [`Simulator::observed_inputs`] returns, per node,
    /// in order (asserted by property in `tests/properties.rs`).
    pub fn observed_inputs_in(
        &self,
        node: NodeId,
        from: u64,
        to: u64,
    ) -> Vec<(PeerId, UpdateMessage)> {
        // The log is sorted by `seq` (append-only tags; drains preserve
        // order), so the window's bounds binary-search in O(log n) and the
        // scan touches only the window — continuous orchestrators harvest
        // every epoch without ever re-walking the full history.
        let start = self.observed.partition_point(|o| o.seq < from);
        let end = start + self.observed[start..].partition_point(|o| o.seq < to);
        self.observed[start..end]
            .iter()
            .filter(|o| o.node == node)
            .map(|o| (o.peer, o.update.clone()))
            .collect()
    }

    /// Removes and returns `node`'s entries from the observation log, in
    /// delivery order, leaving every other node's pending inputs — and all
    /// sequence numbers — intact. This is the per-node replacement for the
    /// deprecated global [`Simulator::clear_observed`] wipe.
    pub fn drain_observed(&mut self, node: NodeId) -> Vec<(PeerId, UpdateMessage)> {
        let mut drained = Vec::new();
        self.observed.retain(|o| {
            if o.node == node {
                drained.push((o.peer, o.update.clone()));
                false
            } else {
                true
            }
        });
        drained
    }

    /// Removes every observation-log entry with a sequence number below
    /// `seq`, returning the number of entries dropped — log compaction for
    /// long-running simulations, whose epoch-tagged delivery log otherwise
    /// grows without bound.
    ///
    /// Safe to call once **every** harvester's cursor has passed `seq`:
    /// windowed harvests ([`Simulator::observed_inputs_in`]) with
    /// `from >= seq` and the cursor itself ([`Simulator::observed_cursor`])
    /// are unaffected, because sequence tags are assigned monotonically and
    /// never reused. Harvests reaching below `seq` after a trim silently
    /// return only what remains — the caller owns the cursor contract
    /// (continuous orchestrators call this after each harvested round).
    pub fn trim_observed_below(&mut self, seq: u64) -> usize {
        // The log is sorted by `seq` (append-only tags, order-preserving
        // drains), so the cut point binary-searches.
        let cut = self.observed.partition_point(|o| o.seq < seq);
        self.observed.drain(..cut);
        cut
    }

    /// Clears the observation log for **all** nodes at once.
    #[deprecated(
        since = "0.1.0",
        note = "a global wipe drops other nodes' pending inputs mid-harvest; \
                use `drain_observed(node)` or windowed harvesting via \
                `observed_cursor()` / `observed_inputs_in(node, from, to)`"
    )]
    pub fn clear_observed(&mut self) {
        self.observed.clear();
    }

    fn enqueue_outgoing(&mut self, from_node: NodeId, outgoing: Vec<(PeerId, BgpMessage)>) {
        for (peer_id, message) in outgoing {
            match self.resolve(from_node, peer_id) {
                Some((to_node, from_peer)) => {
                    self.queue.push_back(InFlight {
                        deliver_at: self.stats.now + self.link_delay,
                        to_node,
                        from_peer,
                        message,
                    });
                }
                None => self.stats.undeliverable += 1,
            }
        }
    }

    /// Resolves "node A sends to its peer P" into "node B receives from its
    /// peer Q": the peer's address identifies the destination router, and
    /// the sender's router id identifies the receiving peer entry.
    fn resolve(&self, from_node: NodeId, peer: PeerId) -> Option<(NodeId, PeerId)> {
        let sender = &self.routers[from_node.0];
        let peer_addr = sender.peer(peer)?.address;
        let to_node = self
            .routers
            .iter()
            .position(|r| r.router_id() == peer_addr)
            .map(NodeId)?;
        let from_peer = self.routers[to_node.0].peer_by_address(sender.router_id())?;
        Some((to_node, from_peer))
    }

    /// Advances virtual time by one tick, delivering everything due.
    /// Returns the number of messages delivered.
    pub fn step(&mut self) -> usize {
        self.stats.now += 1;
        let now = self.stats.now;
        let mut due = Vec::new();
        let mut remaining = VecDeque::with_capacity(self.queue.len());
        while let Some(m) = self.queue.pop_front() {
            if m.deliver_at <= now {
                due.push(m);
            } else {
                remaining.push_back(m);
            }
        }
        self.queue = remaining;
        let delivered = due.len();
        for m in due {
            self.record_observed(m.to_node, m.from_peer, &m.message);
            let out = self.routers[m.to_node.0].handle_message(m.from_peer, &m.message);
            self.stats.delivered += 1;
            self.enqueue_outgoing(m.to_node, out);
        }
        delivered
    }

    /// Runs until no messages are in flight or `max_steps` is reached.
    /// Returns the number of steps taken.
    pub fn run_to_quiescence(&mut self, max_steps: u64) -> u64 {
        let mut steps = 0;
        while !self.queue.is_empty() && steps < max_steps {
            self.step();
            steps += 1;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{addr, asn, figure2_topology, CustomerFilterMode};
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::message::UpdateMessage;
    use dice_bgp::prefix::Ipv4Prefix;

    fn announcement(prefix: &str, path: &[u32], next_hop: std::net::Ipv4Addr) -> BgpMessage {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = dice_bgp::AsPath::from_sequence(path.iter().copied());
        attrs.next_hop = next_hop;
        BgpMessage::Update(UpdateMessage::announce(
            vec![prefix.parse::<Ipv4Prefix>().expect("valid")],
            &attrs,
        ))
    }

    #[test]
    fn announcement_propagates_across_figure2() {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let customer = topo.node_by_name("Customer").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        // The Internet announces a prefix to the Provider.
        sim.inject(
            provider,
            addr::INTERNET,
            announcement("8.8.0.0/16", &[asn::INTERNET, 15169], addr::INTERNET),
        );
        sim.run_to_quiescence(100);

        assert_eq!(sim.router(provider).rib().prefix_count(), 1);
        // Propagated on to the customer (which also holds its own static).
        let learned = sim
            .router(customer)
            .rib()
            .best_route(&"8.8.0.0/16".parse().expect("valid"))
            .expect("customer learned the route");
        assert_eq!(
            learned.attrs.as_path.neighbor_as().map(|a| a.value()),
            Some(asn::PROVIDER)
        );
        assert!(sim.stats().delivered >= 2);
        assert_eq!(sim.stats().undeliverable, 0);
        assert_eq!(sim.name(internet), "RestOfInternet");
        assert_eq!(sim.len(), 3);
    }

    #[test]
    fn customer_leak_is_blocked_by_correct_filter() {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        // The customer leaks YouTube's /24 (wrong origin, foreign block).
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("208.65.153.0/24", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        assert_eq!(sim.router(provider).rib().prefix_count(), 0);
        assert_eq!(sim.router(internet).rib().prefix_count(), 0);
    }

    #[test]
    fn customer_leak_spreads_with_missing_filter() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("208.65.153.0/24", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        // The hijack reaches the rest of the Internet — the incident.
        assert_eq!(sim.router(provider).rib().prefix_count(), 1);
        assert_eq!(sim.router(internet).rib().prefix_count(), 1);
        let leaked = sim
            .router(internet)
            .rib()
            .best_route(&"208.65.153.0/24".parse().expect("valid"))
            .expect("leaked route");
        assert_eq!(leaked.origin_as().map(|a| a.value()), Some(asn::CUSTOMER));
    }

    #[test]
    fn link_delay_defers_delivery() {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let mut sim = Simulator::new(&topo).with_link_delay(5);
        let provider = topo.node_by_name("Provider").expect("node");
        let customer = topo.node_by_name("Customer").expect("node");
        sim.inject(
            provider,
            addr::INTERNET,
            announcement("8.8.0.0/16", &[asn::INTERNET], addr::INTERNET),
        );
        assert_eq!(sim.pending(), 1);
        for _ in 0..4 {
            assert_eq!(sim.step(), 0);
        }
        assert_eq!(sim.step(), 1);
        assert!(sim
            .router(customer)
            .rib()
            .best_route(&"8.8.0.0/16".parse().expect("valid"))
            .is_some());
        assert_eq!(sim.now(), 5);
    }

    #[test]
    fn observed_inputs_are_harvested_per_node() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let customer = topo.node_by_name("Customer").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.1.0.0/16", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);

        // The Provider observed the injected customer announcement...
        let provider_obs = sim.observed_inputs(provider);
        assert_eq!(provider_obs.len(), 1);
        assert_eq!(
            provider_obs[0].1.nlri,
            vec!["41.1.0.0/16".parse::<Ipv4Prefix>().expect("valid")]
        );
        // ...and the re-advertisement reached the Internet node, which
        // observed it too; the customer saw nothing (split horizon back to
        // the announcer still counts if delivered — here nothing was).
        assert_eq!(sim.observed_inputs(internet).len(), 1);
        assert!(sim.observed_inputs(customer).is_empty());
        assert_eq!(sim.observed_log().len(), 2);

        // Keepalives are not explorable inputs.
        sim.inject(
            provider,
            addr::CUSTOMER,
            BgpMessage::Keepalive(dice_bgp::message::KeepaliveMessage),
        );
        assert_eq!(sim.observed_log().len(), 2);

        // Per-node drains empty the log without the deprecated global
        // wipe (which would also have dropped other nodes' entries).
        for node in [provider, customer, internet] {
            sim.drain_observed(node);
        }
        assert!(sim.observed_log().is_empty());
        assert!(sim.observed_inputs(provider).is_empty());
    }

    #[test]
    fn trim_compacts_the_log_below_a_passed_cursor() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.1.0.0/16", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        let mid = sim.observed_cursor();
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.64.0.0/12", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        let head = sim.observed_cursor();

        // Harvest the first window everywhere, then compact below it.
        let second_window_before: Vec<_> = sim.observed_inputs_in(provider, mid, head);
        let trimmed = sim.trim_observed_below(mid);
        assert_eq!(trimmed as u64, mid, "every entry below the cursor dropped");
        assert!(sim.observed_log().iter().all(|o| o.seq >= mid));

        // Cursor and later windows are untouched by compaction.
        assert_eq!(sim.observed_cursor(), head);
        assert_eq!(
            sim.observed_inputs_in(provider, mid, head),
            second_window_before
        );
        assert!(!sim.observed_inputs(internet).is_empty());

        // Trimming is idempotent, and trimming everything empties the log
        // without ever reusing sequence numbers.
        assert_eq!(sim.trim_observed_below(mid), 0);
        sim.trim_observed_below(head);
        assert!(sim.observed_log().is_empty());
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.128.0.0/12", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        assert_eq!(sim.observed_log().first().map(|o| o.seq), Some(head));
    }

    #[test]
    fn windowed_harvest_partitions_the_delivery_log() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        assert_eq!(sim.observed_cursor(), 0);
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.1.0.0/16", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        let mid = sim.observed_cursor();
        assert!(mid >= 2, "injection plus re-advertisement observed");

        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.64.0.0/12", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        let end = sim.observed_cursor();
        assert!(end > mid);

        // Per node: window one plus window two equals the one-shot harvest.
        for node in [provider, internet] {
            let mut windows = sim.observed_inputs_in(node, 0, mid);
            windows.extend(sim.observed_inputs_in(node, mid, end));
            assert_eq!(windows, sim.observed_inputs(node), "node {}", node.0);
        }
        // An empty window at the head harvests nothing.
        assert!(sim.observed_inputs_in(provider, end, end + 10).is_empty());
        // Sequence tags are the global delivery order.
        let seqs: Vec<u64> = sim.observed_log().iter().map(|o| o.seq).collect();
        assert_eq!(seqs, (0..end).collect::<Vec<u64>>());
    }

    #[test]
    fn per_node_drain_leaves_other_nodes_pending_inputs() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.1.0.0/16", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        assert_eq!(sim.observed_inputs(provider).len(), 1);
        assert_eq!(sim.observed_inputs(internet).len(), 1);

        // The regression clear_observed() caused: harvesting one node must
        // not drop the other node's pending inputs.
        let expected = sim.observed_inputs(provider);
        let drained = sim.drain_observed(provider);
        assert_eq!(drained, expected);
        assert_eq!(drained.len(), 1);
        assert!(sim.observed_inputs(provider).is_empty());
        assert_eq!(
            sim.observed_inputs(internet).len(),
            1,
            "other nodes' observations survive a per-node drain"
        );
        // Sequence numbers are never reused after a drain.
        let before = sim.observed_cursor();
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.128.0.0/12", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        assert_eq!(sim.observed_log().last().map(|o| o.seq), Some(before));
    }

    #[test]
    fn unknown_source_address_is_counted() {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        sim.inject(
            provider,
            std::net::Ipv4Addr::new(192, 0, 2, 99),
            announcement("8.8.0.0/16", &[asn::INTERNET], addr::INTERNET),
        );
        assert_eq!(sim.stats().undeliverable, 1);
        assert_eq!(sim.stats().delivered, 0);
    }
}
