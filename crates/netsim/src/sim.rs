//! A deterministic, step-driven simulator for a topology of BGP routers.
//!
//! The simulator plays the role of the paper's testbed (multiple BIRD
//! instances wired over virtual interfaces): each node is a [`BgpRouter`],
//! links are message queues with a configurable delay in ticks, and the
//! run loop delivers messages in timestamp order until quiescence.

use std::collections::VecDeque;

use dice_bgp::message::{BgpMessage, UpdateMessage};
use dice_bgp::route::PeerId;
use dice_router::BgpRouter;

use crate::faults::{
    DeliveryError, EnqueueVerdict, FaultPlan, FaultRuntime, FaultSpec, FaultTrace,
    InjectedFaultKind,
};
use crate::topology::{NodeId, Topology};

/// One UPDATE observed by a node during simulation: the raw material DiCE
/// exploration seeds from ("previously observed inputs", §2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedInput {
    /// Global delivery-log sequence number (the entry's *epoch tag*):
    /// assigned monotonically at record time and never reused, so harvest
    /// windows `[from, to)` taken against [`Simulator::observed_cursor`]
    /// stay valid even after earlier entries are drained.
    pub seq: u64,
    /// The node that received the message.
    pub node: NodeId,
    /// The receiving node's peer the message arrived from.
    pub peer: PeerId,
    /// The UPDATE message.
    pub update: UpdateMessage,
}

/// A message in flight between two nodes.
#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: u64,
    from_node: NodeId,
    to_node: NodeId,
    from_peer: PeerId,
    message: BgpMessage,
}

/// Counters describing a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages delivered to nodes.
    pub delivered: u64,
    /// Messages dropped because the receiving peer could not be resolved.
    pub undeliverable: u64,
    /// Messages dropped by the fault layer (down link or injected loss).
    pub dropped: u64,
    /// Extra message copies enqueued by injected duplication.
    pub duplicated: u64,
    /// Messages delayed past the link delay by injected reordering.
    pub reordered: u64,
    /// Current virtual time in ticks.
    pub now: u64,
}

impl std::fmt::Display for SimStats {
    /// `delivered=… undeliverable=… now=…`, with the fault-layer counters
    /// (`dropped`/`duplicated`/`reordered`) appended only when nonzero, so
    /// a quiescent run renders identically with or without a fault plan
    /// configured — the same only-when-nonzero convention the report
    /// digests follow.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "delivered={} undeliverable={} now={}",
            self.delivered, self.undeliverable, self.now
        )?;
        if self.dropped > 0 {
            write!(f, " dropped={}", self.dropped)?;
        }
        if self.duplicated > 0 {
            write!(f, " duplicated={}", self.duplicated)?;
        }
        if self.reordered > 0 {
            write!(f, " reordered={}", self.reordered)?;
        }
        Ok(())
    }
}

/// The simulator.
pub struct Simulator {
    routers: Vec<BgpRouter>,
    names: Vec<String>,
    link_delay: u64,
    queue: VecDeque<InFlight>,
    stats: SimStats,
    observed: Vec<ObservedInput>,
    /// Next sequence number to tag an observed entry with; equals the
    /// number of UPDATEs ever recorded, independent of drains.
    observed_seq: u64,
    faults: FaultRuntime,
}

impl Simulator {
    /// Instantiates every node of the topology and establishes all
    /// sessions. Link delay defaults to one tick.
    pub fn new(topology: &Topology) -> Self {
        let mut routers = Vec::new();
        let mut names = Vec::new();
        for node in topology.nodes() {
            let mut r = BgpRouter::new(node.config.clone());
            r.start();
            routers.push(r);
            names.push(node.name.clone());
        }
        Simulator {
            routers,
            names,
            link_delay: 1,
            queue: VecDeque::new(),
            stats: SimStats::default(),
            observed: Vec::new(),
            observed_seq: 0,
            faults: FaultRuntime::new(FaultPlan::default()),
        }
    }

    /// Sets the link delay in ticks.
    pub fn with_link_delay(mut self, ticks: u64) -> Self {
        self.link_delay = ticks.max(1);
        self
    }

    /// Installs a fault plan (builder form). See
    /// [`Simulator::install_fault_plan`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.install_fault_plan(plan);
        self
    }

    /// Installs a fault plan, resetting the fault runtime: the RNG reseeds
    /// from the plan, all links come back up, and the trace restarts. An
    /// empty plan injects nothing — the run stays byte-identical to one
    /// with no plan installed.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultRuntime::new(plan);
    }

    /// The installed fault plan (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        self.faults.plan()
    }

    /// The record of every event the fault layer injected or diagnosed so
    /// far.
    pub fn fault_trace(&self) -> &FaultTrace {
        self.faults.trace()
    }

    /// Number of faults injected so far (excluding structural delivery
    /// errors) — the count `FleetReport`/`LiveReport` carry per round.
    pub fn injected_fault_count(&self) -> usize {
        self.faults.trace().injected_count()
    }

    /// Applies the faults the plan schedules for the start of `epoch`:
    /// link flaps change link state (messages already in flight across a
    /// link that went down are lost at delivery time), and session resets
    /// tear down and re-establish the session between two nodes, flushing
    /// learned routes with proper withdrawal propagation, and partitions
    /// sever (or heals restore) every boundary link of a node set
    /// atomically. A no-op under an empty plan; drivers and orchestrators
    /// call this once per epoch.
    pub fn apply_epoch_faults(&mut self, epoch: u64) {
        let mut span = dice_obs::span("netsim", "sim.apply_epoch_faults");
        let before = self.injected_fault_count();
        let now = self.stats.now;
        self.faults.apply_link_epoch(epoch, now);
        let resets: Vec<(NodeId, NodeId)> = self
            .faults
            .plan()
            .specs()
            .iter()
            .filter_map(|spec| match *spec {
                FaultSpec::SessionReset { a, b, epoch: e } if e == epoch => Some((a, b)),
                _ => None,
            })
            .collect();
        for (a, b) in resets {
            self.apply_session_reset(a, b, epoch);
        }
        let cuts: Vec<(Vec<NodeId>, bool)> = self
            .faults
            .plan()
            .specs()
            .iter()
            .filter_map(|spec| match spec {
                FaultSpec::Partition { nodes, epoch: e } if *e == epoch => {
                    Some((nodes.clone(), true))
                }
                FaultSpec::Heal { nodes, epoch: e } if *e == epoch => Some((nodes.clone(), false)),
                _ => None,
            })
            .collect();
        for (nodes, sever) in cuts {
            if sever {
                self.apply_partition(&nodes, epoch);
            } else {
                self.apply_heal(&nodes, epoch);
            }
        }
        span.set_detail((self.injected_fault_count() - before) as u64);
    }

    /// The normalized boundary links of a node set: every existing peering
    /// with exactly one endpoint inside the set, sorted and deduplicated so
    /// partition processing order is deterministic. Node ids outside the
    /// topology are ignored.
    fn partition_links(&self, nodes: &[NodeId]) -> Vec<(NodeId, NodeId)> {
        let inside: std::collections::BTreeSet<usize> = nodes
            .iter()
            .filter(|n| n.0 < self.routers.len())
            .map(|n| n.0)
            .collect();
        let mut links = std::collections::BTreeSet::new();
        for &i in &inside {
            for o in 0..self.routers.len() {
                if inside.contains(&o) {
                    continue;
                }
                let peered = self.routers[i]
                    .peer_by_address(self.routers[o].router_id())
                    .is_some()
                    || self.routers[o]
                        .peer_by_address(self.routers[i].router_id())
                        .is_some();
                if peered {
                    let (a, b) = crate::faults::normalize_link(NodeId(i), NodeId(o));
                    links.insert((a.0, b.0));
                }
            }
        }
        links
            .into_iter()
            .map(|(a, b)| (NodeId(a), NodeId(b)))
            .collect()
    }

    /// Severs every boundary link of `nodes` atomically: all links go down
    /// before any session reset fires, so the withdrawals a reset emits
    /// toward other severed links are themselves lost — no state leaks
    /// across the partition boundary.
    fn apply_partition(&mut self, nodes: &[NodeId], epoch: u64) {
        let links = self.partition_links(nodes);
        let now = self.stats.now;
        let mut set: Vec<NodeId> = nodes.to_vec();
        set.sort_by_key(|n| n.0);
        set.dedup();
        self.faults.record(
            now,
            InjectedFaultKind::PartitionSevered {
                nodes: set,
                epoch,
                links: links.len(),
            },
        );
        let mut severed = Vec::new();
        for &(a, b) in &links {
            if self.faults.sever_link(a, b, epoch, now) {
                severed.push((a, b));
            }
        }
        for (a, b) in severed {
            self.apply_session_reset(a, b, epoch);
        }
    }

    /// Restores every boundary link of `nodes`. No reset fires on heal:
    /// withdrawn routes stay gone until live traffic re-announces them.
    fn apply_heal(&mut self, nodes: &[NodeId], epoch: u64) {
        let links = self.partition_links(nodes);
        let now = self.stats.now;
        let mut set: Vec<NodeId> = nodes.to_vec();
        set.sort_by_key(|n| n.0);
        set.dedup();
        self.faults.record(
            now,
            InjectedFaultKind::PartitionHealed {
                nodes: set,
                epoch,
                links: links.len(),
            },
        );
        for (a, b) in links {
            self.faults.restore_link(a, b, epoch, now);
        }
    }

    /// Resets the BGP session between `a` and `b`: both sides tear their
    /// FSM down, withdraw every route learned from the other (propagating
    /// the withdrawals to their remaining established peers), and then
    /// re-establish. Withdrawn routes stay gone until live traffic
    /// re-announces them.
    fn apply_session_reset(&mut self, a: NodeId, b: NodeId, epoch: u64) {
        let a_addr = self.routers[a.0].router_id();
        let b_addr = self.routers[b.0].router_id();
        let mut withdrawn_routes = 0;
        for (node, peer_addr) in [(a, b_addr), (b, a_addr)] {
            if let Some(peer) = self.routers[node.0].peer_by_address(peer_addr) {
                let outcome = self.routers[node.0].reset_session(peer);
                withdrawn_routes += outcome.withdrawn_routes;
                self.enqueue_outgoing(node, outcome.outgoing);
            }
        }
        for (node, peer_addr) in [(a, b_addr), (b, a_addr)] {
            if let Some(peer) = self.routers[node.0].peer_by_address(peer_addr) {
                self.routers[node.0].reestablish_session(peer);
            }
        }
        let now = self.stats.now;
        self.faults.record(
            now,
            InjectedFaultKind::SessionReset {
                a,
                b,
                epoch,
                withdrawn_routes,
            },
        );
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// Returns true if the simulator has no nodes.
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }

    /// Read access to a node's router.
    pub fn router(&self, node: NodeId) -> &BgpRouter {
        &self.routers[node.0]
    }

    /// Mutable access to a node's router.
    pub fn router_mut(&mut self, node: NodeId) -> &mut BgpRouter {
        &mut self.routers[node.0]
    }

    /// The node's name.
    pub fn name(&self, node: NodeId) -> &str {
        &self.names[node.0]
    }

    /// Simulation counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.stats.now
    }

    /// Number of messages currently in flight.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Injects a message into `node` as if it arrived from the peer with
    /// the given address, and queues any responses.
    pub fn inject(&mut self, node: NodeId, from_address: std::net::Ipv4Addr, message: BgpMessage) {
        let Some(peer) = self.routers[node.0].peer_by_address(from_address) else {
            self.stats.undeliverable += 1;
            let now = self.stats.now;
            self.faults.record(
                now,
                InjectedFaultKind::DeliveryError(DeliveryError::UnknownSourceAddress {
                    node,
                    address: from_address,
                }),
            );
            return;
        };
        self.record_observed(node, peer, &message);
        let out = self.routers[node.0].handle_message(peer, &message);
        self.stats.delivered += 1;
        self.enqueue_outgoing(node, out);
    }

    /// Logs an UPDATE delivered to a node — exactly what the DiCE instance
    /// beside that node would have observed on the wire. Non-UPDATE
    /// messages carry no explorable input and are not recorded.
    fn record_observed(&mut self, node: NodeId, peer: PeerId, message: &BgpMessage) {
        if let BgpMessage::Update(update) = message {
            self.observed.push(ObservedInput {
                seq: self.observed_seq,
                node,
                peer,
                update: update.clone(),
            });
            self.observed_seq += 1;
        }
    }

    /// The UPDATEs a node observed so far, in delivery order, as the
    /// `(peer, update)` pairs a DiCE exploration round seeds from.
    pub fn observed_inputs(&self, node: NodeId) -> Vec<(PeerId, UpdateMessage)> {
        self.observed
            .iter()
            .filter(|o| o.node == node)
            .map(|o| (o.peer, o.update.clone()))
            .collect()
    }

    /// The full observation log across all nodes, in delivery order.
    pub fn observed_log(&self) -> &[ObservedInput] {
        &self.observed
    }

    /// The current harvest cursor: the sequence number the *next* observed
    /// UPDATE will be tagged with. Two cursors taken before and after a
    /// stretch of live traffic bound the epoch window `[before, after)`
    /// that [`Simulator::observed_inputs_in`] harvests — continuous
    /// orchestrators advance through the delivery log this way without
    /// ever wiping it.
    pub fn observed_cursor(&self) -> u64 {
        self.observed_seq
    }

    /// The UPDATEs `node` observed inside the epoch window `[from, to)`
    /// (sequence numbers per [`ObservedInput::seq`]), in delivery order.
    ///
    /// Windows partition the log losslessly: for any ascending cursor
    /// sequence, concatenating the per-window harvests reproduces exactly
    /// what a one-shot [`Simulator::observed_inputs`] returns, per node,
    /// in order (asserted by property in `tests/properties.rs`).
    pub fn observed_inputs_in(
        &self,
        node: NodeId,
        from: u64,
        to: u64,
    ) -> Vec<(PeerId, UpdateMessage)> {
        // The log is sorted by `seq` (append-only tags; drains preserve
        // order), so the window's bounds binary-search in O(log n) and the
        // scan touches only the window — continuous orchestrators harvest
        // every epoch without ever re-walking the full history.
        let start = self.observed.partition_point(|o| o.seq < from);
        let end = start + self.observed[start..].partition_point(|o| o.seq < to);
        self.observed[start..end]
            .iter()
            .filter(|o| o.node == node)
            .map(|o| (o.peer, o.update.clone()))
            .collect()
    }

    /// Removes and returns `node`'s entries from the observation log, in
    /// delivery order, leaving every other node's pending inputs — and all
    /// sequence numbers — intact. This is the per-node replacement for the
    /// global `clear_observed` wipe removed after its deprecation cycle.
    pub fn drain_observed(&mut self, node: NodeId) -> Vec<(PeerId, UpdateMessage)> {
        let mut drained = Vec::new();
        self.observed.retain(|o| {
            if o.node == node {
                drained.push((o.peer, o.update.clone()));
                false
            } else {
                true
            }
        });
        drained
    }

    /// Removes every observation-log entry with a sequence number below
    /// `seq`, returning the number of entries dropped — log compaction for
    /// long-running simulations, whose epoch-tagged delivery log otherwise
    /// grows without bound.
    ///
    /// Safe to call once **every** harvester's cursor has passed `seq`:
    /// windowed harvests ([`Simulator::observed_inputs_in`]) with
    /// `from >= seq` and the cursor itself ([`Simulator::observed_cursor`])
    /// are unaffected, because sequence tags are assigned monotonically and
    /// never reused. Harvests reaching below `seq` after a trim silently
    /// return only what remains — the caller owns the cursor contract
    /// (continuous orchestrators call this after each harvested round).
    pub fn trim_observed_below(&mut self, seq: u64) -> usize {
        // The log is sorted by `seq` (append-only tags, order-preserving
        // drains), so the cut point binary-searches.
        let cut = self.observed.partition_point(|o| o.seq < seq);
        self.observed.drain(..cut);
        cut
    }

    fn enqueue_outgoing(&mut self, from_node: NodeId, outgoing: Vec<(PeerId, BgpMessage)>) {
        for (peer_id, message) in outgoing {
            match self.resolve(from_node, peer_id) {
                Ok((to_node, from_peer)) => {
                    let now = self.stats.now;
                    match self.faults.on_enqueue(from_node, to_node, now) {
                        EnqueueVerdict::Drop => {
                            self.stats.dropped += 1;
                        }
                        EnqueueVerdict::Deliver { extra_delays } => {
                            self.stats.duplicated += extra_delays.len() as u64 - 1;
                            self.stats.reordered +=
                                extra_delays.iter().filter(|d| **d > 0).count() as u64;
                            for extra in extra_delays {
                                self.queue.push_back(InFlight {
                                    deliver_at: self.stats.now + self.link_delay + extra,
                                    from_node,
                                    to_node,
                                    from_peer,
                                    message: message.clone(),
                                });
                            }
                        }
                    }
                }
                Err(error) => {
                    self.stats.undeliverable += 1;
                    let now = self.stats.now;
                    self.faults
                        .record(now, InjectedFaultKind::DeliveryError(error));
                }
            }
        }
    }

    /// Resolves "node A sends to its peer P" into "node B receives from its
    /// peer Q": the peer's address identifies the destination router, and
    /// the sender's router id identifies the receiving peer entry. Each
    /// failure mode reports which leg of that resolution broke.
    fn resolve(&self, from_node: NodeId, peer: PeerId) -> Result<(NodeId, PeerId), DeliveryError> {
        let sender = &self.routers[from_node.0];
        let peer_addr = sender
            .peer(peer)
            .ok_or(DeliveryError::UnknownPeer {
                node: from_node,
                peer,
            })?
            .address;
        let to_node = self
            .routers
            .iter()
            .position(|r| r.router_id() == peer_addr)
            .map(NodeId)
            .ok_or(DeliveryError::UnresolvedPeerAddress {
                node: from_node,
                peer,
                address: peer_addr,
            })?;
        let from_peer = self.routers[to_node.0]
            .peer_by_address(sender.router_id())
            .ok_or(DeliveryError::NoReturnPeer {
                node: from_node,
                to_node,
                sender: sender.router_id(),
            })?;
        Ok((to_node, from_peer))
    }

    /// Advances virtual time by one tick, delivering everything due.
    /// Returns the number of messages delivered.
    pub fn step(&mut self) -> usize {
        let mut span = dice_obs::span("netsim", "sim.step");
        self.stats.now += 1;
        let now = self.stats.now;
        let mut due = Vec::new();
        let mut remaining = VecDeque::with_capacity(self.queue.len());
        while let Some(m) = self.queue.pop_front() {
            if m.deliver_at <= now {
                due.push(m);
            } else {
                remaining.push_back(m);
            }
        }
        self.queue = remaining;
        let mut delivered = 0;
        for m in due {
            // A link that went down while the message was in flight loses
            // it at delivery time.
            if self.faults.link_is_down(m.from_node, m.to_node) {
                self.stats.dropped += 1;
                self.faults.record(
                    now,
                    InjectedFaultKind::MessageDropped {
                        from: m.from_node,
                        to: m.to_node,
                        link_down: true,
                    },
                );
                continue;
            }
            delivered += 1;
            self.record_observed(m.to_node, m.from_peer, &m.message);
            let out = self.routers[m.to_node.0].handle_message(m.from_peer, &m.message);
            self.stats.delivered += 1;
            self.enqueue_outgoing(m.to_node, out);
        }
        span.set_detail(delivered as u64);
        delivered
    }

    /// Runs until no messages are in flight or `max_steps` is reached.
    /// Returns the number of steps taken.
    pub fn run_to_quiescence(&mut self, max_steps: u64) -> u64 {
        let mut steps = 0;
        while !self.queue.is_empty() && steps < max_steps {
            self.step();
            steps += 1;
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{addr, asn, figure2_topology, CustomerFilterMode};
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::message::UpdateMessage;
    use dice_bgp::prefix::Ipv4Prefix;

    #[test]
    fn sim_stats_display_renders_fault_counters_only_when_nonzero() {
        let mut stats = SimStats::default();
        stats.delivered = 12;
        stats.now = 40;
        assert_eq!(stats.to_string(), "delivered=12 undeliverable=0 now=40");
        stats.dropped = 2;
        stats.reordered = 1;
        assert_eq!(
            stats.to_string(),
            "delivered=12 undeliverable=0 now=40 dropped=2 reordered=1"
        );
    }

    fn announcement(prefix: &str, path: &[u32], next_hop: std::net::Ipv4Addr) -> BgpMessage {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = dice_bgp::AsPath::from_sequence(path.iter().copied());
        attrs.next_hop = next_hop;
        BgpMessage::Update(UpdateMessage::announce(
            vec![prefix.parse::<Ipv4Prefix>().expect("valid")],
            &attrs,
        ))
    }

    #[test]
    fn announcement_propagates_across_figure2() {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let customer = topo.node_by_name("Customer").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        // The Internet announces a prefix to the Provider.
        sim.inject(
            provider,
            addr::INTERNET,
            announcement("8.8.0.0/16", &[asn::INTERNET, 15169], addr::INTERNET),
        );
        sim.run_to_quiescence(100);

        assert_eq!(sim.router(provider).rib().prefix_count(), 1);
        // Propagated on to the customer (which also holds its own static).
        let learned = sim
            .router(customer)
            .rib()
            .best_route(&"8.8.0.0/16".parse().expect("valid"))
            .expect("customer learned the route");
        assert_eq!(
            learned.attrs.as_path.neighbor_as().map(|a| a.value()),
            Some(asn::PROVIDER)
        );
        assert!(sim.stats().delivered >= 2);
        assert_eq!(sim.stats().undeliverable, 0);
        assert_eq!(sim.name(internet), "RestOfInternet");
        assert_eq!(sim.len(), 3);
    }

    #[test]
    fn customer_leak_is_blocked_by_correct_filter() {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        // The customer leaks YouTube's /24 (wrong origin, foreign block).
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("208.65.153.0/24", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        assert_eq!(sim.router(provider).rib().prefix_count(), 0);
        assert_eq!(sim.router(internet).rib().prefix_count(), 0);
    }

    #[test]
    fn customer_leak_spreads_with_missing_filter() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("208.65.153.0/24", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        // The hijack reaches the rest of the Internet — the incident.
        assert_eq!(sim.router(provider).rib().prefix_count(), 1);
        assert_eq!(sim.router(internet).rib().prefix_count(), 1);
        let leaked = sim
            .router(internet)
            .rib()
            .best_route(&"208.65.153.0/24".parse().expect("valid"))
            .expect("leaked route");
        assert_eq!(leaked.origin_as().map(|a| a.value()), Some(asn::CUSTOMER));
    }

    #[test]
    fn link_delay_defers_delivery() {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let mut sim = Simulator::new(&topo).with_link_delay(5);
        let provider = topo.node_by_name("Provider").expect("node");
        let customer = topo.node_by_name("Customer").expect("node");
        sim.inject(
            provider,
            addr::INTERNET,
            announcement("8.8.0.0/16", &[asn::INTERNET], addr::INTERNET),
        );
        assert_eq!(sim.pending(), 1);
        for _ in 0..4 {
            assert_eq!(sim.step(), 0);
        }
        assert_eq!(sim.step(), 1);
        assert!(sim
            .router(customer)
            .rib()
            .best_route(&"8.8.0.0/16".parse().expect("valid"))
            .is_some());
        assert_eq!(sim.now(), 5);
    }

    #[test]
    fn observed_inputs_are_harvested_per_node() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let customer = topo.node_by_name("Customer").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.1.0.0/16", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);

        // The Provider observed the injected customer announcement...
        let provider_obs = sim.observed_inputs(provider);
        assert_eq!(provider_obs.len(), 1);
        assert_eq!(
            provider_obs[0].1.nlri,
            vec!["41.1.0.0/16".parse::<Ipv4Prefix>().expect("valid")]
        );
        // ...and the re-advertisement reached the Internet node, which
        // observed it too; the customer saw nothing (split horizon back to
        // the announcer still counts if delivered — here nothing was).
        assert_eq!(sim.observed_inputs(internet).len(), 1);
        assert!(sim.observed_inputs(customer).is_empty());
        assert_eq!(sim.observed_log().len(), 2);

        // Keepalives are not explorable inputs.
        sim.inject(
            provider,
            addr::CUSTOMER,
            BgpMessage::Keepalive(dice_bgp::message::KeepaliveMessage),
        );
        assert_eq!(sim.observed_log().len(), 2);

        // Per-node drains empty the log without a global wipe (which
        // would also have dropped other nodes' entries).
        for node in [provider, customer, internet] {
            sim.drain_observed(node);
        }
        assert!(sim.observed_log().is_empty());
        assert!(sim.observed_inputs(provider).is_empty());
    }

    #[test]
    fn trim_compacts_the_log_below_a_passed_cursor() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.1.0.0/16", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        let mid = sim.observed_cursor();
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.64.0.0/12", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        let head = sim.observed_cursor();

        // Harvest the first window everywhere, then compact below it.
        let second_window_before: Vec<_> = sim.observed_inputs_in(provider, mid, head);
        let trimmed = sim.trim_observed_below(mid);
        assert_eq!(trimmed as u64, mid, "every entry below the cursor dropped");
        assert!(sim.observed_log().iter().all(|o| o.seq >= mid));

        // Cursor and later windows are untouched by compaction.
        assert_eq!(sim.observed_cursor(), head);
        assert_eq!(
            sim.observed_inputs_in(provider, mid, head),
            second_window_before
        );
        assert!(!sim.observed_inputs(internet).is_empty());

        // Trimming is idempotent, and trimming everything empties the log
        // without ever reusing sequence numbers.
        assert_eq!(sim.trim_observed_below(mid), 0);
        sim.trim_observed_below(head);
        assert!(sim.observed_log().is_empty());
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.128.0.0/12", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        assert_eq!(sim.observed_log().first().map(|o| o.seq), Some(head));
    }

    #[test]
    fn windowed_harvest_partitions_the_delivery_log() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        assert_eq!(sim.observed_cursor(), 0);
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.1.0.0/16", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        let mid = sim.observed_cursor();
        assert!(mid >= 2, "injection plus re-advertisement observed");

        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.64.0.0/12", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        let end = sim.observed_cursor();
        assert!(end > mid);

        // Per node: window one plus window two equals the one-shot harvest.
        for node in [provider, internet] {
            let mut windows = sim.observed_inputs_in(node, 0, mid);
            windows.extend(sim.observed_inputs_in(node, mid, end));
            assert_eq!(windows, sim.observed_inputs(node), "node {}", node.0);
        }
        // An empty window at the head harvests nothing.
        assert!(sim.observed_inputs_in(provider, end, end + 10).is_empty());
        // Sequence tags are the global delivery order.
        let seqs: Vec<u64> = sim.observed_log().iter().map(|o| o.seq).collect();
        assert_eq!(seqs, (0..end).collect::<Vec<u64>>());
    }

    #[test]
    fn per_node_drain_leaves_other_nodes_pending_inputs() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.1.0.0/16", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        assert_eq!(sim.observed_inputs(provider).len(), 1);
        assert_eq!(sim.observed_inputs(internet).len(), 1);

        // The regression clear_observed() caused: harvesting one node must
        // not drop the other node's pending inputs.
        let expected = sim.observed_inputs(provider);
        let drained = sim.drain_observed(provider);
        assert_eq!(drained, expected);
        assert_eq!(drained.len(), 1);
        assert!(sim.observed_inputs(provider).is_empty());
        assert_eq!(
            sim.observed_inputs(internet).len(),
            1,
            "other nodes' observations survive a per-node drain"
        );
        // Sequence numbers are never reused after a drain.
        let before = sim.observed_cursor();
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.128.0.0/12", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        assert_eq!(sim.observed_log().last().map(|o| o.seq), Some(before));
    }

    #[test]
    fn unknown_source_address_is_counted_and_diagnosable() {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        sim.inject(
            provider,
            std::net::Ipv4Addr::new(192, 0, 2, 99),
            announcement("8.8.0.0/16", &[asn::INTERNET], addr::INTERNET),
        );
        assert_eq!(sim.stats().undeliverable, 1);
        assert_eq!(sim.stats().delivered, 0);
        // The silent counter bump now has a structured, diagnosable form
        // in the fault trace — without counting as an *injected* fault.
        assert_eq!(sim.fault_trace().len(), 1);
        assert_eq!(sim.fault_trace().delivery_error_count(), 1);
        assert_eq!(sim.injected_fault_count(), 0);
        match &sim.fault_trace().events()[0].kind {
            InjectedFaultKind::DeliveryError(DeliveryError::UnknownSourceAddress {
                node,
                address,
            }) => {
                assert_eq!(*node, provider);
                assert_eq!(*address, std::net::Ipv4Addr::new(192, 0, 2, 99));
            }
            other => panic!("expected a structured delivery error, got {other:?}"),
        }
    }

    #[test]
    fn session_reset_withdraws_learned_routes_and_reestablishes() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let customer = topo.node_by_name("Customer").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.1.0.0/16", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        assert_eq!(sim.router(internet).rib().prefix_count(), 1);

        sim.install_fault_plan(FaultPlan::new(0).with_spec(FaultSpec::SessionReset {
            a: provider,
            b: customer,
            epoch: 1,
        }));
        sim.apply_epoch_faults(1);
        sim.run_to_quiescence(100);

        // The provider flushed the customer-learned route and the
        // withdrawal propagated to the rest of the Internet.
        assert_eq!(sim.router(provider).rib().prefix_count(), 0);
        assert_eq!(sim.router(internet).rib().prefix_count(), 0);
        assert_eq!(sim.injected_fault_count(), 1);
        assert!(sim
            .fault_trace()
            .digest()
            .contains("session-reset node1<->node0"));

        // Sessions re-established: a fresh announcement flows again.
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.64.0.0/12", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        assert_eq!(sim.router(internet).rib().prefix_count(), 1);
    }

    #[test]
    fn link_flap_loses_traffic_while_down() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let plan = FaultPlan::new(0).with_spec(FaultSpec::LinkFlap {
            a: topo.node_by_name("Provider").expect("node"),
            b: topo.node_by_name("RestOfInternet").expect("node"),
            down_epoch: 1,
            up_epoch: 2,
        });
        let mut sim = Simulator::new(&topo).with_fault_plan(plan);
        let provider = topo.node_by_name("Provider").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        sim.apply_epoch_faults(1);
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.1.0.0/16", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        // The provider accepted the route but the re-advertisement toward
        // the Internet was lost on the downed link.
        assert_eq!(sim.router(provider).rib().prefix_count(), 1);
        assert_eq!(sim.router(internet).rib().prefix_count(), 0);
        assert!(sim.stats().dropped >= 1);

        // After the link recovers, new traffic flows again.
        sim.apply_epoch_faults(2);
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.64.0.0/12", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        assert_eq!(sim.router(internet).rib().prefix_count(), 1);
    }

    #[test]
    fn partition_and_heal_sever_and_restore_boundary_links() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let mut sim = Simulator::new(&topo);
        let provider = topo.node_by_name("Provider").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");

        // Pre-fault steady state: the customer route reached the Internet.
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.1.0.0/16", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        assert_eq!(sim.router(internet).rib().prefix_count(), 1);

        sim.install_fault_plan(
            FaultPlan::new(0)
                .with_spec(FaultSpec::Partition {
                    nodes: vec![internet],
                    epoch: 1,
                })
                .with_spec(FaultSpec::Heal {
                    nodes: vec![internet],
                    epoch: 2,
                }),
        );
        sim.apply_epoch_faults(1);
        sim.run_to_quiescence(100);
        // The reset flushed the Internet node's learned route, and the
        // severed link keeps new traffic out.
        assert_eq!(sim.router(internet).rib().prefix_count(), 0);
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.64.0.0/12", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        assert_eq!(sim.router(provider).rib().prefix_count(), 2);
        assert_eq!(
            sim.router(internet).rib().prefix_count(),
            0,
            "re-advertisement lost on the severed boundary link"
        );
        assert!(sim.stats().dropped >= 1);
        let digest = sim.fault_trace().digest();
        assert!(digest.contains("partition-severed nodes=[2] epoch=1 links=1"));
        assert!(digest.contains("link-down node1<->node2 epoch=1"));
        assert!(digest.contains("session-reset node1<->node2 epoch=1"));

        // Heal: fresh traffic flows again, but nothing withdrawn or lost
        // during the partition re-announces by itself — the steady state
        // diverges from the pre-fault one (the wedgie surface).
        sim.apply_epoch_faults(2);
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.96.0.0/12", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        let digest = sim.fault_trace().digest();
        assert!(digest.contains("partition-healed nodes=[2] epoch=2 links=1"));
        assert!(digest.contains("link-up node1<->node2 epoch=2"));
        assert_eq!(sim.router(internet).rib().prefix_count(), 1);
        assert!(
            sim.router(internet)
                .rib()
                .best_route(&"41.1.0.0/16".parse().expect("valid"))
                .is_none(),
            "pre-fault best route stays gone after the heal"
        );
    }

    #[test]
    fn partitioning_a_middle_node_severs_every_boundary_link_atomically() {
        let topo = figure2_topology(CustomerFilterMode::Missing);
        let provider = topo.node_by_name("Provider").expect("node");
        let customer = topo.node_by_name("Customer").expect("node");
        let internet = topo.node_by_name("RestOfInternet").expect("node");
        let mut sim = Simulator::new(&topo);
        sim.inject(
            provider,
            addr::CUSTOMER,
            announcement("41.1.0.0/16", &[asn::CUSTOMER], addr::CUSTOMER),
        );
        sim.run_to_quiescence(100);
        let customer_before = sim.router(customer).rib().prefix_count();

        sim.install_fault_plan(FaultPlan::new(0).with_spec(FaultSpec::Partition {
            nodes: vec![provider],
            epoch: 1,
        }));
        sim.apply_epoch_faults(1);
        sim.run_to_quiescence(100);
        let digest = sim.fault_trace().digest();
        assert!(digest.contains("partition-severed nodes=[1] epoch=1 links=2"));
        assert!(digest.contains("link-down node0<->node1 epoch=1"));
        assert!(digest.contains("link-down node1<->node2 epoch=1"));
        assert!(digest.contains("session-reset node0<->node1 epoch=1"));
        assert!(digest.contains("session-reset node1<->node2 epoch=1"));
        // Both links went down before either reset fired, so the provider's
        // withdrawals were lost at the boundary instead of leaking across;
        // the customer keeps only what it already originated locally.
        assert_eq!(sim.router(provider).rib().prefix_count(), 0);
        assert_eq!(sim.router(internet).rib().prefix_count(), 0);
        assert_eq!(sim.router(customer).rib().prefix_count(), customer_before);
        // Duplicate partition of the same set is idempotent on link state.
        sim.install_fault_plan(FaultPlan::new(0).with_spec(FaultSpec::Partition {
            nodes: vec![provider, provider],
            epoch: 1,
        }));
        sim.apply_epoch_faults(1);
        assert!(sim
            .fault_trace()
            .digest()
            .contains("partition-severed nodes=[1] epoch=1 links=2"));
    }

    #[test]
    fn same_plan_and_seed_replays_byte_identically() {
        let run = |seed: u64| {
            let topo = figure2_topology(CustomerFilterMode::Missing);
            let provider = topo.node_by_name("Provider").expect("node");
            let plan = FaultPlan::new(seed)
                .with_spec(FaultSpec::MessageDrop {
                    a: provider,
                    b: topo.node_by_name("RestOfInternet").expect("node"),
                    probability: 0.4,
                })
                .with_spec(FaultSpec::MessageReorder {
                    a: provider,
                    b: topo.node_by_name("Customer").expect("node"),
                    probability: 0.5,
                    max_extra_ticks: 3,
                });
            let mut sim = Simulator::new(&topo).with_fault_plan(plan);
            for i in 0..8u32 {
                sim.inject(
                    provider,
                    addr::CUSTOMER,
                    announcement(&format!("41.{i}.0.0/16"), &[asn::CUSTOMER], addr::CUSTOMER),
                );
                sim.run_to_quiescence(50);
            }
            (
                sim.observed_log().to_vec(),
                sim.fault_trace().digest(),
                sim.stats(),
            )
        };
        let (log_a, trace_a, stats_a) = run(11);
        let (log_b, trace_b, stats_b) = run(11);
        assert_eq!(log_a, log_b, "delivery logs replay byte-identically");
        assert_eq!(trace_a, trace_b, "fault traces replay byte-identically");
        assert_eq!(stats_a, stats_b);
        assert!(
            stats_a.dropped > 0 || stats_a.reordered > 0,
            "plan perturbed something"
        );

        // A different seed perturbs differently (with overwhelming
        // probability for this many draws).
        let (_, trace_c, _) = run(12);
        assert_ne!(trace_a, trace_c, "seed changes the injected sequence");
    }
}
