//! Throughput measurement: BGP updates handled per second.
//!
//! "We use the number of BGP update messages the DiCE-enabled router
//! handles per second as a measure of how much the performance is affected
//! while running exploration" (§4.1). The meter accumulates processed
//! counts and elapsed time, either wall-clock or virtual.

use std::time::{Duration, Instant};

/// Accumulates a count of processed updates over measured time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ThroughputMeter {
    updates: u64,
    elapsed: Duration,
}

impl ThroughputMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `updates` processed over `elapsed`.
    pub fn record(&mut self, updates: u64, elapsed: Duration) {
        self.updates += updates;
        self.elapsed += elapsed;
    }

    /// Total updates recorded.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Total time recorded.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Folds another meter into this one, summing counts and elapsed time.
    ///
    /// Per-shard and per-worker meters are accumulated independently and
    /// merged into the control plane's meter at publication points; the
    /// result is identical to having recorded every region on one meter.
    pub fn merge(&mut self, other: &ThroughputMeter) {
        self.updates += other.updates;
        self.elapsed += other.elapsed;
    }

    /// Updates per second; 0 when no time has been recorded.
    pub fn updates_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.updates as f64 / secs
        }
    }
}

/// A stopwatch that measures one region of work and feeds a meter.
#[derive(Debug)]
pub struct MeasuredRegion<'a> {
    meter: &'a mut ThroughputMeter,
    started: Instant,
    updates: u64,
}

impl<'a> MeasuredRegion<'a> {
    /// Starts measuring.
    pub fn start(meter: &'a mut ThroughputMeter) -> Self {
        MeasuredRegion {
            meter,
            started: Instant::now(),
            updates: 0,
        }
    }

    /// Counts processed updates inside the region.
    pub fn add_updates(&mut self, n: u64) {
        self.updates += n;
    }

    /// Stops measuring, committing to the meter.
    pub fn finish(self) {
        let elapsed = self.started.elapsed();
        self.meter.record(self.updates, elapsed);
    }
}

/// The relative slowdown between a baseline and a loaded measurement,
/// reported as the percentage drop in updates/second (the paper reports an
/// 8% impact under full load).
pub fn slowdown_percent(baseline_ups: f64, loaded_ups: f64) -> f64 {
    if baseline_ups <= 0.0 {
        return 0.0;
    }
    ((baseline_ups - loaded_ups) / baseline_ups * 100.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_per_second_arithmetic() {
        let mut meter = ThroughputMeter::new();
        assert_eq!(meter.updates_per_second(), 0.0);
        meter.record(151, Duration::from_secs(10));
        assert!((meter.updates_per_second() - 15.1).abs() < 1e-9);
        meter.record(149, Duration::from_secs(10));
        assert!((meter.updates_per_second() - 15.0).abs() < 1e-9);
        assert_eq!(meter.updates(), 300);
        assert_eq!(meter.elapsed(), Duration::from_secs(20));
    }

    #[test]
    fn merge_folds_counts_and_elapsed_time() {
        let mut total = ThroughputMeter::new();
        let mut shard_a = ThroughputMeter::new();
        let mut shard_b = ThroughputMeter::new();
        shard_a.record(100, Duration::from_secs(4));
        shard_b.record(50, Duration::from_secs(6));
        total.merge(&shard_a);
        total.merge(&shard_b);
        assert_eq!(total.updates(), 150);
        assert_eq!(total.elapsed(), Duration::from_secs(10));
        assert!((total.updates_per_second() - 15.0).abs() < 1e-9);

        // Merging is equivalent to recording every region on one meter.
        let mut direct = ThroughputMeter::new();
        direct.record(100, Duration::from_secs(4));
        direct.record(50, Duration::from_secs(6));
        assert_eq!(total, direct);

        // Merging an empty meter is a no-op.
        total.merge(&ThroughputMeter::new());
        assert_eq!(total, direct);
    }

    #[test]
    fn measured_region_commits_on_finish() {
        let mut meter = ThroughputMeter::new();
        let mut region = MeasuredRegion::start(&mut meter);
        region.add_updates(42);
        region.finish();
        assert_eq!(meter.updates(), 42);
        assert!(meter.elapsed() > Duration::ZERO);
    }

    #[test]
    fn slowdown_matches_paper_example() {
        // 15.1 updates/s without exploration, 13.9 with: ~8% impact.
        let s = slowdown_percent(15.1, 13.9);
        assert!((s - 7.947).abs() < 0.01);
        assert_eq!(slowdown_percent(0.0, 10.0), 0.0);
        assert_eq!(slowdown_percent(10.0, 12.0), 0.0);
    }
}
