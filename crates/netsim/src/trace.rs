//! Synthetic RouteViews-like BGP traces.
//!
//! The paper loads a full routing table (319,355 prefixes from a
//! route-views.eqix dump) and replays a 15-minute update trace. The dump
//! itself is not redistributable, so this module generates a synthetic
//! trace with the same structure: a table-dump phase (one announcement per
//! prefix) followed by timestamped incremental updates (re-announcements
//! with changed attributes and occasional withdrawals).

use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dice_bgp::attributes::RouteAttrs;
use dice_bgp::message::UpdateMessage;
use dice_bgp::prefix::Ipv4Prefix;
use dice_bgp::AsPath;

/// The prefix count of the paper's table dump.
pub const PAPER_TABLE_SIZE: usize = 319_355;
/// The paper's update-trace duration (15 minutes).
pub const PAPER_TRACE_SECONDS: u64 = 15 * 60;

/// One timestamped incremental update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Milliseconds since the start of the update trace.
    pub at_ms: u64,
    /// The UPDATE message.
    pub update: UpdateMessage,
}

/// A full trace: the table dump plus the incremental updates.
#[derive(Debug, Clone, Default)]
pub struct BgpTrace {
    /// The initial table dump, one announcement per prefix.
    pub table: Vec<UpdateMessage>,
    /// Timestamped incremental updates, in chronological order.
    pub updates: Vec<TraceEvent>,
}

impl BgpTrace {
    /// Number of prefixes in the table dump.
    pub fn table_size(&self) -> usize {
        self.table.len()
    }

    /// Number of incremental updates.
    pub fn update_count(&self) -> usize {
        self.updates.len()
    }

    /// Duration covered by the incremental updates, in milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.updates.last().map(|e| e.at_ms).unwrap_or(0)
    }
}

/// Parameters of the synthetic trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceGenConfig {
    /// Number of prefixes in the table dump.
    pub prefix_count: usize,
    /// Number of incremental updates.
    pub update_count: usize,
    /// Duration of the update trace in seconds.
    pub duration_secs: u64,
    /// Fraction (percent) of incremental updates that are withdrawals.
    pub withdrawal_percent: u8,
    /// RNG seed; the same seed reproduces the same trace.
    pub seed: u64,
    /// Number of distinct origin ASes.
    pub as_count: u32,
}

impl Default for TraceGenConfig {
    fn default() -> Self {
        TraceGenConfig {
            prefix_count: 10_000,
            update_count: 2_000,
            duration_secs: PAPER_TRACE_SECONDS,
            withdrawal_percent: 10,
            seed: 0xD1CE,
            as_count: 5_000,
        }
    }
}

impl TraceGenConfig {
    /// The paper-scale configuration (319,355 prefixes, 15-minute trace).
    pub fn paper_scale() -> Self {
        TraceGenConfig {
            prefix_count: PAPER_TABLE_SIZE,
            update_count: 50_000,
            ..Default::default()
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        TraceGenConfig {
            prefix_count: 200,
            update_count: 50,
            ..Default::default()
        }
    }
}

/// Generates a synthetic trace as announced by a neighbor in `neighbor_as`
/// whose address is `next_hop`.
pub fn generate_trace(config: &TraceGenConfig, neighbor_as: u32, next_hop: Ipv4Addr) -> BgpTrace {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut table = Vec::with_capacity(config.prefix_count);
    let mut prefixes: Vec<(Ipv4Prefix, u32)> = Vec::with_capacity(config.prefix_count);
    let mut seen = std::collections::HashSet::with_capacity(config.prefix_count);

    while prefixes.len() < config.prefix_count {
        let prefix = random_prefix(&mut rng);
        if !seen.insert(prefix) {
            continue;
        }
        let origin_as = synthetic_asn(&mut rng, config.as_count);
        prefixes.push((prefix, origin_as));
        let attrs = random_attrs(&mut rng, neighbor_as, origin_as, next_hop, config.as_count);
        table.push(UpdateMessage::announce(vec![prefix], &attrs));
    }

    let mut updates = Vec::with_capacity(config.update_count);
    let duration_ms = config.duration_secs * 1000;
    for i in 0..config.update_count {
        // Spread events uniformly over the window, with jitter.
        let base = if config.update_count <= 1 {
            0
        } else {
            duration_ms * i as u64 / config.update_count as u64
        };
        let at_ms = base + rng.gen_range(0..50);
        let (prefix, origin_as) = prefixes[rng.gen_range(0..prefixes.len())];
        let update = if rng.gen_range(0..100u8) < config.withdrawal_percent {
            UpdateMessage::withdraw(vec![prefix])
        } else {
            let attrs = random_attrs(&mut rng, neighbor_as, origin_as, next_hop, config.as_count);
            UpdateMessage::announce(vec![prefix], &attrs)
        };
        updates.push(TraceEvent { at_ms, update });
    }
    updates.sort_by_key(|e| e.at_ms);

    BgpTrace { table, updates }
}

/// Draws a prefix with a realistic length distribution: mostly /24s and
/// /16-/23s, few short prefixes, as in Internet routing tables.
fn random_prefix(rng: &mut StdRng) -> Ipv4Prefix {
    let len: u8 = match rng.gen_range(0..100u32) {
        0..=54 => 24,
        55..=69 => rng.gen_range(20..24),
        70..=84 => rng.gen_range(16..20),
        85..=94 => rng.gen_range(12..16),
        _ => rng.gen_range(8..12),
    };
    // Avoid private/reserved space so generated prefixes look like global
    // unicast and never collide with the testbed's own 10.0.0.0/8 links.
    let first_octet = rng.gen_range(1..=223u32);
    let first_octet = if first_octet == 10 { 11 } else { first_octet };
    let addr = (first_octet << 24) | rng.gen_range(0..(1u32 << 24));
    Ipv4Prefix::new(addr, len).expect("length is valid")
}

/// Draws a synthetic ASN from a range that cannot collide with the testbed
/// topology's ASNs, so replayed paths never trip the receiver's loop
/// detection.
fn synthetic_asn(rng: &mut StdRng, as_count: u32) -> u32 {
    100_000 + rng.gen_range(0..as_count)
}

fn random_attrs(
    rng: &mut StdRng,
    neighbor_as: u32,
    origin_as: u32,
    next_hop: Ipv4Addr,
    as_count: u32,
) -> RouteAttrs {
    let hops = rng.gen_range(1..5usize);
    let mut path = vec![neighbor_as];
    for _ in 0..hops {
        path.push(synthetic_asn(rng, as_count));
    }
    path.push(origin_as);
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence(path);
    attrs.next_hop = next_hop;
    if rng.gen_bool(0.3) {
        attrs.med = Some(rng.gen_range(0..200));
    }
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let cfg = TraceGenConfig {
            prefix_count: 500,
            update_count: 100,
            ..Default::default()
        };
        let trace = generate_trace(&cfg, 1299, Ipv4Addr::new(10, 0, 2, 1));
        assert_eq!(trace.table_size(), 500);
        assert_eq!(trace.update_count(), 100);
        assert!(trace.duration_ms() <= cfg.duration_secs * 1000 + 50);
    }

    #[test]
    fn trace_is_deterministic_for_seed() {
        let cfg = TraceGenConfig::tiny();
        let a = generate_trace(&cfg, 1299, Ipv4Addr::new(10, 0, 2, 1));
        let b = generate_trace(&cfg, 1299, Ipv4Addr::new(10, 0, 2, 1));
        assert_eq!(a.table, b.table);
        assert_eq!(a.updates, b.updates);
        let other = generate_trace(
            &TraceGenConfig { seed: 99, ..cfg },
            1299,
            Ipv4Addr::new(10, 0, 2, 1),
        );
        assert_ne!(a.table, other.table);
    }

    #[test]
    fn table_prefixes_are_unique_and_valid() {
        let cfg = TraceGenConfig {
            prefix_count: 1_000,
            update_count: 0,
            ..Default::default()
        };
        let trace = generate_trace(&cfg, 1299, Ipv4Addr::new(10, 0, 2, 1));
        let mut seen = std::collections::HashSet::new();
        for update in &trace.table {
            assert_eq!(update.nlri.len(), 1);
            let p = update.nlri[0];
            assert!(seen.insert(p), "duplicate prefix {p}");
            assert!(p.len() >= 8 && p.len() <= 24);
            // Generated prefixes avoid the testbed's 10.0.0.0/8.
            assert_ne!(p.addr() >> 24, 10);
            let attrs = update.route_attrs();
            assert_eq!(attrs.as_path.neighbor_as().map(|a| a.value()), Some(1299));
            assert!(attrs.as_path.length() >= 3);
        }
    }

    #[test]
    fn updates_are_chronological_and_mixed() {
        let cfg = TraceGenConfig {
            prefix_count: 300,
            update_count: 400,
            withdrawal_percent: 20,
            ..Default::default()
        };
        let trace = generate_trace(&cfg, 1299, Ipv4Addr::new(10, 0, 2, 1));
        let mut last = 0;
        let mut withdrawals = 0;
        for e in &trace.updates {
            assert!(e.at_ms >= last);
            last = e.at_ms;
            if !e.update.withdrawn.is_empty() {
                withdrawals += 1;
            }
        }
        assert!(
            withdrawals > 20,
            "expected a meaningful share of withdrawals, got {withdrawals}"
        );
        assert!(withdrawals < 200);
    }

    #[test]
    fn paper_scale_config_matches_paper() {
        let cfg = TraceGenConfig::paper_scale();
        assert_eq!(cfg.prefix_count, 319_355);
        assert_eq!(cfg.duration_secs, 900);
    }
}
