//! Wire-level replay ingestion: MRT-style update traces fed through the
//! real BGP codec.
//!
//! The paper's pitch is testing the *deployed* artifact — the byte format
//! routers actually emit — yet exploration inputs are born as in-memory
//! structs everywhere else in this codebase. This module closes that gap:
//!
//! * [`WireTrace`] is an MRT-style update-trace container — framed,
//!   timestamped, peer-tagged **raw BGP message bytes** — with a compact
//!   binary serialization ([`WireTrace::to_bytes`] /
//!   [`WireTrace::from_bytes`]) and a synthetic generator
//!   ([`synthesize_wire_trace`], since no CAIDA/RouteViews data ships
//!   offline);
//! * [`WireReplayDriver`] adapts a trace to the
//!   `FnMut(&mut Simulator, usize) -> bool` epoch-driver contract of
//!   `LiveOrchestrator::run`: each epoch it decodes the next stretch of
//!   frames **strictly through [`dice_bgp::wire::decode`]**, verifies the
//!   encode→decode→encode byte identity of every message, and injects the
//!   decoded messages into the [`Simulator`] — so every explored input has
//!   round-tripped the real RFC 4271 byte format;
//! * malformed frames never panic: every failure becomes a structured
//!   [`IngestError`] recorded in [`IngestStats::events`] (and counted), and
//!   replay continues with the next frame;
//! * decode throughput is metered ([`crate::ThroughputMeter`], folded in
//!   here rather than living as an orphan module) and surfaces as
//!   updates/s decoded through [`IngestStats`] — which a control plane can
//!   sample mid-run via the [`SharedIngestStats`] handle.

use std::fmt;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dice_bgp::error::BgpError;
use dice_bgp::message::{BgpMessage, UpdateMessage};
use dice_bgp::wire;
use dice_obs::Histogram;

use crate::metrics::ThroughputMeter;
use crate::sim::Simulator;
use crate::topology::NodeId;
use crate::trace::{generate_trace, TraceGenConfig};

/// Magic bytes opening a serialized [`WireTrace`].
pub const WIRE_TRACE_MAGIC: [u8; 8] = *b"DICEWIRE";
/// Serialization format version written by [`WireTrace::to_bytes`].
pub const WIRE_TRACE_VERSION: u16 = 1;

/// One framed trace entry: a raw BGP message as captured on the wire,
/// stamped with when it arrived and which peer of which node sent it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRecord {
    /// Milliseconds since the start of the trace.
    pub at_ms: u64,
    /// The node that received the message.
    pub node: NodeId,
    /// The address of the peer that sent it (resolved against the node's
    /// neighbor table at injection time, exactly like [`Simulator::inject`]).
    pub peer: Ipv4Addr,
    /// The raw message bytes, exactly as they appeared on the wire.
    pub bytes: Vec<u8>,
}

/// An MRT-style update-trace container: framed, timestamped, peer-tagged
/// raw BGP message bytes, in chronological order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireTrace {
    /// The framed records, in trace order.
    pub records: Vec<WireRecord>,
}

impl WireTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of framed records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns true when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Timestamp of the last record, in milliseconds (0 when empty).
    pub fn duration_ms(&self) -> u64 {
        self.records.last().map(|r| r.at_ms).unwrap_or(0)
    }

    /// Appends an already-framed raw message.
    pub fn push_raw(&mut self, at_ms: u64, node: NodeId, peer: Ipv4Addr, bytes: Vec<u8>) {
        self.records.push(WireRecord {
            at_ms,
            node,
            peer,
            bytes,
        });
    }

    /// Encodes a message through the real codec ([`wire::encode`]) and
    /// appends the resulting frame.
    pub fn push_message(&mut self, at_ms: u64, node: NodeId, peer: Ipv4Addr, msg: &BgpMessage) {
        self.push_raw(at_ms, node, peer, wire::encode(msg).to_vec());
    }

    /// Convenience for the dominant case: frames one UPDATE.
    pub fn push_update(
        &mut self,
        at_ms: u64,
        node: NodeId,
        peer: Ipv4Addr,
        update: &UpdateMessage,
    ) {
        self.push_message(at_ms, node, peer, &BgpMessage::Update(update.clone()));
    }

    /// Serializes the trace: magic, version, record count, then each
    /// record as `at_ms:u64 | node:u32 | peer:u32 | len:u16 | bytes`, all
    /// big-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload: usize = self.records.iter().map(|r| 18 + r.bytes.len()).sum();
        let mut out = Vec::with_capacity(14 + payload);
        out.extend_from_slice(&WIRE_TRACE_MAGIC);
        out.extend_from_slice(&WIRE_TRACE_VERSION.to_be_bytes());
        out.extend_from_slice(&(self.records.len() as u32).to_be_bytes());
        for r in &self.records {
            out.extend_from_slice(&r.at_ms.to_be_bytes());
            out.extend_from_slice(&(r.node.0 as u32).to_be_bytes());
            out.extend_from_slice(&u32::from(r.peer).to_be_bytes());
            out.extend_from_slice(&(r.bytes.len() as u16).to_be_bytes());
            out.extend_from_slice(&r.bytes);
        }
        out
    }

    /// Parses a serialized trace. Framing problems (bad magic, unsupported
    /// version, truncated records, frames longer than a BGP message can be)
    /// are reported as structured [`IngestError`]s; message *contents* are
    /// not validated here — that is the replay driver's job, per frame.
    pub fn from_bytes(buf: &[u8]) -> Result<WireTrace, IngestError> {
        let take = |offset: &mut usize, n: usize| -> Result<usize, IngestError> {
            if buf.len() < *offset + n {
                return Err(IngestError::TruncatedTrace {
                    offset: *offset,
                    needed: n,
                    available: buf.len() - *offset,
                });
            }
            let at = *offset;
            *offset += n;
            Ok(at)
        };
        let mut offset = 0usize;
        let at = take(&mut offset, 8)?;
        if buf[at..at + 8] != WIRE_TRACE_MAGIC {
            return Err(IngestError::BadMagic);
        }
        let at = take(&mut offset, 2)?;
        let version = u16::from_be_bytes([buf[at], buf[at + 1]]);
        if version != WIRE_TRACE_VERSION {
            return Err(IngestError::UnsupportedVersion(version));
        }
        let at = take(&mut offset, 4)?;
        let count = u32::from_be_bytes(buf[at..at + 4].try_into().expect("4 bytes")) as usize;
        let mut records = Vec::with_capacity(count.min(1 << 16));
        for record in 0..count {
            let at = take(&mut offset, 18)?;
            let at_ms = u64::from_be_bytes(buf[at..at + 8].try_into().expect("8 bytes"));
            let node = u32::from_be_bytes(buf[at + 8..at + 12].try_into().expect("4 bytes"));
            let peer = u32::from_be_bytes(buf[at + 12..at + 16].try_into().expect("4 bytes"));
            let len = u16::from_be_bytes([buf[at + 16], buf[at + 17]]) as usize;
            if len > wire::MAX_MESSAGE_LEN {
                return Err(IngestError::OversizedFrame {
                    record,
                    declared: len,
                });
            }
            let at = take(&mut offset, len)?;
            records.push(WireRecord {
                at_ms,
                node: NodeId(node as usize),
                peer: Ipv4Addr::from(peer),
                bytes: buf[at..at + len].to_vec(),
            });
        }
        Ok(WireTrace { records })
    }
}

/// Generates a synthetic wire trace: the synthetic RouteViews-like trace
/// of [`generate_trace`] (table dump at `t=0`, then timestamped
/// incremental updates), every message encoded through the real codec and
/// framed as received by `node` from the peer at `peer_addr` (whose AS is
/// `neighbor_as`).
pub fn synthesize_wire_trace(
    config: &TraceGenConfig,
    node: NodeId,
    neighbor_as: u32,
    peer_addr: Ipv4Addr,
) -> WireTrace {
    let trace = generate_trace(config, neighbor_as, peer_addr);
    let mut out = WireTrace::new();
    for update in &trace.table {
        out.push_update(0, node, peer_addr, update);
    }
    for event in &trace.updates {
        out.push_update(event.at_ms, node, peer_addr, &event.update);
    }
    out
}

/// A structured ingestion failure — surfaced as a trace event (recorded
/// and counted in [`IngestStats`]), never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The serialized trace does not start with [`WIRE_TRACE_MAGIC`].
    BadMagic,
    /// The serialized trace declares a format version this build cannot
    /// read.
    UnsupportedVersion(u16),
    /// The serialized trace ends mid-header or mid-frame.
    TruncatedTrace {
        /// Byte offset at which the shortfall was discovered.
        offset: usize,
        /// Bytes the parser needed at that offset.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// A frame declares a length beyond [`wire::MAX_MESSAGE_LEN`].
    OversizedFrame {
        /// Index of the offending record.
        record: usize,
        /// The declared frame length.
        declared: usize,
    },
    /// A frame's bytes failed [`wire::decode`] — truncated message, bad
    /// marker, unknown attribute flags, malformed lengths, ...
    Decode {
        /// Index of the offending record.
        record: usize,
        /// The codec's verdict.
        error: BgpError,
    },
    /// A frame holds more bytes than the one message it frames.
    TrailingBytes {
        /// Index of the offending record.
        record: usize,
        /// Bytes left over after the decoded message.
        extra: usize,
    },
    /// The frame decoded, but re-encoding the message did not reproduce
    /// the frame byte-for-byte — the capture is not in canonical form.
    ReencodeMismatch {
        /// Index of the offending record.
        record: usize,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::BadMagic => write!(f, "bad trace magic"),
            IngestError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            IngestError::TruncatedTrace {
                offset,
                needed,
                available,
            } => write!(
                f,
                "truncated trace at offset {offset}: need {needed} bytes, have {available}"
            ),
            IngestError::OversizedFrame { record, declared } => {
                write!(f, "record {record}: oversized frame ({declared} bytes)")
            }
            IngestError::Decode { record, error } => {
                write!(f, "record {record}: decode failed: {error}")
            }
            IngestError::TrailingBytes { record, extra } => {
                write!(f, "record {record}: {extra} trailing byte(s) after message")
            }
            IngestError::ReencodeMismatch { record } => {
                write!(f, "record {record}: re-encoded bytes differ from frame")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Counters and events accumulated by a [`WireReplayDriver`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestStats {
    /// Frames pulled from the trace.
    pub frames: u64,
    /// Messages that decoded and passed the byte-identity check.
    pub decoded: u64,
    /// Decoded UPDATE messages injected into the simulator.
    pub injected_updates: u64,
    /// Frames rejected by [`wire::decode`] (or with trailing bytes).
    pub decode_errors: u64,
    /// Frames whose re-encoding differed from the captured bytes.
    pub reencode_mismatches: u64,
    /// Raw bytes consumed from the trace.
    pub bytes_consumed: u64,
    /// Decode throughput: updates/s through the wire codec.
    pub meter: ThroughputMeter,
    /// Distribution of per-epoch frame-decode time (nanoseconds): one
    /// sample per `drive` call, covering the codec loop only.
    pub decode_time: Histogram,
    /// Every structured failure, in frame order.
    pub events: Vec<IngestError>,
}

impl IngestStats {
    /// Updates decoded per second of codec time (0 before any work).
    pub fn updates_per_second(&self) -> f64 {
        self.meter.updates_per_second()
    }

    /// Total failures of any class.
    pub fn error_count(&self) -> usize {
        self.events.len()
    }
}

/// A clone-cheap, thread-shareable handle on one driver's [`IngestStats`]
/// — what a control plane samples mid-run while the driver keeps
/// ingesting.
#[derive(Debug, Clone, Default)]
pub struct SharedIngestStats {
    inner: Arc<Mutex<IngestStats>>,
}

impl SharedIngestStats {
    /// Creates a handle around zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IngestStats {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    fn with<R>(&self, f: impl FnOnce(&mut IngestStats) -> R) -> R {
        let mut guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        f(&mut guard)
    }
}

/// How a [`WireReplayDriver`] slices its trace into driver epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EpochSplit {
    /// Deliver everything on the first epoch.
    AllAtOnce,
    /// Deliver at most this many frames per epoch.
    ByCount(usize),
    /// Deliver frames whose timestamp falls inside successive windows of
    /// this many milliseconds.
    ByTime(u64),
}

/// Replays a [`WireTrace`] into a [`Simulator`], one epoch at a time,
/// decoding every frame through [`wire::decode`].
///
/// [`WireReplayDriver::drive`] matches the driver contract of
/// `LiveOrchestrator::run` — pass `|sim, epoch| driver.drive(sim, epoch)`
/// — so a live exploration run can be fed *entirely* from wire bytes: no
/// in-memory `UpdateMessage` ever enters the simulator without having
/// round-tripped the real byte format (each frame is checked
/// encode→decode→encode byte-identical; non-canonical frames are counted,
/// recorded and skipped rather than injected).
#[derive(Debug)]
pub struct WireReplayDriver {
    records: Vec<WireRecord>,
    cursor: usize,
    split: EpochSplit,
    window_end_ms: u64,
    stats: SharedIngestStats,
}

impl WireReplayDriver {
    /// Creates a driver that delivers the whole trace on its first epoch.
    pub fn new(trace: WireTrace) -> Self {
        WireReplayDriver {
            records: trace.records,
            cursor: 0,
            split: EpochSplit::AllAtOnce,
            window_end_ms: 0,
            stats: SharedIngestStats::new(),
        }
    }

    /// Delivers at most `n` frames per epoch (clamped to at least 1).
    pub fn with_frames_per_epoch(mut self, n: usize) -> Self {
        self.split = EpochSplit::ByCount(n.max(1));
        self
    }

    /// Delivers, each epoch, the frames whose timestamps fall in the next
    /// `ms`-millisecond window (clamped to at least 1 ms) — replaying the
    /// trace on its own timeline, one window per driver epoch.
    pub fn with_epoch_ms(mut self, ms: u64) -> Self {
        self.split = EpochSplit::ByTime(ms.max(1));
        self
    }

    /// The shared counters handle; clone it into a control plane to sample
    /// ingest progress mid-run.
    pub fn stats(&self) -> SharedIngestStats {
        self.stats.clone()
    }

    /// Frames not yet delivered.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.cursor
    }

    /// Delivers the next epoch's frames: decode each through the real
    /// codec, verify byte identity, inject into the simulator. Returns
    /// whether more frames remain — the `LiveOrchestrator` driver
    /// contract. Failures are recorded in [`IngestStats::events`]; the
    /// frame is skipped and replay continues.
    pub fn drive(&mut self, sim: &mut Simulator, _epoch: usize) -> bool {
        let mut span = dice_obs::span("netsim", "ingest.drive");
        let end = match self.split {
            EpochSplit::AllAtOnce => self.records.len(),
            EpochSplit::ByCount(n) => self.records.len().min(self.cursor + n),
            EpochSplit::ByTime(ms) => {
                self.window_end_ms += ms;
                let deadline = self.window_end_ms;
                let mut end = self.cursor;
                while end < self.records.len() && self.records[end].at_ms < deadline {
                    end += 1;
                }
                end
            }
        };

        let started = Instant::now();
        let mut batch = IngestStats::default();
        let mut injections: Vec<(NodeId, Ipv4Addr, BgpMessage)> = Vec::new();
        for index in self.cursor..end {
            let record = &self.records[index];
            batch.frames += 1;
            batch.bytes_consumed += record.bytes.len() as u64;
            match wire::decode(&record.bytes) {
                Err(error) => {
                    batch.decode_errors += 1;
                    batch.events.push(IngestError::Decode {
                        record: index,
                        error,
                    });
                }
                Ok((msg, used)) if used != record.bytes.len() => {
                    batch.decode_errors += 1;
                    batch.events.push(IngestError::TrailingBytes {
                        record: index,
                        extra: record.bytes.len() - used,
                    });
                    let _ = msg;
                }
                Ok((msg, _)) => {
                    if wire::encode(&msg)[..] != record.bytes[..] {
                        batch.reencode_mismatches += 1;
                        batch
                            .events
                            .push(IngestError::ReencodeMismatch { record: index });
                        continue;
                    }
                    batch.decoded += 1;
                    if matches!(msg, BgpMessage::Update(_)) {
                        batch.injected_updates += 1;
                    }
                    injections.push((record.node, record.peer, msg));
                }
            }
        }
        let decode_elapsed = started.elapsed();
        batch.meter.record(batch.decoded, decode_elapsed);
        batch.decode_time.record_duration(decode_elapsed);
        span.set_detail(batch.frames);
        self.cursor = end;

        for (node, peer, msg) in injections {
            sim.inject(node, peer, msg);
        }
        self.stats.with(|stats| {
            stats.frames += batch.frames;
            stats.decoded += batch.decoded;
            stats.injected_updates += batch.injected_updates;
            stats.decode_errors += batch.decode_errors;
            stats.reencode_mismatches += batch.reencode_mismatches;
            stats.bytes_consumed += batch.bytes_consumed;
            stats.meter.merge(&batch.meter);
            stats.decode_time.merge(&batch.decode_time);
            stats.events.extend(batch.events);
        });
        self.cursor < self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{addr, asn, figure2_topology, CustomerFilterMode};
    use dice_bgp::attributes::RouteAttrs;
    use dice_bgp::AsPath;

    fn announcement(prefix: &str, path: &[u32], next_hop: Ipv4Addr) -> BgpMessage {
        let mut attrs = RouteAttrs::default();
        attrs.as_path = AsPath::from_sequence(path.iter().copied());
        attrs.next_hop = next_hop;
        BgpMessage::Update(UpdateMessage::announce(
            vec![prefix.parse().expect("valid")],
            &attrs,
        ))
    }

    fn sample_trace(provider: NodeId) -> WireTrace {
        let mut trace = WireTrace::new();
        trace.push_message(
            0,
            provider,
            addr::INTERNET,
            &announcement(
                "208.65.152.0/22",
                &[asn::INTERNET, 3356, asn::VICTIM],
                addr::INTERNET,
            ),
        );
        trace.push_message(
            1000,
            provider,
            addr::CUSTOMER,
            &announcement(
                "41.1.0.0/16",
                &[asn::CUSTOMER, asn::CUSTOMER],
                addr::CUSTOMER,
            ),
        );
        trace
    }

    #[test]
    fn serialization_roundtrips_byte_identically() {
        let trace = sample_trace(NodeId(1));
        let bytes = trace.to_bytes();
        let parsed = WireTrace::from_bytes(&bytes).expect("parses");
        assert_eq!(parsed, trace);
        assert_eq!(parsed.to_bytes(), bytes);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert_eq!(trace.duration_ms(), 1000);
        let empty = WireTrace::new();
        assert_eq!(
            WireTrace::from_bytes(&empty.to_bytes()).expect("parses"),
            empty
        );
    }

    #[test]
    fn framing_errors_are_structured() {
        let trace = sample_trace(NodeId(1));
        let bytes = trace.to_bytes();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            WireTrace::from_bytes(&bad_magic),
            Err(IngestError::BadMagic)
        );

        let mut bad_version = bytes.clone();
        bad_version[9] = 99;
        assert_eq!(
            WireTrace::from_bytes(&bad_version),
            Err(IngestError::UnsupportedVersion(99))
        );

        let truncated = &bytes[..bytes.len() - 3];
        assert!(matches!(
            WireTrace::from_bytes(truncated),
            Err(IngestError::TruncatedTrace { .. })
        ));

        // Oversize the first record's declared frame length.
        let mut oversized = bytes.clone();
        oversized[30] = 0xff;
        oversized[31] = 0xff;
        assert!(matches!(
            WireTrace::from_bytes(&oversized),
            Err(IngestError::OversizedFrame { record: 0, .. })
        ));
        assert!(IngestError::BadMagic.to_string().contains("magic"));
    }

    #[test]
    fn replay_decodes_through_the_codec_and_matches_in_memory_delivery() {
        let topo = figure2_topology(CustomerFilterMode::Erroneous);
        let provider = topo.node_by_name("Provider").expect("node");

        // Wire path: raw bytes through decode.
        let mut wire_sim = Simulator::new(&topo);
        let mut driver = WireReplayDriver::new(sample_trace(provider)).with_frames_per_epoch(1);
        let stats = driver.stats();
        assert!(driver.drive(&mut wire_sim, 0), "one frame left");
        wire_sim.run_to_quiescence(100);
        assert!(!driver.drive(&mut wire_sim, 1), "trace exhausted");
        wire_sim.run_to_quiescence(100);
        assert_eq!(driver.remaining(), 0);

        // In-memory path: the same messages as structs.
        let mut mem_sim = Simulator::new(&topo);
        mem_sim.inject(
            provider,
            addr::INTERNET,
            announcement(
                "208.65.152.0/22",
                &[asn::INTERNET, 3356, asn::VICTIM],
                addr::INTERNET,
            ),
        );
        mem_sim.run_to_quiescence(100);
        mem_sim.inject(
            provider,
            addr::CUSTOMER,
            announcement(
                "41.1.0.0/16",
                &[asn::CUSTOMER, asn::CUSTOMER],
                addr::CUSTOMER,
            ),
        );
        mem_sim.run_to_quiescence(100);

        assert_eq!(
            format!("{:?}", wire_sim.observed_log()),
            format!("{:?}", mem_sim.observed_log()),
            "wire replay must reproduce the in-memory delivery log"
        );
        let s = stats.snapshot();
        assert_eq!(s.frames, 2);
        assert_eq!(s.decoded, 2);
        assert_eq!(s.injected_updates, 2);
        assert_eq!(s.decode_errors, 0);
        assert_eq!(s.reencode_mismatches, 0);
        assert!(s.bytes_consumed > 0);
        assert!(s.events.is_empty());
    }

    #[test]
    fn malformed_frames_become_events_not_panics() {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let provider = topo.node_by_name("Provider").expect("node");
        let mut trace = sample_trace(provider);
        // Corrupt the second frame's marker.
        trace.records[1].bytes[3] = 0;
        // A frame with trailing garbage after a valid message.
        let mut padded = wire::encode(&announcement(
            "41.2.0.0/16",
            &[asn::CUSTOMER, asn::CUSTOMER],
            addr::CUSTOMER,
        ))
        .to_vec();
        padded.push(0xAB);
        trace.push_raw(2000, provider, addr::CUSTOMER, padded);

        let mut sim = Simulator::new(&topo);
        let mut driver = WireReplayDriver::new(trace);
        assert!(!driver.drive(&mut sim, 0));
        sim.run_to_quiescence(100);

        let s = driver.stats().snapshot();
        assert_eq!(s.frames, 3);
        assert_eq!(s.decoded, 1, "only the intact frame is injected");
        assert_eq!(s.decode_errors, 2);
        assert_eq!(s.events.len(), 2);
        assert!(matches!(
            s.events[0],
            IngestError::Decode {
                record: 1,
                error: BgpError::BadMarker
            }
        ));
        assert!(matches!(
            s.events[1],
            IngestError::TrailingBytes {
                record: 2,
                extra: 1
            }
        ));
        assert!(s.events[1].to_string().contains("trailing"));
    }

    #[test]
    fn time_sliced_replay_follows_the_trace_timeline() {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let provider = topo.node_by_name("Provider").expect("node");
        let mut sim = Simulator::new(&topo);
        let mut driver = WireReplayDriver::new(sample_trace(provider)).with_epoch_ms(600);
        // Window [0, 600): only the t=0 frame.
        assert!(driver.drive(&mut sim, 0));
        assert_eq!(driver.remaining(), 1);
        // Window [600, 1200): the t=1000 frame.
        assert!(!driver.drive(&mut sim, 1));
        assert_eq!(driver.remaining(), 0);
        assert_eq!(driver.stats().snapshot().frames, 2);
    }

    #[test]
    fn synthesized_traces_replay_cleanly_and_meter_throughput() {
        let config = TraceGenConfig {
            prefix_count: 40,
            update_count: 20,
            ..Default::default()
        };
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let provider = topo.node_by_name("Provider").expect("node");
        let trace = synthesize_wire_trace(&config, provider, asn::INTERNET, addr::INTERNET);
        assert_eq!(trace.len(), 60);
        // Deterministic for a seed, and every frame is canonical codec
        // output.
        assert_eq!(
            trace,
            synthesize_wire_trace(&config, provider, asn::INTERNET, addr::INTERNET)
        );

        let mut sim = Simulator::new(&topo);
        let mut driver = WireReplayDriver::new(trace);
        assert!(!driver.drive(&mut sim, 0));
        sim.run_to_quiescence(1000);
        let s = driver.stats().snapshot();
        assert_eq!(s.frames, 60);
        assert_eq!(s.decoded, 60);
        assert_eq!(s.decode_errors, 0);
        assert_eq!(s.reencode_mismatches, 0);
        assert!(
            s.updates_per_second() > 0.0,
            "the folded-in throughput meter reports decode rate"
        );
        assert!(sim.router(provider).rib().prefix_count() > 0);
    }
}
