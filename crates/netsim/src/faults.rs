//! Deterministic, seeded fault injection for the simulator.
//!
//! The paper's testbed only ever exercised the happy path: links stay up,
//! sessions stay established, and every message is delivered exactly once,
//! in order. Real control planes misbehave precisely when those assumptions
//! break, so this module makes the breakage itself an exploration dimension:
//! a [`FaultPlan`] schedules link flaps and session resets by *epoch* and
//! arms per-link message drop/duplicate/reorder probabilities driven by a
//! seeded RNG. The [`Simulator`](crate::Simulator) consults the plan at
//! enqueue and delivery time, and every injected event is recorded in a
//! [`FaultTrace`] — so any run is replayable byte-for-byte from
//! `(plan, seed)` alone.

use std::collections::BTreeSet;
use std::fmt;
use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dice_bgp::route::PeerId;

use crate::topology::NodeId;

/// One scheduled or probabilistic fault class in a [`FaultPlan`].
///
/// Links are undirected: a spec naming `(a, b)` applies to traffic in both
/// directions between the two nodes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultSpec {
    /// The link between `a` and `b` goes down at the start of `down_epoch`
    /// and comes back up at the start of `up_epoch`. While down, messages
    /// enqueued on or already in flight across the link are lost.
    LinkFlap {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Epoch at whose start the link goes down.
        down_epoch: u64,
        /// Epoch at whose start the link comes back up.
        up_epoch: u64,
    },
    /// The BGP session between `a` and `b` resets at the start of `epoch`:
    /// both sides tear their FSM down, flush every route learned from the
    /// other with withdrawals to their remaining peers (RFC 4271 table
    /// semantics), and then re-establish. Withdrawn routes do not
    /// re-announce by themselves — the perturbation persists until live
    /// traffic re-learns them.
    SessionReset {
        /// One endpoint of the session.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Epoch at whose start the reset fires.
        epoch: u64,
    },
    /// Every message crossing the link is dropped with probability
    /// `probability`, decided per message by the plan's seeded RNG.
    MessageDrop {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Per-message drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Every message crossing the link is duplicated (delivered twice, at
    /// the same tick) with probability `probability`.
    MessageDuplicate {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Per-message duplication probability in `[0, 1]`.
        probability: f64,
    },
    /// Every message crossing the link is delayed by an extra
    /// `1..=max_extra_ticks` ticks with probability `probability`,
    /// reordering it behind traffic enqueued later.
    MessageReorder {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// Per-message delay probability in `[0, 1]`.
        probability: f64,
        /// Upper bound on the extra delay, in ticks (at least 1).
        max_extra_ticks: u64,
    },
    /// At the start of `epoch`, every link between the named node set and
    /// the rest of the topology is severed *atomically*: all boundary links
    /// go down first (so no withdrawal leaks across a link that is itself
    /// being severed), then each severed link gets session-reset semantics —
    /// both sides flush the routes learned from the other and re-establish
    /// their (now inert) FSM. The partition persists until a matching
    /// [`FaultSpec::Heal`] restores the links.
    Partition {
        /// The node set to cut off from everything outside it.
        nodes: Vec<NodeId>,
        /// Epoch at whose start the partition fires.
        epoch: u64,
    },
    /// At the start of `epoch`, every severed boundary link of the named
    /// node set comes back up. Withdrawn routes do not re-announce by
    /// themselves — only live traffic re-learns them, which is exactly the
    /// divergence window the wedgie checker watches.
    Heal {
        /// The node set whose boundary links to restore.
        nodes: Vec<NodeId>,
        /// Epoch at whose start the heal fires.
        epoch: u64,
    },
}

impl FaultSpec {
    /// The undirected link the spec applies to, normalized so `(a, b)` and
    /// `(b, a)` compare equal. `None` for the multi-link variants
    /// ([`FaultSpec::Partition`] / [`FaultSpec::Heal`]), whose affected
    /// links depend on the topology.
    pub fn link(&self) -> Option<(NodeId, NodeId)> {
        let (a, b) = match *self {
            FaultSpec::LinkFlap { a, b, .. }
            | FaultSpec::SessionReset { a, b, .. }
            | FaultSpec::MessageDrop { a, b, .. }
            | FaultSpec::MessageDuplicate { a, b, .. }
            | FaultSpec::MessageReorder { a, b, .. } => (a, b),
            FaultSpec::Partition { .. } | FaultSpec::Heal { .. } => return None,
        };
        Some(normalize_link(a, b))
    }
}

/// Normalizes an undirected node pair to `(min, max)` order.
pub(crate) fn normalize_link(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

/// A deterministic schedule of faults: an ordered list of [`FaultSpec`]s
/// plus the seed for the probabilistic ones. The default plan is empty and
/// injects nothing — a simulator running under it behaves byte-identically
/// to one with no plan at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan whose probabilistic faults (if any are added) draw
    /// from an RNG seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Adds a fault spec. Specs are consulted in insertion order, which is
    /// part of the replay contract: the same plan always draws the RNG in
    /// the same sequence.
    pub fn with_spec(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// The RNG seed for probabilistic specs.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled specs, in consultation order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Why a message or injection could not be delivered: the structured form
/// of what used to be a bare `undeliverable` counter bump.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeliveryError {
    /// [`Simulator::inject`](crate::Simulator::inject) named a source
    /// address the receiving node has no peer configured for.
    UnknownSourceAddress {
        /// The node the injection targeted.
        node: NodeId,
        /// The unrecognized source address.
        address: Ipv4Addr,
    },
    /// A sending node emitted a message for a peer id it has no entry for.
    UnknownPeer {
        /// The sending node.
        node: NodeId,
        /// The unknown peer id.
        peer: PeerId,
    },
    /// The peer's configured address matches no router in the topology.
    UnresolvedPeerAddress {
        /// The sending node.
        node: NodeId,
        /// The peer whose address failed to resolve.
        peer: PeerId,
        /// The address with no matching router.
        address: Ipv4Addr,
    },
    /// The destination router has no reverse peer entry for the sender's
    /// router id — a one-way peering misconfiguration.
    NoReturnPeer {
        /// The sending node.
        node: NodeId,
        /// The resolved destination node.
        to_node: NodeId,
        /// The sender's router id the destination does not know.
        sender: Ipv4Addr,
    },
}

impl fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliveryError::UnknownSourceAddress { node, address } => {
                write!(
                    f,
                    "unknown source address {address} injected at node{}",
                    node.0
                )
            }
            DeliveryError::UnknownPeer { node, peer } => {
                write!(f, "node{} sent to unknown peer {}", node.0, peer.0)
            }
            DeliveryError::UnresolvedPeerAddress {
                node,
                peer,
                address,
            } => write!(
                f,
                "node{} peer {} address {address} matches no router",
                node.0, peer.0
            ),
            DeliveryError::NoReturnPeer {
                node,
                to_node,
                sender,
            } => write!(
                f,
                "node{} has no peer entry for sender {sender} (from node{})",
                to_node.0, node.0
            ),
        }
    }
}

/// One event injected (or diagnosed) by the fault layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InjectedFaultKind {
    /// A link went down at the start of an epoch.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The epoch whose start brought the link down.
        epoch: u64,
    },
    /// A link came back up at the start of an epoch.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The epoch whose start brought the link up.
        epoch: u64,
    },
    /// A session reset fired: both sides flushed the routes learned from
    /// the other and re-established.
    SessionReset {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The epoch whose start fired the reset.
        epoch: u64,
        /// Total prefixes flushed across both sides.
        withdrawn_routes: usize,
    },
    /// A partition fired: every boundary link of the node set was severed
    /// atomically, each with session-reset semantics.
    PartitionSevered {
        /// The partitioned node set, sorted and deduplicated.
        nodes: Vec<NodeId>,
        /// The epoch whose start fired the partition.
        epoch: u64,
        /// Number of boundary links severed.
        links: usize,
    },
    /// A heal fired: the node set's severed boundary links came back up.
    PartitionHealed {
        /// The healed node set, sorted and deduplicated.
        nodes: Vec<NodeId>,
        /// The epoch whose start fired the heal.
        epoch: u64,
        /// Number of boundary links restored.
        links: usize,
    },
    /// A message crossing a link was dropped.
    MessageDropped {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// True when the drop was caused by a down link rather than a
        /// probabilistic [`FaultSpec::MessageDrop`].
        link_down: bool,
    },
    /// A message was duplicated: one extra copy was enqueued.
    MessageDuplicated {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
    /// A message was delayed by `extra_ticks` beyond the link delay,
    /// reordering it behind later traffic.
    MessageDelayed {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Extra ticks added on top of the link delay.
        extra_ticks: u64,
    },
    /// A delivery failed for a structural reason (not an injected fault):
    /// the diagnosable form of the `undeliverable` counter.
    DeliveryError(DeliveryError),
}

impl fmt::Display for InjectedFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectedFaultKind::LinkDown { a, b, epoch } => {
                write!(f, "link-down node{}<->node{} epoch={epoch}", a.0, b.0)
            }
            InjectedFaultKind::LinkUp { a, b, epoch } => {
                write!(f, "link-up node{}<->node{} epoch={epoch}", a.0, b.0)
            }
            InjectedFaultKind::SessionReset {
                a,
                b,
                epoch,
                withdrawn_routes,
            } => write!(
                f,
                "session-reset node{}<->node{} epoch={epoch} withdrawn={withdrawn_routes}",
                a.0, b.0
            ),
            InjectedFaultKind::PartitionSevered {
                nodes,
                epoch,
                links,
            } => write!(
                f,
                "partition-severed nodes=[{}] epoch={epoch} links={links}",
                render_nodes(nodes)
            ),
            InjectedFaultKind::PartitionHealed {
                nodes,
                epoch,
                links,
            } => write!(
                f,
                "partition-healed nodes=[{}] epoch={epoch} links={links}",
                render_nodes(nodes)
            ),
            InjectedFaultKind::MessageDropped {
                from,
                to,
                link_down,
            } => write!(
                f,
                "msg-dropped node{}->node{}{}",
                from.0,
                to.0,
                if *link_down { " (link down)" } else { "" }
            ),
            InjectedFaultKind::MessageDuplicated { from, to } => {
                write!(f, "msg-duplicated node{}->node{}", from.0, to.0)
            }
            InjectedFaultKind::MessageDelayed {
                from,
                to,
                extra_ticks,
            } => write!(
                f,
                "msg-delayed node{}->node{} extra={extra_ticks}",
                from.0, to.0
            ),
            InjectedFaultKind::DeliveryError(err) => write!(f, "delivery-error {err}"),
        }
    }
}

/// Renders a node set as a comma-separated id list for trace lines.
fn render_nodes(nodes: &[NodeId]) -> String {
    let ids: Vec<String> = nodes.iter().map(|n| n.0.to_string()).collect();
    ids.join(",")
}

/// One timestamped entry in the [`FaultTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Virtual time (ticks) at which the event happened.
    pub at: u64,
    /// What happened.
    pub kind: InjectedFaultKind,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{} {}", self.at, self.kind)
    }
}

/// The ordered record of every event the fault layer injected or diagnosed
/// during a run. Two runs of the same topology, driver, and `(plan, seed)`
/// produce byte-identical traces — the replay anchor the determinism
/// proptests assert.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultTrace {
    events: Vec<InjectedFault>,
}

impl FaultTrace {
    /// All recorded events, in injection order.
    pub fn events(&self) -> &[InjectedFault] {
        &self.events
    }

    /// Total number of recorded events (injected faults plus delivery
    /// errors).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of *injected* faults: every event except structural
    /// [`InjectedFaultKind::DeliveryError`]s, which diagnose the topology
    /// rather than perturb it.
    pub fn injected_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| !matches!(e.kind, InjectedFaultKind::DeliveryError(_)))
            .count()
    }

    /// Number of recorded structural delivery errors.
    pub fn delivery_error_count(&self) -> usize {
        self.events.len() - self.injected_count()
    }

    /// A canonical one-line-per-event rendering, stable across runs of the
    /// same `(plan, seed)` — the byte-identity anchor for replay tests.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }

    /// FNV-1a 64-bit fingerprint of [`FaultTrace::digest`], `0` for an
    /// empty trace. Two runs with equal injected *counts* but different
    /// event sequences get different fingerprints, which is what the
    /// control plane exports so such runs stay distinguishable.
    pub fn fingerprint(&self) -> u64 {
        if self.events.is_empty() {
            return 0;
        }
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.digest().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Runtime state the simulator keeps per installed plan: the seeded RNG,
/// the set of currently-down links, and the trace.
#[derive(Debug, Clone)]
pub(crate) struct FaultRuntime {
    plan: FaultPlan,
    rng: StdRng,
    down_links: BTreeSet<(usize, usize)>,
    trace: FaultTrace,
}

/// What the fault layer decided about one outbound message. The trace
/// entry recorded alongside distinguishes *why* a message dropped.
pub(crate) enum EnqueueVerdict {
    /// Drop the message.
    Drop,
    /// Enqueue one copy per entry, each with the given extra delay in
    /// ticks. `vec![0]` is an unperturbed delivery.
    Deliver {
        /// Extra delay per enqueued copy.
        extra_delays: Vec<u64>,
    },
}

impl FaultRuntime {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed());
        FaultRuntime {
            plan,
            rng,
            down_links: BTreeSet::new(),
            trace: FaultTrace::default(),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn trace(&self) -> &FaultTrace {
        &self.trace
    }

    pub(crate) fn record(&mut self, at: u64, kind: InjectedFaultKind) {
        self.trace.events.push(InjectedFault { at, kind });
    }

    pub(crate) fn link_is_down(&self, a: NodeId, b: NodeId) -> bool {
        let (a, b) = normalize_link(a, b);
        self.down_links.contains(&(a.0, b.0))
    }

    /// Applies the link-state transitions scheduled for the start of
    /// `epoch`, recording each. Session resets are the simulator's job
    /// (they need router access); it queries the plan directly.
    pub(crate) fn apply_link_epoch(&mut self, epoch: u64, now: u64) {
        let mut transitions = Vec::new();
        for spec in self.plan.specs() {
            if let FaultSpec::LinkFlap {
                a,
                b,
                down_epoch,
                up_epoch,
            } = *spec
            {
                let (a, b) = normalize_link(a, b);
                if down_epoch == epoch {
                    transitions.push((a, b, true));
                }
                if up_epoch == epoch {
                    transitions.push((a, b, false));
                }
            }
        }
        for (a, b, down) in transitions {
            if down {
                if self.down_links.insert((a.0, b.0)) {
                    self.record(now, InjectedFaultKind::LinkDown { a, b, epoch });
                }
            } else if self.down_links.remove(&(a.0, b.0)) {
                self.record(now, InjectedFaultKind::LinkUp { a, b, epoch });
            }
        }
    }

    /// Marks one boundary link of a partition as down, recording a
    /// [`InjectedFaultKind::LinkDown`] if it was up. Returns true when the
    /// link actually transitioned (the caller applies session-reset
    /// semantics only to links it severed itself).
    pub(crate) fn sever_link(&mut self, a: NodeId, b: NodeId, epoch: u64, now: u64) -> bool {
        let (a, b) = normalize_link(a, b);
        if self.down_links.insert((a.0, b.0)) {
            self.record(now, InjectedFaultKind::LinkDown { a, b, epoch });
            return true;
        }
        false
    }

    /// Restores one boundary link of a healed partition, recording a
    /// [`InjectedFaultKind::LinkUp`] if it was down. Returns true when the
    /// link actually transitioned.
    pub(crate) fn restore_link(&mut self, a: NodeId, b: NodeId, epoch: u64, now: u64) -> bool {
        let (a, b) = normalize_link(a, b);
        if self.down_links.remove(&(a.0, b.0)) {
            self.record(now, InjectedFaultKind::LinkUp { a, b, epoch });
            return true;
        }
        false
    }

    /// Decides the fate of one message about to be enqueued from `from` to
    /// `to`, drawing the RNG in spec order (the replay contract) and
    /// recording every perturbation.
    pub(crate) fn on_enqueue(&mut self, from: NodeId, to: NodeId, now: u64) -> EnqueueVerdict {
        if self.link_is_down(from, to) {
            self.record(
                now,
                InjectedFaultKind::MessageDropped {
                    from,
                    to,
                    link_down: true,
                },
            );
            return EnqueueVerdict::Drop;
        }
        let link = normalize_link(from, to);
        let mut extra_delays = vec![0u64];
        // Collect matching probabilistic specs first: drawing the RNG while
        // iterating would borrow `self.plan` and `self.rng` at once.
        let specs: Vec<FaultSpec> = self
            .plan
            .specs()
            .iter()
            .filter(|s| s.link() == Some(link))
            .cloned()
            .collect();
        for spec in specs {
            // Each guard draws the RNG exactly once for its spec, keeping
            // the spec-order replay contract intact.
            match spec {
                FaultSpec::MessageDrop { probability, .. }
                    if self.rng.gen_bool(probability.clamp(0.0, 1.0)) =>
                {
                    self.record(
                        now,
                        InjectedFaultKind::MessageDropped {
                            from,
                            to,
                            link_down: false,
                        },
                    );
                    return EnqueueVerdict::Drop;
                }
                FaultSpec::MessageDuplicate { probability, .. }
                    if self.rng.gen_bool(probability.clamp(0.0, 1.0)) =>
                {
                    extra_delays.push(0);
                    self.record(now, InjectedFaultKind::MessageDuplicated { from, to });
                }
                FaultSpec::MessageReorder {
                    probability,
                    max_extra_ticks,
                    ..
                } if self.rng.gen_bool(probability.clamp(0.0, 1.0)) => {
                    let extra = self.rng.gen_range(1..=max_extra_ticks.max(1));
                    for delay in &mut extra_delays {
                        *delay += extra;
                    }
                    self.record(
                        now,
                        InjectedFaultKind::MessageDelayed {
                            from,
                            to,
                            extra_ticks: extra,
                        },
                    );
                }
                _ => {}
            }
        }
        EnqueueVerdict::Deliver { extra_delays }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_and_link_normalization() {
        let plan = FaultPlan::new(7)
            .with_spec(FaultSpec::MessageDrop {
                a: NodeId(2),
                b: NodeId(0),
                probability: 0.5,
            })
            .with_spec(FaultSpec::LinkFlap {
                a: NodeId(0),
                b: NodeId(1),
                down_epoch: 1,
                up_epoch: 2,
            });
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.specs().len(), 2);
        assert!(!plan.is_empty());
        assert!(FaultPlan::default().is_empty());
        assert_eq!(plan.specs()[0].link(), Some((NodeId(0), NodeId(2))));
        assert_eq!(plan.specs()[1].link(), Some((NodeId(0), NodeId(1))));
    }

    #[test]
    fn multi_link_specs_have_no_single_link() {
        let partition = FaultSpec::Partition {
            nodes: vec![NodeId(0)],
            epoch: 1,
        };
        let heal = FaultSpec::Heal {
            nodes: vec![NodeId(0)],
            epoch: 2,
        };
        assert_eq!(partition.link(), None);
        assert_eq!(heal.link(), None);
    }

    #[test]
    fn sever_and_restore_transition_once_and_record() {
        let mut rt = FaultRuntime::new(FaultPlan::default());
        assert!(rt.sever_link(NodeId(2), NodeId(0), 1, 5));
        assert!(!rt.sever_link(NodeId(0), NodeId(2), 1, 5), "already down");
        assert!(rt.link_is_down(NodeId(0), NodeId(2)));
        assert!(rt.restore_link(NodeId(0), NodeId(2), 2, 9));
        assert!(!rt.restore_link(NodeId(0), NodeId(2), 2, 9), "already up");
        assert!(!rt.link_is_down(NodeId(0), NodeId(2)));
        assert_eq!(
            rt.trace().digest(),
            "t5 link-down node0<->node2 epoch=1\nt9 link-up node0<->node2 epoch=2\n"
        );
    }

    #[test]
    fn partition_events_render_node_sets() {
        let mut rt = FaultRuntime::new(FaultPlan::default());
        rt.record(
            3,
            InjectedFaultKind::PartitionSevered {
                nodes: vec![NodeId(0), NodeId(2)],
                epoch: 1,
                links: 2,
            },
        );
        rt.record(
            8,
            InjectedFaultKind::PartitionHealed {
                nodes: vec![NodeId(0), NodeId(2)],
                epoch: 2,
                links: 2,
            },
        );
        assert_eq!(
            rt.trace().digest(),
            "t3 partition-severed nodes=[0,2] epoch=1 links=2\n\
             t8 partition-healed nodes=[0,2] epoch=2 links=2\n"
        );
        assert_eq!(rt.trace().injected_count(), 2);
    }

    #[test]
    fn fingerprint_distinguishes_sequences_and_zeroes_when_empty() {
        assert_eq!(FaultTrace::default().fingerprint(), 0);
        let mut first = FaultRuntime::new(FaultPlan::default());
        first.sever_link(NodeId(0), NodeId(1), 1, 5);
        let mut second = FaultRuntime::new(FaultPlan::default());
        second.sever_link(NodeId(0), NodeId(2), 1, 5);
        assert_eq!(
            first.trace().fingerprint(),
            first.trace().clone().fingerprint(),
            "stable across clones"
        );
        assert_ne!(
            first.trace().fingerprint(),
            second.trace().fingerprint(),
            "equal counts, different events"
        );
    }

    #[test]
    fn runtime_is_deterministic_per_seed() {
        let plan = FaultPlan::new(42).with_spec(FaultSpec::MessageDrop {
            a: NodeId(0),
            b: NodeId(1),
            probability: 0.5,
        });
        let run = |plan: FaultPlan| {
            let mut rt = FaultRuntime::new(plan);
            (0..64)
                .map(|i| matches!(rt.on_enqueue(NodeId(0), NodeId(1), i), EnqueueVerdict::Drop))
                .collect::<Vec<bool>>()
        };
        let first = run(plan.clone());
        let second = run(plan);
        assert_eq!(first, second);
        assert!(first.iter().any(|d| *d), "some messages dropped");
        assert!(first.iter().any(|d| !*d), "some messages delivered");
    }

    #[test]
    fn link_flap_transitions_record_once() {
        let plan = FaultPlan::new(0).with_spec(FaultSpec::LinkFlap {
            a: NodeId(1),
            b: NodeId(0),
            down_epoch: 1,
            up_epoch: 3,
        });
        let mut rt = FaultRuntime::new(plan);
        rt.apply_link_epoch(0, 0);
        assert!(!rt.link_is_down(NodeId(0), NodeId(1)));
        rt.apply_link_epoch(1, 5);
        assert!(rt.link_is_down(NodeId(0), NodeId(1)));
        assert!(rt.link_is_down(NodeId(1), NodeId(0)), "undirected");
        rt.apply_link_epoch(2, 10);
        assert!(rt.link_is_down(NodeId(0), NodeId(1)));
        rt.apply_link_epoch(3, 15);
        assert!(!rt.link_is_down(NodeId(0), NodeId(1)));
        let digest = rt.trace().digest();
        assert_eq!(
            digest,
            "t5 link-down node0<->node1 epoch=1\nt15 link-up node0<->node1 epoch=3\n"
        );
        assert_eq!(rt.trace().injected_count(), 2);
        assert_eq!(rt.trace().delivery_error_count(), 0);
    }

    #[test]
    fn down_link_drops_at_enqueue() {
        let plan = FaultPlan::new(0).with_spec(FaultSpec::LinkFlap {
            a: NodeId(0),
            b: NodeId(1),
            down_epoch: 0,
            up_epoch: 9,
        });
        let mut rt = FaultRuntime::new(plan);
        rt.apply_link_epoch(0, 0);
        assert!(matches!(
            rt.on_enqueue(NodeId(1), NodeId(0), 1),
            EnqueueVerdict::Drop
        ));
        // Unrelated links are untouched.
        match rt.on_enqueue(NodeId(1), NodeId(2), 1) {
            EnqueueVerdict::Deliver { extra_delays } => assert_eq!(extra_delays, vec![0]),
            EnqueueVerdict::Drop => panic!("unrelated link perturbed"),
        }
    }

    #[test]
    fn duplicate_and_reorder_perturb_copies() {
        let plan = FaultPlan::new(3)
            .with_spec(FaultSpec::MessageDuplicate {
                a: NodeId(0),
                b: NodeId(1),
                probability: 1.0,
            })
            .with_spec(FaultSpec::MessageReorder {
                a: NodeId(0),
                b: NodeId(1),
                probability: 1.0,
                max_extra_ticks: 4,
            });
        let mut rt = FaultRuntime::new(plan);
        match rt.on_enqueue(NodeId(0), NodeId(1), 0) {
            EnqueueVerdict::Deliver { extra_delays } => {
                assert_eq!(extra_delays.len(), 2, "one duplicate copy");
                assert!(extra_delays.iter().all(|d| (1..=4).contains(d)));
            }
            EnqueueVerdict::Drop => panic!("nothing should drop"),
        }
        assert_eq!(rt.trace().injected_count(), 2);
    }

    #[test]
    fn delivery_errors_render_and_count() {
        let mut rt = FaultRuntime::new(FaultPlan::default());
        rt.record(
            4,
            InjectedFaultKind::DeliveryError(DeliveryError::UnknownSourceAddress {
                node: NodeId(1),
                address: Ipv4Addr::new(192, 0, 2, 99),
            }),
        );
        assert_eq!(rt.trace().len(), 1);
        assert_eq!(rt.trace().injected_count(), 0);
        assert_eq!(rt.trace().delivery_error_count(), 1);
        assert_eq!(
            rt.trace().digest(),
            "t4 delivery-error unknown source address 192.0.2.99 injected at node1\n"
        );
    }
}
