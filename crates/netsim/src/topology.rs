//! Topology descriptions, including the paper's Figure 2 testbed.

use std::net::Ipv4Addr;

use dice_router::policy::parse_filter;
use dice_router::{NeighborConfig, RouterConfig};

/// Index of a node within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// One node of a topology: a name plus its router configuration.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Human-readable name ("Provider", "Customer", ...).
    pub name: String,
    /// The node's router configuration.
    pub config: RouterConfig,
}

/// A topology: a set of nodes whose neighbor configurations reference each
/// other by router id / address.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, config: RouterConfig) -> NodeId {
        self.nodes.push(NodeSpec {
            name: name.into(),
            config,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// The nodes in insertion order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns true if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Looks up a node by its router id.
    pub fn node_by_router_id(&self, router_id: Ipv4Addr) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.config.router_id == router_id)
            .map(NodeId)
    }
}

/// The ASes of the Figure 2 topology.
pub mod asn {
    /// The customer AS (Pakistan Telecom in the motivating incident).
    pub const CUSTOMER: u32 = 17557;
    /// The provider AS running DiCE (PCCW in the incident).
    pub const PROVIDER: u32 = 3491;
    /// The aggregate "rest of the Internet" AS.
    pub const INTERNET: u32 = 1299;
    /// The legitimate origin of the victim prefix (YouTube).
    pub const VICTIM: u32 = 36561;
}

/// Router ids (also used as link addresses) of the Figure 2 nodes.
pub mod addr {
    use std::net::Ipv4Addr;

    /// The customer router.
    pub const CUSTOMER: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 1);
    /// The provider (DiCE-enabled) router.
    pub const PROVIDER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    /// The "rest of the Internet" router.
    pub const INTERNET: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 1);
}

/// How the Provider's customer import filter is configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CustomerFilterMode {
    /// Best practice: only the customer's allocated prefixes are accepted.
    Correct,
    /// The filter admits the customer's block but fails to pin the origin
    /// AS — the "erroneous filter" case of §4.2.
    Erroneous,
    /// No customer filtering at all — the PCCW misconfiguration that let
    /// the YouTube hijack spread.
    Missing,
}

/// Builds the three-router topology of Figure 2: a Customer and the "rest
/// of the Internet" both peer with the Provider, whose router is the
/// DiCE-enabled node. `mode` selects how (mis)configured the Provider's
/// customer route filtering is.
pub fn figure2_topology(mode: CustomerFilterMode) -> Topology {
    // Provider (AS 3491): customer-provider link + transit to the Internet.
    let customer_in = match mode {
        CustomerFilterMode::Correct => parse_filter(
            r#"filter customer_in {
                if net ~ [ 41.0.0.0/12{12,24} ] && source_as = 17557 then accept;
                reject;
            }"#,
        )
        .expect("valid filter"),
        CustomerFilterMode::Erroneous => parse_filter(
            // "Partially correct route filtering" (§4.2): the customer's own
            // block is filtered correctly, but a stale entry for a block the
            // customer no longer holds (the victim's 208.65.152.0/22) was
            // left in place and the origin AS is never pinned, so the
            // customer can announce the victim's prefix and more-specifics
            // of it.
            r#"filter customer_in {
                if net ~ [ 41.0.0.0/12{12,24} ] then accept;
                if net ~ [ 208.65.152.0/22{22,24} ] then accept;
                reject;
            }"#,
        )
        .expect("valid filter"),
        CustomerFilterMode::Missing => dice_router::policy::FilterDef::accept_all("customer_in"),
    };
    figure2_topology_with_customer_filter(customer_in)
}

/// The Figure 2 wiring with an arbitrary Provider customer import filter
/// (referenced by the filter's own name). This is the hook scenario tests
/// use to install bespoke policies — e.g. an attribute-gated filter whose
/// exploratory variants alternately accept and revoke the same prefix, the
/// route-flapping setup the live orchestrator's oscillation checker
/// detects.
pub fn figure2_topology_with_customer_filter(
    customer_in: dice_router::policy::FilterDef,
) -> Topology {
    let mut topo = Topology::new();

    // Customer (AS 17557): originates its own allocation, no import filters.
    let customer_cfg = RouterConfig::new(addr::CUSTOMER, asn::CUSTOMER)
        .with_filter(dice_router::policy::FilterDef::accept_all("all"))
        .with_neighbor(NeighborConfig {
            address: addr::PROVIDER,
            remote_as: asn::PROVIDER,
            import_filter: Some("all".into()),
            export_filter: Some("all".into()),
        })
        .with_static_route("41.0.0.0/12".parse().expect("valid"), addr::CUSTOMER);
    topo.add_node("Customer", customer_cfg);

    let customer_in_name = customer_in.name.clone();
    let provider_cfg = RouterConfig::new(addr::PROVIDER, asn::PROVIDER)
        .with_filter(customer_in)
        .with_filter(dice_router::policy::FilterDef::accept_all("transit_in"))
        .with_filter(dice_router::policy::FilterDef::accept_all("announce_all"))
        .with_neighbor(NeighborConfig {
            address: addr::CUSTOMER,
            remote_as: asn::CUSTOMER,
            import_filter: Some(customer_in_name),
            export_filter: Some("announce_all".into()),
        })
        .with_neighbor(NeighborConfig {
            address: addr::INTERNET,
            remote_as: asn::INTERNET,
            import_filter: Some("transit_in".into()),
            export_filter: Some("announce_all".into()),
        });
    topo.add_node("Provider", provider_cfg);

    // Rest of the Internet (AS 1299): a single router standing in for the
    // full table source; it replays the RouteViews-like trace.
    let internet_cfg = RouterConfig::new(addr::INTERNET, asn::INTERNET)
        .with_filter(dice_router::policy::FilterDef::accept_all("all"))
        .with_neighbor(NeighborConfig {
            address: addr::PROVIDER,
            remote_as: asn::PROVIDER,
            import_filter: Some("all".into()),
            export_filter: Some("all".into()),
        });
    topo.add_node("RestOfInternet", internet_cfg);

    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_has_three_nodes_with_expected_roles() {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        assert_eq!(topo.len(), 3);
        let provider = topo.node_by_name("Provider").expect("provider");
        let spec = &topo.nodes()[provider.0];
        assert_eq!(spec.config.local_as, asn::PROVIDER);
        assert_eq!(spec.config.neighbors.len(), 2);
        assert!(topo.node_by_name("Customer").is_some());
        assert!(topo.node_by_name("RestOfInternet").is_some());
        assert!(topo.node_by_name("nonexistent").is_none());
        assert_eq!(topo.node_by_router_id(addr::PROVIDER), Some(provider));
    }

    #[test]
    fn filter_modes_change_the_customer_filter() {
        for (mode, branches) in [
            (CustomerFilterMode::Correct, 1),
            (CustomerFilterMode::Erroneous, 2),
            (CustomerFilterMode::Missing, 0),
        ] {
            let topo = figure2_topology(mode);
            let provider = topo.node_by_name("Provider").expect("provider");
            let filter = topo.nodes()[provider.0]
                .config
                .filter("customer_in")
                .expect("filter present");
            assert_eq!(filter.branch_count(), branches, "mode {mode:?}");
        }
    }

    #[test]
    fn configs_validate() {
        for mode in [
            CustomerFilterMode::Correct,
            CustomerFilterMode::Erroneous,
            CustomerFilterMode::Missing,
        ] {
            for node in figure2_topology(mode).nodes() {
                assert!(
                    node.config.validate().is_ok(),
                    "config of {} validates",
                    node.name
                );
            }
        }
    }
}
