//! Trace replay against a router, with throughput measurement.

use std::net::Ipv4Addr;
use std::time::Instant;

use dice_bgp::route::PeerId;
use dice_router::BgpRouter;

use crate::metrics::ThroughputMeter;
use crate::trace::BgpTrace;

/// The result of a replay phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplayStats {
    /// UPDATE messages fed to the router.
    pub updates_fed: u64,
    /// Prefixes present in the router's RIB after the phase.
    pub rib_prefixes: usize,
    /// Wall-clock updates/second achieved during the phase.
    pub updates_per_second: f64,
}

/// Replays a trace (table dump and/or incremental updates) into one router
/// as if its peer at `peer_address` were sending the messages.
#[derive(Debug)]
pub struct Replayer<'a> {
    trace: &'a BgpTrace,
    peer_address: Ipv4Addr,
}

impl<'a> Replayer<'a> {
    /// Creates a replayer for the trace, impersonating the given peer.
    pub fn new(trace: &'a BgpTrace, peer_address: Ipv4Addr) -> Self {
        Replayer {
            trace,
            peer_address,
        }
    }

    fn peer(&self, router: &BgpRouter) -> Option<PeerId> {
        router.peer_by_address(self.peer_address)
    }

    /// Feeds the table dump into the router as fast as possible ("loading
    /// the routing table"). Returns the achieved throughput.
    pub fn load_table(&self, router: &mut BgpRouter) -> ReplayStats {
        let Some(peer) = self.peer(router) else {
            return ReplayStats::default();
        };
        let mut meter = ThroughputMeter::new();
        let started = Instant::now();
        let mut fed = 0u64;
        for update in &self.trace.table {
            router.handle_update(peer, update);
            fed += 1;
        }
        meter.record(fed, started.elapsed());
        ReplayStats {
            updates_fed: fed,
            rib_prefixes: router.rib().prefix_count(),
            updates_per_second: meter.updates_per_second(),
        }
    }

    /// Feeds the incremental updates as fast as possible. `interleave` is
    /// called after every message with the number of updates fed so far —
    /// the CPU-overhead experiment uses it to run exploration work on the
    /// same core.
    pub fn replay_updates<F>(&self, router: &mut BgpRouter, mut interleave: F) -> ReplayStats
    where
        F: FnMut(u64),
    {
        let Some(peer) = self.peer(router) else {
            return ReplayStats::default();
        };
        let mut meter = ThroughputMeter::new();
        let started = Instant::now();
        let mut fed = 0u64;
        for event in &self.trace.updates {
            router.handle_update(peer, &event.update);
            fed += 1;
            interleave(fed);
        }
        meter.record(fed, started.elapsed());
        ReplayStats {
            updates_fed: fed,
            rib_prefixes: router.rib().prefix_count(),
            updates_per_second: meter.updates_per_second(),
        }
    }

    /// Returns the UPDATE messages of the table dump followed by the
    /// incremental updates, flattened (the "observed inputs" DiCE samples
    /// from).
    pub fn all_updates(&self) -> Vec<&dice_bgp::message::UpdateMessage> {
        self.trace
            .table
            .iter()
            .chain(self.trace.updates.iter().map(|e| &e.update))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{addr, figure2_topology, CustomerFilterMode};
    use crate::trace::{generate_trace, TraceGenConfig};
    use dice_router::BgpRouter;

    fn provider_router() -> BgpRouter {
        let topo = figure2_topology(CustomerFilterMode::Correct);
        let provider = topo.node_by_name("Provider").expect("node");
        let mut r = BgpRouter::new(topo.nodes()[provider.0].config.clone());
        r.start();
        r
    }

    #[test]
    fn table_load_fills_the_rib() {
        let cfg = TraceGenConfig {
            prefix_count: 1_000,
            update_count: 0,
            ..Default::default()
        };
        let trace = generate_trace(&cfg, 1299, addr::INTERNET);
        let mut router = provider_router();
        let stats = Replayer::new(&trace, addr::INTERNET).load_table(&mut router);
        assert_eq!(stats.updates_fed, 1_000);
        assert_eq!(stats.rib_prefixes, 1_000);
        assert!(stats.updates_per_second > 0.0);
    }

    #[test]
    fn incremental_replay_applies_withdrawals() {
        let cfg = TraceGenConfig {
            prefix_count: 300,
            update_count: 300,
            withdrawal_percent: 50,
            ..Default::default()
        };
        let trace = generate_trace(&cfg, 1299, addr::INTERNET);
        let mut router = provider_router();
        let replayer = Replayer::new(&trace, addr::INTERNET);
        replayer.load_table(&mut router);
        let before = router.rib().prefix_count();
        let mut calls = 0u64;
        let stats = replayer.replay_updates(&mut router, |_| calls += 1);
        assert_eq!(stats.updates_fed, 300);
        assert_eq!(calls, 300);
        assert!(stats.rib_prefixes <= before);
        assert!(stats.rib_prefixes > 0);
    }

    #[test]
    fn unknown_peer_address_yields_empty_stats() {
        let cfg = TraceGenConfig::tiny();
        let trace = generate_trace(&cfg, 1299, addr::INTERNET);
        let mut router = provider_router();
        let stats = Replayer::new(&trace, Ipv4Addr::new(192, 0, 2, 77)).load_table(&mut router);
        assert_eq!(stats.updates_fed, 0);
        assert_eq!(stats.rib_prefixes, 0);
    }

    #[test]
    fn all_updates_flattens_table_and_updates() {
        let cfg = TraceGenConfig {
            prefix_count: 10,
            update_count: 5,
            ..Default::default()
        };
        let trace = generate_trace(&cfg, 1299, addr::INTERNET);
        let replayer = Replayer::new(&trace, addr::INTERNET);
        assert_eq!(replayer.all_updates().len(), 15);
    }
}
