//! Fixed-bucket log2 latency histogram with deterministic quantiles.

use std::fmt;
use std::time::Duration;

/// Number of buckets: one for zero plus one per power of two up to `u64::MAX`.
const BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram for latency-style `u64` samples
/// (conventionally nanoseconds).
///
/// Bucket `0` holds the value `0`; bucket `k > 0` holds values in
/// `[2^(k-1), 2^k)`. Quantiles report the bucket's inclusive upper bound,
/// clamped to the true recorded maximum, so they are deterministic for a
/// given sample multiset — no interpolation, no floating-point state.
///
/// The struct is `Copy` and fixed-size so it can sit inside snapshots and
/// reports without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `index`.
    fn bucket_upper(index: usize) -> u64 {
        match index {
            0 => 0,
            64.. => u64::MAX,
            _ => (1u64 << index) - 1,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Record a [`Duration`] sample in nanoseconds.
    #[inline]
    pub fn record_duration(&mut self, duration: Duration) {
        self.record(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The quantile `q` in `[0, 1]`: the upper bound of the first bucket at
    /// which the cumulative count reaches `ceil(q * count)`, clamped to the
    /// recorded maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return Self::bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Condense into the `Copy`-able summary embedded in control snapshots.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            max: self.max,
        }
    }

    /// Iterate `(inclusive_upper_bound, count)` for every non-empty bucket,
    /// in increasing bound order. Exporters build cumulative series from
    /// this.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| (Self::bucket_upper(index), count))
    }
}

/// Deterministic five-number condensation of a [`Histogram`], rendered as
/// durations (the samples are nanoseconds by convention).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Median, in nanoseconds.
    pub p50: u64,
    /// 90th percentile, in nanoseconds.
    pub p90: u64,
    /// 99th percentile, in nanoseconds.
    pub p99: u64,
    /// Largest sample, in nanoseconds.
    pub max: u64,
}

impl fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={}", self.count)?;
        if self.count > 0 {
            write!(
                f,
                " p50={:?} p90={:?} p99={:?} max={:?}",
                Duration::from_nanos(self.p50),
                Duration::from_nanos(self.p90),
                Duration::from_nanos(self.p99),
                Duration::from_nanos(self.max),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
        assert_eq!(h.summary().to_string(), "n=0");
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds_clamped_to_max() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // Cumulative counts: 1 (≤1), 3 (≤3), 7 (≤7), 15 (≤15), 31 (≤31),
        // 63 (≤63), 100 (≤127 clamped to 100).
        assert_eq!(h.p50(), 63);
        assert_eq!(h.p90(), 100);
        assert_eq!(h.p99(), 100);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn zero_and_extreme_values_land_in_terminal_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (u64::MAX, 1)]);
    }

    #[test]
    fn merge_is_equivalent_to_recording_both_sample_sets() {
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 17, 900, 4096, 5, 0] {
            left.record(v);
            all.record(v);
        }
        for v in [250u64, 1, 1_000_000, 63] {
            right.record(v);
            all.record(v);
        }
        left.merge(&right);
        assert_eq!(left, all);
        assert_eq!(left.summary(), all.summary());
    }

    #[test]
    fn record_duration_uses_nanoseconds() {
        let mut h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.max(), 3_000);
        assert_eq!(
            h.summary().to_string(),
            "n=1 p50=3µs p90=3µs p99=3µs max=3µs"
        );
    }

    #[test]
    fn quantiles_are_deterministic_under_permutation() {
        let samples = [9u64, 100, 3, 77, 2048, 511, 0, 15, 15, 15];
        let mut forward = Histogram::new();
        for &s in &samples {
            forward.record(s);
        }
        let mut backward = Histogram::new();
        for &s in samples.iter().rev() {
            backward.record(s);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.summary(), backward.summary());
    }
}
