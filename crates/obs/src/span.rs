//! RAII span and instant-event instrumentation helpers.

use crate::sink::{self, TraceRecord};

/// A timed region of code. Created by [`span`]; the closing timestamp is
/// taken and the event dispatched when the guard drops.
///
/// When no sink is installed the span is inert: construction is a relaxed
/// atomic load and the drop does nothing, so instrumentation left in hot
/// paths compiles down to a predictable branch.
#[must_use = "a span records its duration when dropped"]
#[derive(Debug)]
pub struct Span {
    scope: &'static str,
    name: &'static str,
    detail: u64,
    /// `Some(start)` only while recording; `None` makes `Drop` a no-op.
    start_ns: Option<u64>,
}

impl Span {
    /// Attach a numeric payload (a count, a size, an epoch number) to the
    /// event emitted when the span closes.
    #[inline]
    pub fn set_detail(&mut self, detail: u64) {
        if self.start_ns.is_some() {
            self.detail = detail;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start_ns {
            let end = sink::now_ns();
            sink::dispatch(TraceRecord {
                scope: self.scope,
                name: self.name,
                start_ns: start,
                dur_ns: Some(end.saturating_sub(start)),
                detail: self.detail,
            });
        }
    }
}

/// Open a [`Span`] covering the enclosing scope.
///
/// ```
/// let mut span = dice_obs::span("netsim", "sim.step");
/// // ... do the work ...
/// span.set_detail(42);
/// // dropping the span records scope/name/duration/detail
/// ```
#[inline]
pub fn span(scope: &'static str, name: &'static str) -> Span {
    let start_ns = sink::enabled().then(sink::now_ns);
    Span {
        scope,
        name,
        detail: 0,
        start_ns,
    }
}

/// Record an instant (zero-duration) event.
#[inline]
pub fn event(scope: &'static str, name: &'static str, detail: u64) {
    if sink::enabled() {
        sink::dispatch(TraceRecord {
            scope,
            name,
            start_ns: sink::now_ns(),
            dur_ns: None,
            detail,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{test_lock, BufferedRecorder, SinkGuard};
    use std::sync::Arc;

    #[test]
    fn spans_record_duration_and_detail() {
        let _serial = test_lock();
        let recorder = Arc::new(BufferedRecorder::new());
        let _guard = SinkGuard::install(recorder.clone());
        {
            let mut span = span("test", "outer");
            event("test", "inner", 7);
            span.set_detail(3);
        }
        let events = recorder.drain();
        assert_eq!(events.len(), 2);
        // The instant event dispatched first; the span closed after it.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].dur_ns, None);
        assert_eq!(events[0].detail, 7);
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].detail, 3);
        let dur = events[1].dur_ns.expect("span has a duration");
        assert!(events[1].start_ns <= events[0].start_ns);
        assert!(events[1].start_ns + dur >= events[0].start_ns);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _serial = test_lock();
        let recorder = Arc::new(BufferedRecorder::new());
        {
            let mut span = span("test", "silent");
            span.set_detail(9);
            event("test", "silent-event", 1);
        }
        assert!(recorder.is_empty());
    }
}
