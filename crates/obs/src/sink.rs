//! The process-global trace sink: a no-op by default, a buffered recorder
//! when observability is switched on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// The payload handed to a [`TraceSink`] for every span or instant event.
///
/// Sequence IDs and thread IDs are assigned by the sink itself (see
/// [`BufferedRecorder`]) so that the dispatch path stays allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Subsystem scope, conventionally the crate short name (`"netsim"`,
    /// `"solver"`, `"symexec"`, `"core"`).
    pub scope: &'static str,
    /// Event name, conventionally `component.action` (`"sim.step"`).
    pub name: &'static str,
    /// Nanoseconds since the process trace epoch when the event started.
    pub start_ns: u64,
    /// Span duration in nanoseconds; `None` for instant events.
    pub dur_ns: Option<u64>,
    /// Free-form numeric payload (counts, sizes, epoch numbers).
    pub detail: u64,
}

/// A fully recorded trace event: a [`TraceRecord`] stamped with the
/// recorder's monotonic sequence ID and a small dense thread index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence ID assigned at record time. Replayed runs emit
    /// the same events in the same order, so sorting by `seq` reproduces a
    /// stable, comparable event stream.
    pub seq: u64,
    /// Small dense index of the recording thread (first-use order).
    pub tid: u64,
    /// Subsystem scope (see [`TraceRecord::scope`]).
    pub scope: &'static str,
    /// Event name (see [`TraceRecord::name`]).
    pub name: &'static str,
    /// Nanoseconds since the process trace epoch when the event started.
    pub start_ns: u64,
    /// Span duration in nanoseconds; `None` for instant events.
    pub dur_ns: Option<u64>,
    /// Free-form numeric payload.
    pub detail: u64,
}

/// Destination for trace records.
///
/// Implementations must be cheap and must never feed information back into
/// the instrumented code: observability is strictly out-of-band, and every
/// report digest stays byte-identical whatever sink is installed.
pub trait TraceSink: Send + Sync {
    /// Record one span or instant event.
    fn record(&self, record: TraceRecord);
}

/// The explicit do-nothing sink. Installing it is equivalent to the default
/// uninstalled state; it exists so the "no-op" arm of comparisons (benches,
/// equivalence tests) can be spelled out.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline]
    fn record(&self, _record: TraceRecord) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);

/// Install `sink` as the process-global trace sink and enable dispatch.
///
/// Replaces any previously installed sink. Instrumented code observes the
/// change on its next span/event.
pub fn install(sink: Arc<dyn TraceSink>) {
    *SINK.write().expect("trace sink lock poisoned") = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Remove the installed sink, returning dispatch to the no-op default.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *SINK.write().expect("trace sink lock poisoned") = None;
}

/// Install `sink` for the lifetime of the returned guard, then uninstall.
///
/// The RAII form tests and benches should prefer: the sink is removed even
/// if the enclosed code panics, so one test's recorder never leaks into the
/// next.
#[must_use = "the sink is uninstalled when the guard drops"]
pub struct SinkGuard(());

impl SinkGuard {
    /// Install `sink` and return the guard that will uninstall it.
    pub fn install(sink: Arc<dyn TraceSink>) -> Self {
        install(sink);
        SinkGuard(())
    }
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        uninstall();
    }
}

/// Whether a sink is currently installed. This is the entire cost of the
/// disabled path: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Hand a record to the installed sink, if any.
#[inline]
pub(crate) fn dispatch(record: TraceRecord) {
    if enabled() {
        dispatch_enabled(record);
    }
}

#[cold]
fn dispatch_enabled(record: TraceRecord) {
    if let Ok(guard) = SINK.read() {
        if let Some(sink) = guard.as_ref() {
            sink.record(record);
        }
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (the first observability call).
///
/// All trace timestamps share this epoch, so events from different threads
/// and subsystems line up on one timeline.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

static NEXT_THREAD_INDEX: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_INDEX: u64 = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
}

fn thread_index() -> u64 {
    THREAD_INDEX.with(|i| *i)
}

/// Number of independently locked buffers in a [`BufferedRecorder`].
const SHARDS: usize = 16;

/// The shipped [`TraceSink`]: events go to one of 16 independently
/// locked buffers keyed by the recording thread, so concurrent workers
/// almost never contend on a lock. A process-wide atomic counter stamps
/// every event with a monotonic sequence ID; [`BufferedRecorder::drain`]
/// merges the shards back into that order, so two replays of the same
/// deterministic run produce the same event sequence.
#[derive(Debug)]
pub struct BufferedRecorder {
    seq: AtomicU64,
    shards: [Mutex<Vec<TraceEvent>>; SHARDS],
}

impl Default for BufferedRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferedRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }

    /// Total number of buffered events across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("recorder shard poisoned").len())
            .sum()
    }

    /// Whether no events have been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out all buffered events, sorted by sequence ID, without
    /// clearing the buffers.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(
                shard
                    .lock()
                    .expect("recorder shard poisoned")
                    .iter()
                    .copied(),
            );
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Move out all buffered events, sorted by sequence ID, leaving the
    /// recorder empty (sequence IDs keep counting up).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut all = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.append(&mut shard.lock().expect("recorder shard poisoned"));
        }
        all.sort_by_key(|e| e.seq);
        all
    }
}

impl TraceSink for BufferedRecorder {
    fn record(&self, record: TraceRecord) {
        let tid = thread_index();
        let event = TraceEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            tid,
            scope: record.scope,
            name: record.name,
            start_ns: record.start_ns,
            dur_ns: record.dur_ns,
            detail: record.detail,
        };
        let shard = (tid as usize) % SHARDS;
        self.shards[shard]
            .lock()
            .expect("recorder shard poisoned")
            .push(event);
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // The sink is process-global state; tests that install one serialize on
    // this lock so parallel test threads never observe each other's sinks.
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_state_is_disabled_and_dispatch_is_a_noop() {
        let _serial = test_lock();
        assert!(!enabled());
        // Dispatch with nothing installed must be silently dropped.
        dispatch(TraceRecord {
            scope: "test",
            name: "noop",
            start_ns: 0,
            dur_ns: None,
            detail: 0,
        });
    }

    #[test]
    fn recorder_stamps_monotonic_sequence_ids() {
        let _serial = test_lock();
        let recorder = Arc::new(BufferedRecorder::new());
        let guard = SinkGuard::install(recorder.clone());
        assert!(enabled());
        for i in 0..10 {
            dispatch(TraceRecord {
                scope: "test",
                name: "tick",
                start_ns: now_ns(),
                dur_ns: None,
                detail: i,
            });
        }
        drop(guard);
        assert!(!enabled());
        let events = recorder.drain();
        assert_eq!(events.len(), 10);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "drain returns sequence order");
        let details: Vec<u64> = events.iter().map(|e| e.detail).collect();
        assert_eq!(details, (0..10).collect::<Vec<_>>());
        assert!(recorder.is_empty(), "drain cleared the buffers");
    }

    #[test]
    fn concurrent_recording_is_merged_into_one_stable_order() {
        let _serial = test_lock();
        let recorder = Arc::new(BufferedRecorder::new());
        let _guard = SinkGuard::install(recorder.clone());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                scope.spawn(move || {
                    for i in 0..25u64 {
                        dispatch(TraceRecord {
                            scope: "test",
                            name: "worker",
                            start_ns: now_ns(),
                            dur_ns: None,
                            detail: t * 100 + i,
                        });
                    }
                });
            }
        });
        let events = recorder.events();
        assert_eq!(events.len(), 100);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let mut expect = seqs.clone();
        expect.sort_unstable();
        assert_eq!(seqs, expect);
        // Each thread's own events stay in its program order.
        for t in 0..4u64 {
            let per_thread: Vec<u64> = events
                .iter()
                .filter(|e| e.detail / 100 == t)
                .map(|e| e.detail)
                .collect();
            let mut sorted = per_thread.clone();
            sorted.sort_unstable();
            assert_eq!(per_thread, sorted);
        }
    }

    #[test]
    fn guard_uninstalls_on_panic() {
        let _serial = test_lock();
        let result = std::panic::catch_unwind(|| {
            let _guard = SinkGuard::install(Arc::new(NoopSink));
            panic!("boom");
        });
        assert!(result.is_err());
        assert!(!enabled(), "the guard removed the sink during unwind");
    }
}
