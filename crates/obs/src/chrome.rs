//! Chrome Trace Event Format export (JSONL) and a serde-free validator.
//!
//! Each line is one complete (`ph:"X"`) or instant (`ph:"i"`) event object,
//! directly loadable by `chrome://tracing` and Perfetto. Timestamps are
//! microseconds as the format requires; the exact nanosecond values travel
//! in `args` so the validator can round-trip events losslessly.

use crate::sink::TraceEvent;
use std::fmt::Write as _;

/// Render recorded events as Chrome Trace Event Format, one JSON object per
/// line (the "JSON Lines" flavour both Chrome and Perfetto accept).
pub fn chrome_trace_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        let ts_us = event.start_ns / 1_000;
        let ts_frac = event.start_ns % 1_000;
        out.push_str("{\"name\":");
        write_json_string(&mut out, event.name);
        out.push_str(",\"cat\":");
        write_json_string(&mut out, event.scope);
        match event.dur_ns {
            Some(dur_ns) => {
                let dur_us = dur_ns / 1_000;
                let dur_frac = dur_ns % 1_000;
                let _ = write!(
                    out,
                    ",\"ph\":\"X\",\"ts\":{ts_us}.{ts_frac:03},\"dur\":{dur_us}.{dur_frac:03}"
                );
            }
            None => {
                let _ = write!(out, ",\"ph\":\"i\",\"ts\":{ts_us}.{ts_frac:03},\"s\":\"t\"");
            }
        }
        let _ = write!(
            out,
            ",\"pid\":1,\"tid\":{},\"args\":{{\"seq\":{},\"detail\":{},\"start_ns\":{}",
            event.tid, event.seq, event.detail, event.start_ns
        );
        if let Some(dur_ns) = event.dur_ns {
            let _ = write!(out, ",\"dur_ns\":{dur_ns}");
        }
        out.push_str("}}\n");
    }
    out
}

/// One event parsed back out of the JSONL export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Category (the instrumentation scope).
    pub cat: String,
    /// Phase: `"X"` (complete) or `"i"` (instant).
    pub ph: String,
    /// Thread ID.
    pub tid: u64,
    /// Monotonic sequence ID (from `args.seq`).
    pub seq: u64,
    /// Detail payload (from `args.detail`).
    pub detail: u64,
    /// Exact start time in nanoseconds (from `args.start_ns`).
    pub start_ns: u64,
    /// Exact duration in nanoseconds for complete events (from
    /// `args.dur_ns`).
    pub dur_ns: Option<u64>,
}

/// Parse and validate a Chrome Trace JSONL document produced by
/// [`chrome_trace_jsonl`], without serde: every line must be a JSON object
/// with the required fields, phases must be `X` (with `dur`) or `i`, and
/// the microsecond `ts`/`dur` fields must agree with the exact nanosecond
/// values carried in `args`. Returns the round-tripped events.
pub fn validate_chrome_trace_jsonl(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let mut events = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let lineno = index + 1;
        if line.is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| format!("line {lineno}: {e}"))?;
        events.push(event_from_json(&value).map_err(|e| format!("line {lineno}: {e}"))?);
    }
    Ok(events)
}

fn event_from_json(value: &Json) -> Result<ChromeEvent, String> {
    let obj = value.as_object().ok_or("event is not a JSON object")?;
    let name = get_string(obj, "name")?;
    let cat = get_string(obj, "cat")?;
    let ph = get_string(obj, "ph")?;
    let tid = get_u64(obj, "tid")?;
    let ts_us = get_f64(obj, "ts")?;
    let args = get(obj, "args")?
        .as_object()
        .ok_or("\"args\" is not an object")?;
    let seq = get_u64(args, "seq")?;
    let detail = get_u64(args, "detail")?;
    let start_ns = get_u64(args, "start_ns")?;
    if (ts_us - start_ns as f64 / 1_000.0).abs() > 0.5 {
        return Err(format!(
            "ts {ts_us}µs disagrees with args.start_ns {start_ns}"
        ));
    }
    let dur_ns = match ph.as_str() {
        "X" => {
            let dur_us = get_f64(obj, "dur")?;
            let dur_ns = get_u64(args, "dur_ns")?;
            if (dur_us - dur_ns as f64 / 1_000.0).abs() > 0.5 {
                return Err(format!(
                    "dur {dur_us}µs disagrees with args.dur_ns {dur_ns}"
                ));
            }
            Some(dur_ns)
        }
        "i" => None,
        other => return Err(format!("unsupported phase {other:?}")),
    };
    Ok(ChromeEvent {
        name,
        cat,
        ph,
        tid,
        seq,
        detail,
        start_ns,
        dur_ns,
    })
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn get_string(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    get(obj, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    let raw = match get(obj, key)? {
        Json::Number(raw) => raw,
        _ => return Err(format!("field {key:?} is not a number")),
    };
    raw.parse::<u64>()
        .map_err(|_| format!("field {key:?} is not an unsigned integer: {raw:?}"))
}

fn get_f64(obj: &[(String, Json)], key: &str) -> Result<f64, String> {
    let raw = match get(obj, key)? {
        Json::Number(raw) => raw,
        _ => return Err(format!("field {key:?} is not a number")),
    };
    raw.parse::<f64>()
        .map_err(|_| format!("field {key:?} is not a number: {raw:?}"))
}

/// Minimal JSON value. Numbers keep their literal text so integer fields
/// round-trip exactly (no detour through `f64`).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(String),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse exactly one JSON value from `input`, rejecting trailing garbage.
fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_whitespace(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_whitespace(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(format!("invalid number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("number bytes are ASCII");
    Ok(Json::Number(text.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".to_string()),
                }
                *pos += 1;
            }
            Some(&byte) if byte < 0x20 => {
                return Err("unescaped control character in string".to_string())
            }
            Some(_) => {
                // Consume one UTF-8 code point.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_whitespace(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_whitespace(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                seq: 0,
                tid: 0,
                scope: "netsim",
                name: "sim.step",
                start_ns: 1_234,
                dur_ns: Some(56_789),
                detail: 3,
            },
            TraceEvent {
                seq: 1,
                tid: 2,
                scope: "solver",
                name: "solver.wave",
                start_ns: 60_000,
                dur_ns: None,
                detail: 0,
            },
            TraceEvent {
                seq: 2,
                tid: 0,
                scope: "core",
                name: "live.round",
                start_ns: 100_000_001,
                dur_ns: Some(999),
                detail: u64::MAX,
            },
        ]
    }

    #[test]
    fn export_round_trips_through_the_validator() {
        let events = sample_events();
        let jsonl = chrome_trace_jsonl(&events);
        assert_eq!(jsonl.lines().count(), events.len());
        let parsed = validate_chrome_trace_jsonl(&jsonl).expect("export validates");
        assert_eq!(parsed.len(), events.len());
        for (original, round_tripped) in events.iter().zip(&parsed) {
            assert_eq!(round_tripped.name, original.name);
            assert_eq!(round_tripped.cat, original.scope);
            assert_eq!(round_tripped.seq, original.seq);
            assert_eq!(round_tripped.tid, original.tid);
            assert_eq!(round_tripped.detail, original.detail);
            assert_eq!(round_tripped.start_ns, original.start_ns);
            assert_eq!(round_tripped.dur_ns, original.dur_ns);
            assert_eq!(
                round_tripped.ph,
                if original.dur_ns.is_some() { "X" } else { "i" }
            );
        }
    }

    #[test]
    fn complete_events_carry_microsecond_timestamps() {
        let jsonl = chrome_trace_jsonl(&sample_events());
        let first = jsonl.lines().next().expect("one line");
        assert!(first.contains("\"ph\":\"X\""));
        assert!(first.contains("\"ts\":1.234"));
        assert!(first.contains("\"dur\":56.789"));
        assert!(first.contains("\"pid\":1"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "not json",
            "[1,2,3]",
            "{\"name\":\"x\"}",
            // ts disagrees with args.start_ns
            "{\"name\":\"x\",\"cat\":\"c\",\"ph\":\"i\",\"ts\":99.000,\"s\":\"t\",\"pid\":1,\"tid\":0,\"args\":{\"seq\":0,\"detail\":0,\"start_ns\":1234}}",
            // unknown phase
            "{\"name\":\"x\",\"cat\":\"c\",\"ph\":\"B\",\"ts\":0.000,\"pid\":1,\"tid\":0,\"args\":{\"seq\":0,\"detail\":0,\"start_ns\":0}}",
            // complete event missing dur
            "{\"name\":\"x\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":0.000,\"pid\":1,\"tid\":0,\"args\":{\"seq\":0,\"detail\":0,\"start_ns\":0,\"dur_ns\":5}}",
            "{\"name\":\"x\",\"cat\":\"c\",\"ph\":\"i\",\"ts\":0.000}trailing",
        ] {
            assert!(
                validate_chrome_trace_jsonl(bad).is_err(),
                "accepted malformed document {bad:?}"
            );
        }
    }

    #[test]
    fn parser_handles_escapes_and_nested_values() {
        let value = parse_json(
            "{\"a\":\"q\\\"\\\\\\n\\u0041\",\"b\":[1,-2.5,3e2,true,false,null],\"c\":{}}",
        )
        .expect("parses");
        let obj = value.as_object().expect("object");
        assert_eq!(get_string(obj, "a").unwrap(), "q\"\\\nA");
        match get(obj, "b").unwrap() {
            Json::Array(items) => {
                assert_eq!(items.len(), 6);
                assert_eq!(items[0], Json::Number("1".to_string()));
                assert_eq!(items[1], Json::Number("-2.5".to_string()));
                assert_eq!(items[2], Json::Number("3e2".to_string()));
                assert_eq!(items[3], Json::Bool(true));
                assert_eq!(items[5], Json::Null);
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_yields_no_events() {
        assert_eq!(validate_chrome_trace_jsonl("").unwrap(), Vec::new());
        assert_eq!(validate_chrome_trace_jsonl("\n\n").unwrap(), Vec::new());
    }
}
