//! Out-of-band observability for the DiCE reproduction.
//!
//! The exploration stack's correctness story is anchored in byte-identical
//! report digests, so everything in this crate is strictly *out-of-band*:
//! instrumentation never feeds data back into exploration, and every digest
//! stays byte-identical whether tracing is enabled, disabled, or the crate is
//! absent entirely.
//!
//! The pieces:
//!
//! - [`TraceSink`] — the recording interface. The process-global default is a
//!   no-op: until [`install`] is called, [`span`]/[`event`] cost a single
//!   relaxed atomic load and branch, which the optimizer hoists out of hot
//!   loops. [`BufferedRecorder`] is the shipped sink: sharded, lock-cheap
//!   per-thread buffers stamped with monotonic sequence IDs so replayed runs
//!   produce stable event orders.
//! - [`Span`] / [`span`] / [`event`] — RAII instrumentation helpers used by
//!   `dice_netsim`, `dice_solver`, `dice_symexec`, and `dice_core`.
//! - [`Histogram`] — a fixed-bucket log2 latency histogram with deterministic
//!   p50/p90/p99/max quantiles and a `Copy`-able [`HistogramSummary`] that the
//!   control plane embeds in `ControlSnapshot` (schema v2).
//! - Exporters: [`PrometheusText`] renders the Prometheus text exposition
//!   format (validated line-by-line by [`validate_prometheus_text`]), and
//!   [`chrome_trace_jsonl`] renders Chrome Trace Event Format JSONL loadable
//!   in `chrome://tracing` or Perfetto (round-tripped by the serde-free
//!   [`validate_chrome_trace_jsonl`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod histogram;
mod prometheus;
mod sink;
mod span;

pub use chrome::{chrome_trace_jsonl, validate_chrome_trace_jsonl, ChromeEvent};
pub use histogram::{Histogram, HistogramSummary};
pub use prometheus::{validate_prometheus_text, PrometheusText};
pub use sink::{
    enabled, install, now_ns, uninstall, BufferedRecorder, NoopSink, SinkGuard, TraceEvent,
    TraceRecord, TraceSink,
};
pub use span::{event, span, Span};
