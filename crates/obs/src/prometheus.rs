//! Prometheus text exposition format: a builder and a line-by-line
//! grammar validator.

use crate::histogram::Histogram;

/// Builder for the Prometheus text exposition format (version 0.0.4).
///
/// Metric families are appended in call order; the output of a
/// deterministic run is itself deterministic. Histograms are exported with
/// cumulative `_bucket{le="..."}` series (bounds in seconds, converted from
/// the histogram's nanosecond samples), `_sum`, and `_count`, exactly as a
/// Prometheus scraper expects.
#[derive(Debug, Default)]
pub struct PrometheusText {
    out: String,
}

impl PrometheusText {
    /// Start an empty exposition document.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(is_metric_name(name), "invalid metric name: {name}");
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Append a monotonically increasing counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Append a gauge (point-in-time value).
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(&format_value(value));
        self.out.push('\n');
    }

    /// Append a histogram whose samples are nanoseconds; bucket bounds are
    /// exported in seconds per Prometheus convention.
    pub fn histogram_ns(&mut self, name: &str, help: &str, histogram: &Histogram) {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for (upper_ns, count) in histogram.buckets() {
            cumulative += count;
            self.out.push_str(name);
            self.out.push_str("_bucket{le=\"");
            self.out.push_str(&format_value(upper_ns as f64 / 1e9));
            self.out.push_str("\"} ");
            self.out.push_str(&cumulative.to_string());
            self.out.push('\n');
        }
        self.out.push_str(name);
        self.out.push_str("_bucket{le=\"+Inf\"} ");
        self.out.push_str(&histogram.count().to_string());
        self.out.push('\n');
        self.out.push_str(name);
        self.out.push_str("_sum ");
        self.out
            .push_str(&format_value(histogram.sum() as f64 / 1e9));
        self.out.push('\n');
        self.out.push_str(name);
        self.out.push_str("_count ");
        self.out.push_str(&histogram.count().to_string());
        self.out.push('\n');
    }

    /// Finish the document.
    pub fn finish(self) -> String {
        self.out
    }
}

fn format_value(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

fn is_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Validate a document against the text exposition grammar, line by line.
///
/// Checks comment/`HELP`/`TYPE` structure, metric and label name character
/// sets, label quoting and escaping, and that every sample value parses as
/// a float (including `+Inf`/`-Inf`/`NaN`). Returns the first offending
/// line with its number.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    for (index, line) in text.lines().enumerate() {
        let lineno = index + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            validate_comment(comment).map_err(|e| format!("line {lineno}: {e}: {line:?}"))?;
        } else {
            validate_sample(line).map_err(|e| format!("line {lineno}: {e}: {line:?}"))?;
        }
    }
    Ok(())
}

fn validate_comment(comment: &str) -> Result<(), String> {
    let Some(body) = comment.strip_prefix(' ') else {
        // A bare `#` or `#something` is an ordinary comment.
        return Ok(());
    };
    if let Some(rest) = body.strip_prefix("HELP ") {
        let (name, help) = rest
            .split_once(' ')
            .ok_or_else(|| "HELP missing metric name or text".to_string())?;
        if !is_metric_name(name) {
            return Err(format!("HELP has invalid metric name {name:?}"));
        }
        if help.is_empty() {
            return Err("HELP has empty help text".to_string());
        }
        Ok(())
    } else if let Some(rest) = body.strip_prefix("TYPE ") {
        let (name, kind) = rest
            .split_once(' ')
            .ok_or_else(|| "TYPE missing metric name or kind".to_string())?;
        if !is_metric_name(name) {
            return Err(format!("TYPE has invalid metric name {name:?}"));
        }
        match kind {
            "counter" | "gauge" | "histogram" | "summary" | "untyped" => Ok(()),
            other => Err(format!("TYPE has unknown kind {other:?}")),
        }
    } else {
        // `# anything else` is an ordinary comment.
        Ok(())
    }
}

fn validate_sample(line: &str) -> Result<(), String> {
    let name_end = line
        .find(['{', ' '])
        .ok_or_else(|| "sample missing value".to_string())?;
    let name = &line[..name_end];
    if !is_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let rest = &line[name_end..];
    let rest = if let Some(labels) = rest.strip_prefix('{') {
        let close = find_label_close(labels).ok_or_else(|| "unterminated label set".to_string())?;
        validate_labels(&labels[..close])?;
        labels[close + 1..]
            .strip_prefix(' ')
            .ok_or_else(|| "missing space after label set".to_string())?
    } else {
        rest.strip_prefix(' ')
            .ok_or_else(|| "missing space before value".to_string())?
    };
    // `value [timestamp]`
    let mut parts = rest.split(' ');
    let value = parts.next().unwrap_or_default();
    value
        .parse::<f64>()
        .map_err(|_| format!("invalid sample value {value:?}"))?;
    if let Some(timestamp) = parts.next() {
        timestamp
            .parse::<i64>()
            .map_err(|_| format!("invalid timestamp {timestamp:?}"))?;
    }
    if parts.next().is_some() {
        return Err("trailing garbage after timestamp".to_string());
    }
    Ok(())
}

/// Find the index of the closing `}` of a label set, honouring `\"` escapes
/// inside quoted label values.
fn find_label_close(labels: &str) -> Option<usize> {
    let mut in_string = false;
    let mut escaped = false;
    for (index, c) in labels.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else if c == '"' {
            in_string = true;
        } else if c == '}' {
            return Some(index);
        }
    }
    None
}

fn validate_labels(body: &str) -> Result<(), String> {
    if body.is_empty() {
        return Ok(());
    }
    let mut rest = body;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| "label missing '='".to_string())?;
        let label = &rest[..eq];
        if !is_label_name(label) {
            return Err(format!("invalid label name {label:?}"));
        }
        let after = &rest[eq + 1..];
        let quoted = after
            .strip_prefix('"')
            .ok_or_else(|| "label value missing opening quote".to_string())?;
        let mut escaped = false;
        let mut close = None;
        for (index, c) in quoted.char_indices() {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("invalid escape \\{c} in label value"));
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                close = Some(index);
                break;
            }
        }
        let close = close.ok_or_else(|| "label value missing closing quote".to_string())?;
        rest = &quoted[close + 1..];
        if rest.is_empty() {
            return Ok(());
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| "labels must be comma-separated".to_string())?;
        if rest.is_empty() {
            // Trailing comma is tolerated by the reference parser.
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_output_passes_the_grammar_validator() {
        let mut h = Histogram::new();
        for v in [120u64, 4_500, 4_500, 90_000, 1_000_000] {
            h.record(v);
        }
        let mut text = PrometheusText::new();
        text.counter("dice_rounds_total", "Exploration rounds completed.", 12);
        text.gauge("dice_policy_coverage", "Policy branch coverage.", 0.875);
        text.gauge("dice_updates_per_second", "Ingest rate.", 15000.0);
        text.histogram_ns("dice_round_latency_seconds", "Round latency.", &h);
        let doc = text.finish();
        validate_prometheus_text(&doc).expect("builder output is valid");
        assert!(doc.contains("# TYPE dice_round_latency_seconds histogram"));
        assert!(doc.contains("dice_round_latency_seconds_bucket{le=\"+Inf\"} 5"));
        assert!(doc.contains("dice_round_latency_seconds_count 5"));
        assert!(doc.contains("dice_rounds_total 12"));
        assert!(doc.contains("dice_policy_coverage 0.875"));
        assert!(doc.contains("dice_updates_per_second 15000"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::new();
        h.record(1); // bucket ≤ 1
        h.record(3); // bucket ≤ 3
        h.record(3);
        let mut text = PrometheusText::new();
        text.histogram_ns("lat", "Latency.", &h);
        let doc = text.finish();
        assert!(doc.contains("lat_bucket{le=\"0.000000001\"} 1"));
        assert!(doc.contains("lat_bucket{le=\"0.000000003\"} 3"));
        assert!(doc.contains("lat_bucket{le=\"+Inf\"} 3"));
        validate_prometheus_text(&doc).expect("valid");
    }

    #[test]
    fn empty_histogram_still_exports_a_complete_family() {
        let mut text = PrometheusText::new();
        text.histogram_ns("lat", "Latency.", &Histogram::new());
        let doc = text.finish();
        validate_prometheus_text(&doc).expect("valid");
        assert!(doc.contains("lat_bucket{le=\"+Inf\"} 0"));
        assert!(doc.contains("lat_sum 0"));
        assert!(doc.contains("lat_count 0"));
    }

    #[test]
    fn validator_accepts_labels_escapes_and_special_values() {
        let doc = concat!(
            "# a plain comment\n",
            "# HELP up Whether the target is up.\n",
            "# TYPE up gauge\n",
            "up{instance=\"node\\\"1\\\"\",job=\"dice\"} 1\n",
            "corner{msg=\"line\\nbreak\"} +Inf\n",
            "negative -Inf 1700000000\n",
            "not_a_number NaN\n",
        );
        validate_prometheus_text(doc).expect("all lines valid");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "1badname 3",
            "metric",
            "metric{unclosed=\"x\" 3",
            "metric{2bad=\"x\"} 3",
            "metric{a=\"x\"b=\"y\"} 3",
            "metric not-a-float",
            "metric 3 not-a-timestamp",
            "metric 3 12 extra",
            "# TYPE metric wat",
            "# HELP metric",
        ] {
            assert!(
                validate_prometheus_text(bad).is_err(),
                "accepted malformed line {bad:?}"
            );
        }
    }
}
