//! Property suite: batched push/pop solving is observationally identical to
//! independent one-shot solving.
//!
//! For randomly generated constraint systems shaped like the concolic
//! engine's queries — a shared path prefix plus one negated branch per
//! candidate — an [`IncrementalSolver`] session must return exactly the
//! same verdicts *and models* as N independent [`Solver::solve`] calls.

use proptest::prelude::*;

use dice_solver::{IncrementalSolver, Model, Solver, TermArena, TermId, VarId, Verdict};

/// Bit widths assigned to generated variables: small enough to exercise the
/// enumeration phase, large enough (16) to force local search.
const WIDTHS: [u32; 4] = [4, 6, 8, 16];

/// One generated comparison: `var_a op (const | var_b)`.
///
/// `op` selects from eq/ne/ult/ule/ugt/uge; `kind` picks the rhs form and
/// whether the constraint is additionally wrapped in a negation.
type Spec = (u8, u8, u8, u16);

fn materialize(arena: &mut TermArena, vars: &[VarId], spec: Spec) -> TermId {
    let (a, op, kind, value) = spec;
    let va = vars[a as usize % vars.len()];
    let width = arena.var_info(va).width;
    let lhs = arena.var(va);
    let rhs = if kind % 3 == 2 && vars.len() > 1 {
        // var-vs-var comparison; widths must match, so resize.
        let vb = vars[(a as usize + 1) % vars.len()];
        let rv = arena.var(vb);
        arena.resize(rv, width)
    } else {
        arena.int_const(value as u64, width)
    };
    let cmp = match op % 6 {
        0 => arena.eq(lhs, rhs),
        1 => arena.ne(lhs, rhs),
        2 => arena.ult(lhs, rhs),
        3 => arena.ule(lhs, rhs),
        4 => arena.ugt(lhs, rhs),
        _ => arena.uge(lhs, rhs),
    };
    if kind % 5 == 4 {
        arena.not(cmp)
    } else {
        cmp
    }
}

fn setup(var_count: usize, seeds: &[u16]) -> (TermArena, Vec<VarId>, Model) {
    let mut arena = TermArena::new();
    let vars: Vec<VarId> = (0..var_count)
        .map(|i| arena.declare_var(format!("v{i}"), WIDTHS[i % WIDTHS.len()]))
        .collect();
    let mut seed = Model::new();
    for (i, &v) in vars.iter().enumerate() {
        seed.set(v, seeds.get(i).copied().unwrap_or(0) as u64);
    }
    (arena, vars, seed)
}

fn assert_same(incremental: &Verdict, reference: &Verdict, context: &str) {
    assert_eq!(
        incremental, reference,
        "batched and one-shot solving diverged: {context}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The engine's sibling-candidate pattern: one shared prefix, each
    /// candidate pushed as its own frame.
    #[test]
    fn sibling_candidates_match_independent_solves(
        var_count in 1usize..4,
        prefix in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>()), 1..6),
        candidates in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>()), 1..6),
        seeds in prop::collection::vec(any::<u16>(), 4..5),
    ) {
        let (mut arena, vars, seed) = setup(var_count, &seeds);
        let prefix_terms: Vec<TermId> = prefix
            .iter()
            .map(|&s| materialize(&mut arena, &vars, s))
            .collect();
        let candidate_terms: Vec<TermId> = candidates
            .iter()
            .map(|&s| materialize(&mut arena, &vars, s))
            .collect();

        let mut session = IncrementalSolver::new();
        session.assert_all(&mut arena, &prefix_terms);
        for &cand in &candidate_terms {
            session.push(&arena);
            session.assert_term(&mut arena, cand);
            let incremental = session.check(&arena, Some(&seed));
            session.pop();

            let mut one_shot = Solver::new();
            let mut query = prefix_terms.clone();
            query.push(cand);
            let reference = one_shot.solve(&mut arena, &query, Some(&seed));
            assert_same(&incremental, &reference, &arena.display(cand));
        }
    }

    /// The engine's progressive-prefix pattern: walking down one path,
    /// negating each branch in turn while the prefix grows underneath.
    #[test]
    fn progressive_prefix_matches_independent_solves(
        var_count in 1usize..4,
        path in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>()), 1..8),
        seeds in prop::collection::vec(any::<u16>(), 4..5),
    ) {
        let (mut arena, vars, seed) = setup(var_count, &seeds);
        let path_terms: Vec<TermId> = path
            .iter()
            .map(|&s| materialize(&mut arena, &vars, s))
            .collect();

        let mut session = IncrementalSolver::new();
        for i in 0..path_terms.len() {
            // Branch i negated on top of prefix [0, i).
            let negated = arena.not(path_terms[i]);
            session.push(&arena);
            session.assert_term(&mut arena, negated);
            let incremental = session.check(&arena, Some(&seed));
            session.pop();

            let mut one_shot = Solver::new();
            let mut query: Vec<TermId> = path_terms[..i].to_vec();
            query.push(negated);
            let reference = one_shot.solve(&mut arena, &query, Some(&seed));
            assert_same(&incremental, &reference, &arena.display(negated));

            // Extend the shared prefix with the branch actually taken.
            session.assert_term(&mut arena, path_terms[i]);
        }
    }

    /// Nested frames: a frame stacked on a sibling frame still answers like
    /// the equivalent flat one-shot query, and popping restores exactly.
    #[test]
    fn nested_frames_match_flat_queries(
        var_count in 1usize..4,
        base in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>()), 1..4),
        inner in (any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>()),
        deeper in (any::<u8>(), any::<u8>(), any::<u8>(), any::<u16>()),
        seeds in prop::collection::vec(any::<u16>(), 4..5),
    ) {
        let (mut arena, vars, seed) = setup(var_count, &seeds);
        let base_terms: Vec<TermId> = base
            .iter()
            .map(|&s| materialize(&mut arena, &vars, s))
            .collect();
        let inner_term = materialize(&mut arena, &vars, inner);
        let deeper_term = materialize(&mut arena, &vars, deeper);

        let mut session = IncrementalSolver::new();
        session.assert_all(&mut arena, &base_terms);
        session.push(&arena);
        session.assert_term(&mut arena, inner_term);
        session.push(&arena);
        session.assert_term(&mut arena, deeper_term);

        let mut one_shot = Solver::new();
        let mut flat = base_terms.clone();
        flat.push(inner_term);
        flat.push(deeper_term);
        let incremental = session.check(&arena, Some(&seed));
        let reference = one_shot.solve(&mut arena, &flat, Some(&seed));
        assert_same(&incremental, &reference, "deeper frame");

        session.pop();
        let mut flat = base_terms.clone();
        flat.push(inner_term);
        let incremental = session.check(&arena, Some(&seed));
        let reference = one_shot.solve(&mut arena, &flat, Some(&seed));
        assert_same(&incremental, &reference, "inner frame after pop");

        session.pop();
        let incremental = session.check(&arena, Some(&seed));
        let reference = one_shot.solve(&mut arena, &base_terms, Some(&seed));
        assert_same(&incremental, &reference, "base after popping all frames");
    }
}
