//! Unsigned interval domain used for constraint propagation.
//!
//! Every symbolic variable is given a conservative range `[lo, hi]` over its
//! bit width. Constraints of the common shapes produced by the concolic
//! engine (`var op const`, `const op var`, `var op var`) narrow these
//! ranges; an empty range proves unsatisfiability, and small ranges enable
//! cheap exhaustive enumeration.

use std::collections::BTreeMap;

use crate::term::{max_value, CmpOp, TermArena, TermId, TermKind, VarId};

/// A closed unsigned interval `[lo, hi]`; empty when `lo > hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    pub fn new(lo: u64, hi: u64) -> Self {
        Interval { lo, hi }
    }

    /// The full range of a `width`-bit unsigned integer.
    pub fn full(width: u32) -> Self {
        Interval {
            lo: 0,
            hi: max_value(width),
        }
    }

    /// A single-point interval.
    pub fn point(v: u64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// An empty interval.
    pub fn empty() -> Self {
        Interval { lo: 1, hi: 0 }
    }

    /// Returns true if the interval contains no values.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Returns true if the interval contains exactly one value.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Number of values contained (saturating at `u64::MAX`).
    pub fn size(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.hi - self.lo).saturating_add(1)
        }
    }

    /// Returns true if `v` lies in the interval.
    pub fn contains(&self, v: u64) -> bool {
        !self.is_empty() && v >= self.lo && v <= self.hi
    }

    /// Intersection of two intervals.
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Clamps `v` into the interval.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    pub fn clamp(&self, v: u64) -> u64 {
        assert!(!self.is_empty(), "cannot clamp into an empty interval");
        v.clamp(self.lo, self.hi)
    }

    /// Narrows the interval so that `x op bound` holds for every remaining x.
    pub fn refine_cmp_const(&self, op: CmpOp, bound: u64) -> Interval {
        match op {
            CmpOp::Eq => self.intersect(&Interval::point(bound)),
            CmpOp::Ne => {
                // Only narrows when the excluded point is an endpoint.
                if self.is_point() && self.lo == bound {
                    Interval::empty()
                } else if self.lo == bound {
                    Interval::new(self.lo + 1, self.hi)
                } else if self.hi == bound {
                    Interval::new(self.lo, self.hi - 1)
                } else {
                    *self
                }
            }
            CmpOp::Ult => {
                if bound == 0 {
                    Interval::empty()
                } else {
                    self.intersect(&Interval::new(0, bound - 1))
                }
            }
            CmpOp::Ule => self.intersect(&Interval::new(0, bound)),
            CmpOp::Ugt => {
                if bound == u64::MAX {
                    Interval::empty()
                } else {
                    self.intersect(&Interval::new(bound + 1, u64::MAX))
                }
            }
            CmpOp::Uge => self.intersect(&Interval::new(bound, u64::MAX)),
        }
    }
}

/// The outcome of one propagation run, reported by
/// [`Domains::propagate_counted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Propagation {
    /// `false` if an empty domain (contradiction) was derived.
    pub consistent: bool,
    /// Number of full sweeps over the constraint set performed.
    pub rounds: usize,
    /// `true` if a fixpoint was reached before the round budget ran out.
    /// When this holds, the domains are independent of the starting point:
    /// re-propagating the same constraints narrows nothing further, which
    /// is what lets an incremental session reuse them across queries.
    pub converged: bool,
}

/// Per-variable interval state for a constraint set.
#[derive(Debug, Clone, Default)]
pub struct Domains {
    map: BTreeMap<VarId, Interval>,
}

impl Domains {
    /// Creates an empty domain map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Initializes the domain of every variable appearing in `constraints`
    /// to the full range of its declared width.
    pub fn init(arena: &TermArena, constraints: &[TermId]) -> Self {
        let mut vars = Vec::new();
        for &c in constraints {
            arena.collect_vars(c, &mut vars);
        }
        let mut map = BTreeMap::new();
        for v in vars {
            map.insert(v, Interval::full(arena.var_info(v).width));
        }
        Domains { map }
    }

    /// Returns the interval for `var`, defaulting to the full width range.
    pub fn get(&self, arena: &TermArena, var: VarId) -> Interval {
        self.map
            .get(&var)
            .copied()
            .unwrap_or_else(|| Interval::full(arena.var_info(var).width))
    }

    /// Sets the interval for `var`.
    pub fn set(&mut self, var: VarId, iv: Interval) {
        self.map.insert(var, iv);
    }

    /// Returns true if any variable has an empty domain.
    pub fn any_empty(&self) -> bool {
        self.map.values().any(Interval::is_empty)
    }

    /// Iterates over `(variable, interval)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Interval)> + '_ {
        self.map.iter().map(|(&v, &iv)| (v, iv))
    }

    /// Number of tracked variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns true if no variables are tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Product of domain sizes, saturating at `u64::MAX`.
    pub fn search_space(&self) -> u64 {
        let mut acc: u64 = 1;
        for iv in self.map.values() {
            acc = acc.saturating_mul(iv.size());
            if acc == 0 {
                return 0;
            }
        }
        acc
    }

    /// Registers every variable appearing in `constraints` that is not yet
    /// tracked, initializing it to the full range of its declared width.
    /// Used by the incremental session when new assertions introduce new
    /// variables on top of an already-propagated stack.
    pub fn ensure_vars(&mut self, arena: &TermArena, constraints: &[TermId]) {
        let mut vars = Vec::new();
        for &c in constraints {
            arena.collect_vars(c, &mut vars);
        }
        for v in vars {
            self.map
                .entry(v)
                .or_insert_with(|| Interval::full(arena.var_info(v).width));
        }
    }

    /// Runs interval propagation over the constraints until a fixpoint is
    /// reached (bounded by `max_rounds`). Returns `false` if a contradiction
    /// (empty domain) was derived.
    pub fn propagate(
        &mut self,
        arena: &TermArena,
        constraints: &[TermId],
        max_rounds: usize,
    ) -> bool {
        self.propagate_counted(arena, constraints, max_rounds)
            .consistent
    }

    /// Like [`Domains::propagate`], but additionally reports how many sweeps
    /// ran and whether a fixpoint was reached before the round budget.
    pub fn propagate_counted(
        &mut self,
        arena: &TermArena,
        constraints: &[TermId],
        max_rounds: usize,
    ) -> Propagation {
        let mut rounds = 0;
        let mut converged = false;
        while rounds < max_rounds {
            rounds += 1;
            let mut changed = false;
            for &c in constraints {
                if !self.propagate_one(arena, c, &mut changed) {
                    return Propagation {
                        consistent: false,
                        rounds,
                        converged: false,
                    };
                }
            }
            if self.any_empty() {
                return Propagation {
                    consistent: false,
                    rounds,
                    converged: false,
                };
            }
            if !changed {
                converged = true;
                break;
            }
        }
        Propagation {
            consistent: !self.any_empty(),
            rounds,
            converged: converged || constraints.is_empty(),
        }
    }

    /// Propagates a single constraint. Returns `false` on contradiction.
    fn propagate_one(&mut self, arena: &TermArena, c: TermId, changed: &mut bool) -> bool {
        match &arena.node(c).kind {
            TermKind::ConstBool(true) => true,
            TermKind::ConstBool(false) => false,
            TermKind::Cmp { op, lhs, rhs } => self.propagate_cmp(arena, *op, *lhs, *rhs, changed),
            TermKind::BoolBin {
                op: crate::term::BoolOp::And,
                lhs,
                rhs,
            } => {
                self.propagate_one(arena, *lhs, changed) && self.propagate_one(arena, *rhs, changed)
            }
            // Other boolean structure (or, not over non-comparisons, ...) is
            // not propagated; the search phases handle it.
            _ => true,
        }
    }

    fn propagate_cmp(
        &mut self,
        arena: &TermArena,
        op: CmpOp,
        lhs: TermId,
        rhs: TermId,
        changed: &mut bool,
    ) -> bool {
        let lv = arena.as_var(lhs);
        let rv = arena.as_var(rhs);
        let lc = arena.as_const_int(lhs).map(|(v, _)| v);
        let rc = arena.as_const_int(rhs).map(|(v, _)| v);
        match (lv, rv, lc, rc) {
            // var op const
            (Some(v), None, None, Some(c)) => self.narrow(arena, v, op, c, changed),
            // const op var  =>  var (swapped op) const
            (None, Some(v), Some(c), None) => self.narrow(arena, v, op.swap(), c, changed),
            // var op var: propagate bounds both ways.
            (Some(a), Some(b), None, None) => {
                let ia = self.get(arena, a);
                let ib = self.get(arena, b);
                if ia.is_empty() || ib.is_empty() {
                    return false;
                }
                let (na, nb) = match op {
                    CmpOp::Eq => {
                        let m = ia.intersect(&ib);
                        (m, m)
                    }
                    CmpOp::Ne => {
                        if ia.is_point() && ib.is_point() && ia.lo == ib.lo {
                            (Interval::empty(), Interval::empty())
                        } else {
                            (ia, ib)
                        }
                    }
                    CmpOp::Ult => (
                        ia.refine_cmp_const(CmpOp::Ult, ib.hi),
                        ib.refine_cmp_const(CmpOp::Ugt, ia.lo),
                    ),
                    CmpOp::Ule => (
                        ia.refine_cmp_const(CmpOp::Ule, ib.hi),
                        ib.refine_cmp_const(CmpOp::Uge, ia.lo),
                    ),
                    CmpOp::Ugt => (
                        ia.refine_cmp_const(CmpOp::Ugt, ib.lo),
                        ib.refine_cmp_const(CmpOp::Ult, ia.hi),
                    ),
                    CmpOp::Uge => (
                        ia.refine_cmp_const(CmpOp::Uge, ib.lo),
                        ib.refine_cmp_const(CmpOp::Ule, ia.hi),
                    ),
                };
                if na != ia {
                    self.set(a, na);
                    *changed = true;
                }
                if nb != ib {
                    self.set(b, nb);
                    *changed = true;
                }
                !na.is_empty() && !nb.is_empty()
            }
            // Structured terms (e.g. `(x & mask) == const`) are not
            // interval-propagated; handled by the search phases.
            _ => true,
        }
    }

    fn narrow(
        &mut self,
        arena: &TermArena,
        var: VarId,
        op: CmpOp,
        bound: u64,
        changed: &mut bool,
    ) -> bool {
        let cur = self.get(arena, var);
        let next = cur.refine_cmp_const(op, bound);
        if next != cur {
            self.set(var, next);
            *changed = true;
        }
        !next.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let iv = Interval::new(3, 10);
        assert!(!iv.is_empty());
        assert_eq!(iv.size(), 8);
        assert!(iv.contains(3) && iv.contains(10) && !iv.contains(11));
        assert!(Interval::empty().is_empty());
        assert_eq!(Interval::full(8), Interval::new(0, 255));
        assert_eq!(iv.clamp(100), 10);
        assert_eq!(iv.clamp(0), 3);
    }

    #[test]
    fn refine_against_constants() {
        let iv = Interval::full(8);
        assert_eq!(iv.refine_cmp_const(CmpOp::Ult, 10), Interval::new(0, 9));
        assert_eq!(
            iv.refine_cmp_const(CmpOp::Uge, 200),
            Interval::new(200, 255)
        );
        assert_eq!(iv.refine_cmp_const(CmpOp::Eq, 42), Interval::point(42));
        assert!(iv.refine_cmp_const(CmpOp::Ult, 0).is_empty());
        let pt = Interval::point(5);
        assert!(pt.refine_cmp_const(CmpOp::Ne, 5).is_empty());
        assert_eq!(
            Interval::new(5, 9).refine_cmp_const(CmpOp::Ne, 5),
            Interval::new(6, 9)
        );
    }

    #[test]
    fn propagation_narrows_and_detects_unsat() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 8);
        let xv = arena.var(x);
        let c10 = arena.int_const(10, 8);
        let c20 = arena.int_const(20, 8);
        let lo = arena.ugt(xv, c10);
        let hi = arena.ult(xv, c20);

        let mut dom = Domains::init(&arena, &[lo, hi]);
        assert!(dom.propagate(&arena, &[lo, hi], 8));
        assert_eq!(dom.get(&arena, x), Interval::new(11, 19));
        assert_eq!(dom.search_space(), 9);

        let contradiction = arena.ult(xv, c10);
        let mut dom2 = Domains::init(&arena, &[lo, contradiction]);
        assert!(!dom2.propagate(&arena, &[lo, contradiction], 8));
    }

    #[test]
    fn var_var_propagation() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 8);
        let y = arena.declare_var("y", 8);
        let xv = arena.var(x);
        let yv = arena.var(y);
        let c5 = arena.int_const(5, 8);
        // y <= 5 and x < y  =>  x <= 4.
        let c1 = arena.ule(yv, c5);
        let c2 = arena.ult(xv, yv);
        let cs = [c1, c2];
        let mut dom = Domains::init(&arena, &cs);
        assert!(dom.propagate(&arena, &cs, 8));
        assert_eq!(dom.get(&arena, x).hi, 4);
    }

    #[test]
    fn swapped_constant_comparison() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 16);
        let xv = arena.var(x);
        let c100 = arena.int_const(100, 16);
        // 100 < x  =>  x > 100.
        let c = arena.ult(c100, xv);
        let cs = [c];
        let mut dom = Domains::init(&arena, &cs);
        assert!(dom.propagate(&arena, &cs, 4));
        assert_eq!(dom.get(&arena, x).lo, 101);
    }

    #[test]
    fn conjunction_is_decomposed() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 8);
        let xv = arena.var(x);
        let c3 = arena.int_const(3, 8);
        let c7 = arena.int_const(7, 8);
        let a = arena.uge(xv, c3);
        let b = arena.ule(xv, c7);
        let both = arena.and(a, b);
        let cs = [both];
        let mut dom = Domains::init(&arena, &cs);
        assert!(dom.propagate(&arena, &cs, 4));
        assert_eq!(dom.get(&arena, x), Interval::new(3, 7));
    }
}
