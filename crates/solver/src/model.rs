//! Variable assignments and concrete evaluation of terms.

use std::collections::BTreeMap;
use std::fmt;

use crate::term::{mask, Sort, TermArena, TermId, TermKind, VarId};

/// A concrete value produced by evaluating a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // Variant fields are self-describing.
pub enum Value {
    /// An unsigned integer of the given width.
    Int { value: u64, width: u32 },
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Returns the integer payload, panicking on booleans.
    pub fn expect_int(self) -> u64 {
        match self {
            Value::Int { value, .. } => value,
            Value::Bool(_) => panic!("expected integer value, found boolean"),
        }
    }

    /// Returns the boolean payload, panicking on integers.
    pub fn expect_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Int { .. } => panic!("expected boolean value, found integer"),
        }
    }
}

/// An assignment of concrete values to symbolic variables.
///
/// Variables not present in the model evaluate to 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: BTreeMap<VarId, u64>,
}

impl Model {
    /// Creates an empty model (all variables zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a value to a variable; the value is truncated to the
    /// variable's width at evaluation time.
    pub fn set(&mut self, var: VarId, value: u64) {
        self.values.insert(var, value);
    }

    /// Returns the value assigned to `var`, or 0 if unassigned.
    pub fn get(&self, var: VarId) -> u64 {
        self.values.get(&var).copied().unwrap_or(0)
    }

    /// Returns the value assigned to `var` if present.
    pub fn get_opt(&self, var: VarId) -> Option<u64> {
        self.values.get(&var).copied()
    }

    /// Returns true if the variable has an explicit assignment.
    pub fn contains(&self, var: VarId) -> bool {
        self.values.contains_key(&var)
    }

    /// Number of explicitly assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if no variable is explicitly assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over explicit assignments in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u64)> + '_ {
        self.values.iter().map(|(&v, &x)| (v, x))
    }

    /// Evaluates a term under this model.
    ///
    /// # Panics
    ///
    /// Panics if the term id does not belong to `arena`.
    pub fn eval(&self, arena: &TermArena, term: TermId) -> Value {
        match &arena.node(term).kind {
            TermKind::ConstInt { value, width } => Value::Int {
                value: *value,
                width: *width,
            },
            TermKind::ConstBool(b) => Value::Bool(*b),
            TermKind::Var(v) => {
                let width = arena.var_info(*v).width;
                Value::Int {
                    value: mask(self.get(*v), width),
                    width,
                }
            }
            TermKind::Bin { op, lhs, rhs } => {
                let a = self.eval(arena, *lhs).expect_int();
                let b = self.eval(arena, *rhs).expect_int();
                let width = arena.sort(term).width();
                Value::Int {
                    value: TermArena::eval_bin(*op, a, b, width),
                    width,
                }
            }
            TermKind::Cmp { op, lhs, rhs } => {
                let a = self.eval(arena, *lhs).expect_int();
                let b = self.eval(arena, *rhs).expect_int();
                Value::Bool(op.eval(a, b))
            }
            TermKind::BoolBin { op, lhs, rhs } => {
                let a = self.eval(arena, *lhs).expect_bool();
                let b = self.eval(arena, *rhs).expect_bool();
                Value::Bool(op.eval(a, b))
            }
            TermKind::BoolNot(x) => Value::Bool(!self.eval(arena, *x).expect_bool()),
            TermKind::BitNot(x) => {
                let width = arena.sort(term).width();
                Value::Int {
                    value: mask(!self.eval(arena, *x).expect_int(), width),
                    width,
                }
            }
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            } => {
                if self.eval(arena, *cond).expect_bool() {
                    self.eval(arena, *then_t)
                } else {
                    self.eval(arena, *else_t)
                }
            }
            TermKind::Resize { term: inner, width } => {
                let v = self.eval(arena, *inner).expect_int();
                Value::Int {
                    value: mask(v, *width),
                    width: *width,
                }
            }
        }
    }

    /// Evaluates a boolean term, returning its truth value.
    ///
    /// # Panics
    ///
    /// Panics if the term is not boolean-sorted.
    pub fn holds(&self, arena: &TermArena, term: TermId) -> bool {
        debug_assert_eq!(arena.sort(term), Sort::Bool);
        self.eval(arena, term).expect_bool()
    }

    /// Returns true if every constraint in the slice holds under this model.
    pub fn satisfies_all(&self, arena: &TermArena, constraints: &[TermId]) -> bool {
        constraints.iter().all(|&c| self.holds(arena, c))
    }

    /// Counts the constraints in the slice that do not hold under this model.
    pub fn count_violations(&self, arena: &TermArena, constraints: &[TermId]) -> usize {
        constraints
            .iter()
            .filter(|&&c| !self.holds(arena, c))
            .count()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, x)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}={x}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(VarId, u64)> for Model {
    fn from_iter<T: IntoIterator<Item = (VarId, u64)>>(iter: T) -> Self {
        Model {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unassigned_variables_default_to_zero() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 8);
        let xv = arena.var(x);
        let model = Model::new();
        assert_eq!(model.eval(&arena, xv), Value::Int { value: 0, width: 8 });
    }

    #[test]
    fn assignment_is_truncated_to_width() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 8);
        let xv = arena.var(x);
        let mut model = Model::new();
        model.set(x, 0x1ff);
        assert_eq!(model.eval(&arena, xv).expect_int(), 0xff);
    }

    #[test]
    fn eval_matches_arena_constant_folding() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 16);
        let y = arena.declare_var("y", 16);
        let xv = arena.var(x);
        let yv = arena.var(y);
        let sum = arena.add(xv, yv);
        let c = arena.int_const(100, 16);
        let cond = arena.ult(sum, c);

        let mut model = Model::new();
        model.set(x, 40);
        model.set(y, 50);
        assert!(model.holds(&arena, cond));
        model.set(y, 70);
        assert!(!model.holds(&arena, cond));
    }

    #[test]
    fn count_violations_counts_unsatisfied() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 8);
        let xv = arena.var(x);
        let c5 = arena.int_const(5, 8);
        let c9 = arena.int_const(9, 8);
        let c1 = arena.ugt(xv, c5);
        let c2 = arena.ult(xv, c9);
        let mut model = Model::new();
        model.set(x, 3);
        assert_eq!(model.count_violations(&arena, &[c1, c2]), 1);
        model.set(x, 7);
        assert_eq!(model.count_violations(&arena, &[c1, c2]), 0);
        assert!(model.satisfies_all(&arena, &[c1, c2]));
    }

    #[test]
    fn ite_evaluates_correct_branch() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 8);
        let xv = arena.var(x);
        let zero = arena.int_const(0, 8);
        let one = arena.int_const(1, 8);
        let two = arena.int_const(2, 8);
        let cond = arena.eq(xv, zero);
        let ite = arena.ite(cond, one, two);
        let mut model = Model::new();
        assert_eq!(model.eval(&arena, ite).expect_int(), 1);
        model.set(x, 5);
        assert_eq!(model.eval(&arena, ite).expect_int(), 2);
    }

    #[test]
    fn display_is_compact() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 8);
        let y = arena.declare_var("y", 8);
        // Referencing the arena keeps variable ids meaningful.
        let _ = (arena.var(x), arena.var(y));
        let model: Model = [(x, 1), (y, 2)].into_iter().collect();
        assert_eq!(model.to_string(), "{v0=1, v1=2}");
    }
}
