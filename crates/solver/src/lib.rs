//! # dice-solver
//!
//! An SMT-lite constraint solver over fixed-width unsigned integers and
//! booleans, built as the solving substrate for the DiCE concolic execution
//! engine (`dice-symexec`).
//!
//! The original DiCE prototype (USENIX ATC 2011) relies on the constraint
//! solver bundled with the Oasis/Crest concolic engines. This crate plays
//! the same role for the Rust reproduction: given the path constraints
//! recorded while a BGP UPDATE handler processes a message, and the negation
//! of one branch predicate, it produces a concrete input assignment that
//! drives execution down the other side of that branch.
//!
//! ## Example
//!
//! ```
//! use dice_solver::{Solver, TermArena};
//!
//! let mut arena = TermArena::new();
//! let metric = arena.declare_var("med", 32);
//! let m = arena.var(metric);
//! let hundred = arena.int_const(100, 32);
//! // The observed execution took the `med < 100` branch; ask the solver
//! // for an input taking the other side.
//! let negated = arena.uge(m, hundred);
//!
//! let mut solver = Solver::new();
//! let verdict = solver.solve(&mut arena, &[negated], None);
//! let model = verdict.model().expect("satisfiable");
//! assert!(model.get(metric) >= 100);
//! ```
//!
//! When many queries share a constraint prefix — the sibling negation
//! candidates of one concolic run — use the [`incremental`] module's
//! [`IncrementalSolver`]: a push/pop assertion stack that keeps
//! simplification results and propagated interval domains alive across
//! queries, answering each one identically to [`Solver::solve`] at a
//! fraction of the cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod incremental;
pub mod interval;
pub mod model;
pub mod simplify;
pub mod solver;
pub mod stats;
pub mod term;

pub use incremental::IncrementalSolver;
pub use interval::{Domains, Interval, Propagation};
pub use model::{Model, Value};
pub use simplify::{flatten_into, normalize, preprocess, Preprocessed};
pub use solver::{Solver, SolverConfig, Verdict};
pub use stats::SolverStats;
pub use term::{BinOp, BoolOp, CmpOp, Sort, TermArena, TermId, TermKind, VarId};
