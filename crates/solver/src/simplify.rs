//! Bottom-up simplification of constraint sets.
//!
//! The arena already folds constants at construction time; this module adds
//! a rewriting pass that runs before solving:
//!
//! * conjunctions are flattened into individual constraints,
//! * double negations and negated comparisons are normalized,
//! * constraints that are literally `true` are dropped,
//! * a literally-`false` constraint short-circuits the whole set.

use std::collections::HashSet;

use crate::term::{BoolOp, Sort, TermArena, TermId, TermKind};

/// The outcome of preprocessing a constraint set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Preprocessed {
    /// The set simplified to `false`: no model can satisfy it.
    Contradiction,
    /// The simplified, flattened, deduplicated constraints.
    Constraints(Vec<TermId>),
}

impl Preprocessed {
    /// Returns the constraint list, or `None` for a contradiction.
    pub fn constraints(&self) -> Option<&[TermId]> {
        match self {
            Preprocessed::Contradiction => None,
            Preprocessed::Constraints(cs) => Some(cs),
        }
    }
}

/// Simplifies and flattens a conjunction of constraints.
pub fn preprocess(arena: &mut TermArena, constraints: &[TermId]) -> Preprocessed {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for &c in constraints {
        if !flatten_into(arena, c, &mut seen, &mut out) {
            return Preprocessed::Contradiction;
        }
    }
    // Detect the trivial `p` and `not p` contradiction after flattening.
    for &c in &out {
        let neg = arena.not(c);
        if seen.contains(&neg) {
            return Preprocessed::Contradiction;
        }
    }
    out.sort();
    Preprocessed::Constraints(out)
}

/// Incrementally flattens one constraint into an accumulated set: normalizes
/// it, splits conjunctions, drops literal `true`s, and appends any new atoms
/// to `out` while recording them in `seen` for deduplication.
///
/// Returns `false` when the constraint is literally `false` — the caller's
/// accumulated set has become a contradiction. The `p` and `not p` check is
/// *not* performed here (it needs `arena.not`, and the incremental session
/// interleaves it with its own bookkeeping); callers wanting the full
/// [`preprocess`] behavior must run it over `out` afterwards.
///
/// This is the stack-aware entry point used by
/// [`crate::incremental::IncrementalSolver`]: across a batched session,
/// `seen`/`out` persist, so each asserted term is simplified exactly once no
/// matter how many queries share it.
pub fn flatten_into(
    arena: &mut TermArena,
    constraint: TermId,
    seen: &mut HashSet<TermId>,
    out: &mut Vec<TermId>,
) -> bool {
    let mut work: Vec<TermId> = vec![constraint];
    while let Some(c) = work.pop() {
        let c = normalize(arena, c);
        match &arena.node(c).kind {
            TermKind::ConstBool(true) => continue,
            TermKind::ConstBool(false) => return false,
            TermKind::BoolBin {
                op: BoolOp::And,
                lhs,
                rhs,
            } => {
                work.push(*lhs);
                work.push(*rhs);
            }
            _ => {
                if seen.insert(c) {
                    out.push(c);
                }
            }
        }
    }
    true
}

/// Normalizes a boolean term: pushes negations into comparisons and removes
/// double negations. Non-boolean terms are returned unchanged.
pub fn normalize(arena: &mut TermArena, term: TermId) -> TermId {
    if arena.sort(term) != Sort::Bool {
        return term;
    }
    match arena.node(term).kind.clone() {
        TermKind::BoolNot(inner) => {
            let inner = normalize(arena, inner);
            arena.not(inner)
        }
        TermKind::BoolBin { op, lhs, rhs } => {
            let l = normalize(arena, lhs);
            let r = normalize(arena, rhs);
            arena.bool_bin(op, l, r)
        }
        _ => term,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_constraints_are_dropped() {
        let mut arena = TermArena::new();
        let t = arena.bool_const(true);
        let x = arena.declare_var("x", 8);
        let xv = arena.var(x);
        let c1 = arena.int_const(1, 8);
        let c = arena.eq(xv, c1);
        match preprocess(&mut arena, &[t, c, t]) {
            Preprocessed::Constraints(cs) => assert_eq!(cs, vec![c]),
            Preprocessed::Contradiction => panic!("unexpected contradiction"),
        }
    }

    #[test]
    fn false_constraint_is_contradiction() {
        let mut arena = TermArena::new();
        let f = arena.bool_const(false);
        let x = arena.declare_var("x", 8);
        let xv = arena.var(x);
        let c1 = arena.int_const(1, 8);
        let c = arena.eq(xv, c1);
        assert_eq!(preprocess(&mut arena, &[c, f]), Preprocessed::Contradiction);
    }

    #[test]
    fn conjunctions_are_flattened() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 8);
        let xv = arena.var(x);
        let c1 = arena.int_const(1, 8);
        let c9 = arena.int_const(9, 8);
        let a = arena.ugt(xv, c1);
        let b = arena.ult(xv, c9);
        let both = arena.and(a, b);
        match preprocess(&mut arena, &[both]) {
            Preprocessed::Constraints(cs) => {
                assert_eq!(cs.len(), 2);
                assert!(cs.contains(&a) && cs.contains(&b));
            }
            Preprocessed::Contradiction => panic!("unexpected contradiction"),
        }
    }

    #[test]
    fn p_and_not_p_is_contradiction() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 8);
        let xv = arena.var(x);
        let c5 = arena.int_const(5, 8);
        let p = arena.eq(xv, c5);
        let np = arena.not(p);
        assert_eq!(
            preprocess(&mut arena, &[p, np]),
            Preprocessed::Contradiction
        );
    }

    #[test]
    fn duplicates_are_removed() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 8);
        let xv = arena.var(x);
        let c5 = arena.int_const(5, 8);
        let p = arena.eq(xv, c5);
        match preprocess(&mut arena, &[p, p, p]) {
            Preprocessed::Constraints(cs) => assert_eq!(cs, vec![p]),
            Preprocessed::Contradiction => panic!("unexpected contradiction"),
        }
    }

    #[test]
    fn double_negation_normalizes() {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", 8);
        let xv = arena.var(x);
        let c5 = arena.int_const(5, 8);
        let p = arena.ult(xv, c5);
        let np = arena.not(p);
        let nnp = arena.not(np);
        assert_eq!(normalize(&mut arena, nnp), p);
    }
}
