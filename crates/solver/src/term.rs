//! Hash-consed term arena for the DiCE constraint language.
//!
//! Terms are fixed-width unsigned integers (1 to 64 bits) and booleans.
//! All integer arithmetic wraps modulo `2^width`, mirroring the machine
//! semantics of the BGP message fields (prefix bits, masks, ASNs, metric
//! values) that the concolic engine reasons about.
//!
//! The arena performs *hash-consing*: structurally identical terms are
//! stored once and identified by a [`TermId`]. Construction methods also
//! perform light constant folding so that fully-concrete subexpressions
//! never reach the solver.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a term inside a [`TermArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// Returns the raw index of this term in its arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a symbolic variable declared in a [`TermArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Returns the raw index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The sort (type) of a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// A boolean value.
    Bool,
    /// An unsigned integer of the given bit width (1..=64).
    Int(u32),
}

impl Sort {
    /// Returns the bit width for integer sorts, or 1 for booleans.
    pub fn width(self) -> u32 {
        match self {
            Sort::Bool => 1,
            Sort::Int(w) => w,
        }
    }

    /// Returns true if this sort is an integer sort.
    pub fn is_int(self) -> bool {
        matches!(self, Sort::Int(_))
    }
}

/// Metadata describing a declared symbolic variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Human-readable name (e.g. `"nlri.prefix"`).
    pub name: String,
    /// Bit width of the variable (1..=64).
    pub width: u32,
}

/// Binary integer operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (division by zero yields all-ones, like SMT-LIB).
    UDiv,
    /// Unsigned remainder (remainder by zero yields the dividend).
    URem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amounts >= width yield 0).
    Shl,
    /// Logical shift right (shift amounts >= width yield 0).
    Lshr,
}

/// Binary comparison operators producing booleans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Disequality.
    Ne,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
}

impl CmpOp {
    /// Returns the comparison that holds exactly when `self` does not.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Ult => CmpOp::Uge,
            CmpOp::Ule => CmpOp::Ugt,
            CmpOp::Ugt => CmpOp::Ule,
            CmpOp::Uge => CmpOp::Ult,
        }
    }

    /// Returns the comparison obtained by swapping the operands.
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Ult => CmpOp::Ugt,
            CmpOp::Ule => CmpOp::Uge,
            CmpOp::Ugt => CmpOp::Ult,
            CmpOp::Uge => CmpOp::Ule,
        }
    }

    /// Evaluates the comparison on concrete unsigned values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Ult => a < b,
            CmpOp::Ule => a <= b,
            CmpOp::Ugt => a > b,
            CmpOp::Uge => a >= b,
        }
    }
}

/// Binary boolean connectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoolOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Implication.
    Implies,
    /// Exclusive or.
    Xor,
}

impl BoolOp {
    /// Evaluates the connective on concrete booleans.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            BoolOp::And => a && b,
            BoolOp::Or => a || b,
            BoolOp::Implies => !a || b,
            BoolOp::Xor => a ^ b,
        }
    }
}

/// The structural kind of a term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // Variant fields are self-describing.
pub enum TermKind {
    /// Integer constant with the given width.
    ConstInt { value: u64, width: u32 },
    /// Boolean constant.
    ConstBool(bool),
    /// Symbolic variable reference.
    Var(VarId),
    /// Binary integer operation.
    Bin { op: BinOp, lhs: TermId, rhs: TermId },
    /// Comparison of two integer terms.
    Cmp { op: CmpOp, lhs: TermId, rhs: TermId },
    /// Binary boolean connective.
    BoolBin {
        op: BoolOp,
        lhs: TermId,
        rhs: TermId,
    },
    /// Boolean negation.
    BoolNot(TermId),
    /// Bitwise complement of an integer term.
    BitNot(TermId),
    /// If-then-else over integer terms, with a boolean condition.
    Ite {
        cond: TermId,
        then_t: TermId,
        else_t: TermId,
    },
    /// Zero-extension (or truncation) of an integer term to a new width.
    Resize { term: TermId, width: u32 },
}

/// A term node: its kind plus its cached sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermNode {
    /// Structural payload.
    pub kind: TermKind,
    /// Sort of the term.
    pub sort: Sort,
}

/// Truncates `value` to `width` bits.
pub fn mask(value: u64, width: u32) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

/// Returns the maximum value representable in `width` bits.
pub fn max_value(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// A hash-consed arena of terms and symbolic variables.
///
/// # Examples
///
/// ```
/// use dice_solver::term::TermArena;
///
/// let mut arena = TermArena::new();
/// let x = arena.declare_var("x", 8);
/// let xv = arena.var(x);
/// let five = arena.int_const(5, 8);
/// let sum = arena.add(xv, five);
/// let ten = arena.int_const(10, 8);
/// let cond = arena.eq(sum, ten);
/// assert!(arena.node(cond).sort.is_int() == false);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TermArena {
    nodes: Vec<TermNode>,
    dedup: HashMap<TermKind, TermId>,
    vars: Vec<VarInfo>,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms stored.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns true if no terms have been created.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of declared variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Returns the node for a term id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this arena.
    pub fn node(&self, id: TermId) -> &TermNode {
        &self.nodes[id.index()]
    }

    /// Returns the sort of a term.
    pub fn sort(&self, id: TermId) -> Sort {
        self.nodes[id.index()].sort
    }

    /// Returns variable metadata.
    pub fn var_info(&self, var: VarId) -> &VarInfo {
        &self.vars[var.index()]
    }

    /// Iterates over all declared variables.
    pub fn vars(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, info)| (VarId(i as u32), info))
    }

    /// Declares a fresh symbolic variable with the given name and width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn declare_var(&mut self, name: impl Into<String>, width: u32) -> VarId {
        assert!(
            (1..=64).contains(&width),
            "variable width must be in 1..=64"
        );
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.into(),
            width,
        });
        id
    }

    fn intern(&mut self, kind: TermKind, sort: Sort) -> TermId {
        if let Some(&id) = self.dedup.get(&kind) {
            return id;
        }
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(TermNode {
            kind: kind.clone(),
            sort,
        });
        self.dedup.insert(kind, id);
        id
    }

    /// Creates an integer constant of the given width.
    pub fn int_const(&mut self, value: u64, width: u32) -> TermId {
        let value = mask(value, width);
        self.intern(TermKind::ConstInt { value, width }, Sort::Int(width))
    }

    /// Creates a boolean constant.
    pub fn bool_const(&mut self, value: bool) -> TermId {
        self.intern(TermKind::ConstBool(value), Sort::Bool)
    }

    /// Creates a reference to a declared variable.
    pub fn var(&mut self, var: VarId) -> TermId {
        let width = self.vars[var.index()].width;
        self.intern(TermKind::Var(var), Sort::Int(width))
    }

    /// Returns the constant integer value of a term, if it is one.
    pub fn as_const_int(&self, id: TermId) -> Option<(u64, u32)> {
        match self.node(id).kind {
            TermKind::ConstInt { value, width } => Some((value, width)),
            _ => None,
        }
    }

    /// Returns the constant boolean value of a term, if it is one.
    pub fn as_const_bool(&self, id: TermId) -> Option<bool> {
        match self.node(id).kind {
            TermKind::ConstBool(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the variable referenced by a term, if it is a plain variable.
    pub fn as_var(&self, id: TermId) -> Option<VarId> {
        match self.node(id).kind {
            TermKind::Var(v) => Some(v),
            _ => None,
        }
    }

    fn int_width(&self, id: TermId) -> u32 {
        match self.sort(id) {
            Sort::Int(w) => w,
            Sort::Bool => panic!("expected integer term, found boolean {id}"),
        }
    }

    /// Applies a concrete binary integer operation with wrapping semantics.
    pub fn eval_bin(op: BinOp, a: u64, b: u64, width: u32) -> u64 {
        let r = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::UDiv => match a.checked_div(b) {
                Some(q) => q,
                None => max_value(width),
            },
            BinOp::URem => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => {
                if b >= width as u64 {
                    0
                } else {
                    a << b
                }
            }
            BinOp::Lshr => {
                if b >= width as u64 {
                    0
                } else {
                    a >> b
                }
            }
        };
        mask(r, width)
    }

    /// Creates a binary integer operation term, folding constants.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths or are not integers.
    pub fn bin(&mut self, op: BinOp, lhs: TermId, rhs: TermId) -> TermId {
        let wl = self.int_width(lhs);
        let wr = self.int_width(rhs);
        assert_eq!(wl, wr, "width mismatch in {op:?}: {wl} vs {wr}");
        if let (Some((a, _)), Some((b, _))) = (self.as_const_int(lhs), self.as_const_int(rhs)) {
            return self.int_const(Self::eval_bin(op, a, b, wl), wl);
        }
        // Identity simplifications.
        if let Some((b, _)) = self.as_const_int(rhs) {
            match (op, b) {
                (
                    BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Lshr,
                    0,
                ) => return lhs,
                (BinOp::Mul, 1) | (BinOp::UDiv, 1) => return lhs,
                (BinOp::Mul | BinOp::And, 0) => return self.int_const(0, wl),
                (BinOp::And, b) if b == max_value(wl) => return lhs,
                _ => {}
            }
        }
        if let Some((a, _)) = self.as_const_int(lhs) {
            match (op, a) {
                (BinOp::Add | BinOp::Or | BinOp::Xor, 0) => return rhs,
                (BinOp::Mul, 1) => return rhs,
                (BinOp::Mul | BinOp::And, 0) => return self.int_const(0, wl),
                (BinOp::And, a) if a == max_value(wl) => return rhs,
                _ => {}
            }
        }
        self.intern(TermKind::Bin { op, lhs, rhs }, Sort::Int(wl))
    }

    /// Wrapping addition.
    pub fn add(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.bin(BinOp::Mul, lhs, rhs)
    }

    /// Unsigned division.
    pub fn udiv(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.bin(BinOp::UDiv, lhs, rhs)
    }

    /// Unsigned remainder.
    pub fn urem(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.bin(BinOp::URem, lhs, rhs)
    }

    /// Bitwise and.
    pub fn bitand(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.bin(BinOp::And, lhs, rhs)
    }

    /// Bitwise or.
    pub fn bitor(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.bin(BinOp::Or, lhs, rhs)
    }

    /// Bitwise xor.
    pub fn bitxor(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.bin(BinOp::Xor, lhs, rhs)
    }

    /// Logical shift left.
    pub fn shl(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.bin(BinOp::Shl, lhs, rhs)
    }

    /// Logical shift right.
    pub fn lshr(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.bin(BinOp::Lshr, lhs, rhs)
    }

    /// Bitwise complement.
    pub fn bitnot(&mut self, term: TermId) -> TermId {
        let w = self.int_width(term);
        if let Some((v, _)) = self.as_const_int(term) {
            return self.int_const(!v, w);
        }
        self.intern(TermKind::BitNot(term), Sort::Int(w))
    }

    /// Creates a comparison term, folding constants.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different widths or are not integers.
    pub fn cmp(&mut self, op: CmpOp, lhs: TermId, rhs: TermId) -> TermId {
        let wl = self.int_width(lhs);
        let wr = self.int_width(rhs);
        assert_eq!(wl, wr, "width mismatch in {op:?}: {wl} vs {wr}");
        if let (Some((a, _)), Some((b, _))) = (self.as_const_int(lhs), self.as_const_int(rhs)) {
            return self.bool_const(op.eval(a, b));
        }
        if lhs == rhs {
            return self.bool_const(matches!(op, CmpOp::Eq | CmpOp::Ule | CmpOp::Uge));
        }
        self.intern(TermKind::Cmp { op, lhs, rhs }, Sort::Bool)
    }

    /// Equality comparison.
    pub fn eq(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.cmp(CmpOp::Eq, lhs, rhs)
    }

    /// Disequality comparison.
    pub fn ne(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.cmp(CmpOp::Ne, lhs, rhs)
    }

    /// Unsigned less-than.
    pub fn ult(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.cmp(CmpOp::Ult, lhs, rhs)
    }

    /// Unsigned less-or-equal.
    pub fn ule(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.cmp(CmpOp::Ule, lhs, rhs)
    }

    /// Unsigned greater-than.
    pub fn ugt(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.cmp(CmpOp::Ugt, lhs, rhs)
    }

    /// Unsigned greater-or-equal.
    pub fn uge(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.cmp(CmpOp::Uge, lhs, rhs)
    }

    /// Creates a binary boolean connective, folding constants.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not booleans.
    pub fn bool_bin(&mut self, op: BoolOp, lhs: TermId, rhs: TermId) -> TermId {
        assert_eq!(self.sort(lhs), Sort::Bool, "expected boolean lhs");
        assert_eq!(self.sort(rhs), Sort::Bool, "expected boolean rhs");
        if let (Some(a), Some(b)) = (self.as_const_bool(lhs), self.as_const_bool(rhs)) {
            return self.bool_const(op.eval(a, b));
        }
        if let Some(a) = self.as_const_bool(lhs) {
            match (op, a) {
                (BoolOp::And, true) | (BoolOp::Or, false) | (BoolOp::Implies, true) => return rhs,
                (BoolOp::And, false) => return self.bool_const(false),
                (BoolOp::Or, true) | (BoolOp::Implies, false) => return self.bool_const(true),
                (BoolOp::Xor, false) => return rhs,
                (BoolOp::Xor, true) => return self.not(rhs),
            }
        }
        if let Some(b) = self.as_const_bool(rhs) {
            match (op, b) {
                (BoolOp::And, true) | (BoolOp::Or, false) => return lhs,
                (BoolOp::And, false) => return self.bool_const(false),
                (BoolOp::Or, true) | (BoolOp::Implies, true) => return self.bool_const(true),
                (BoolOp::Implies, false) => return self.not(lhs),
                (BoolOp::Xor, false) => return lhs,
                (BoolOp::Xor, true) => return self.not(lhs),
            }
        }
        self.intern(TermKind::BoolBin { op, lhs, rhs }, Sort::Bool)
    }

    /// Boolean conjunction.
    pub fn and(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.bool_bin(BoolOp::And, lhs, rhs)
    }

    /// Boolean disjunction.
    pub fn or(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.bool_bin(BoolOp::Or, lhs, rhs)
    }

    /// Boolean implication.
    pub fn implies(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.bool_bin(BoolOp::Implies, lhs, rhs)
    }

    /// Boolean negation.
    ///
    /// Negating a comparison produces the complementary comparison rather
    /// than a wrapping `BoolNot`, which keeps constraints in the solvable
    /// `lhs op rhs` shape.
    pub fn not(&mut self, term: TermId) -> TermId {
        if let Some(b) = self.as_const_bool(term) {
            return self.bool_const(!b);
        }
        if let TermKind::Cmp { op, lhs, rhs } = self.node(term).kind {
            return self.cmp(op.negate(), lhs, rhs);
        }
        if let TermKind::BoolNot(inner) = self.node(term).kind {
            return inner;
        }
        self.intern(TermKind::BoolNot(term), Sort::Bool)
    }

    /// If-then-else over integer terms.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not boolean or the branches have mismatched widths.
    pub fn ite(&mut self, cond: TermId, then_t: TermId, else_t: TermId) -> TermId {
        assert_eq!(self.sort(cond), Sort::Bool, "ite condition must be boolean");
        let wt = self.int_width(then_t);
        let we = self.int_width(else_t);
        assert_eq!(wt, we, "ite branch width mismatch");
        if let Some(c) = self.as_const_bool(cond) {
            return if c { then_t } else { else_t };
        }
        if then_t == else_t {
            return then_t;
        }
        self.intern(
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            },
            Sort::Int(wt),
        )
    }

    /// Zero-extends or truncates an integer term to `width` bits.
    pub fn resize(&mut self, term: TermId, width: u32) -> TermId {
        assert!((1..=64).contains(&width), "resize width must be in 1..=64");
        let w = self.int_width(term);
        if w == width {
            return term;
        }
        if let Some((v, _)) = self.as_const_int(term) {
            return self.int_const(v, width);
        }
        self.intern(TermKind::Resize { term, width }, Sort::Int(width))
    }

    /// Collects the set of variables appearing in a term.
    pub fn collect_vars(&self, id: TermId, out: &mut Vec<VarId>) {
        let mut stack = vec![id];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(t) = stack.pop() {
            if seen[t.index()] {
                continue;
            }
            seen[t.index()] = true;
            match &self.node(t).kind {
                TermKind::ConstInt { .. } | TermKind::ConstBool(_) => {}
                TermKind::Var(v) => {
                    if !out.contains(v) {
                        out.push(*v);
                    }
                }
                TermKind::Bin { lhs, rhs, .. }
                | TermKind::Cmp { lhs, rhs, .. }
                | TermKind::BoolBin { lhs, rhs, .. } => {
                    stack.push(*lhs);
                    stack.push(*rhs);
                }
                TermKind::BoolNot(x) | TermKind::BitNot(x) => stack.push(*x),
                TermKind::Ite {
                    cond,
                    then_t,
                    else_t,
                } => {
                    stack.push(*cond);
                    stack.push(*then_t);
                    stack.push(*else_t);
                }
                TermKind::Resize { term, .. } => stack.push(*term),
            }
        }
    }

    /// Pretty-prints a term as an s-expression for debugging.
    pub fn display(&self, id: TermId) -> String {
        match &self.node(id).kind {
            TermKind::ConstInt { value, width } => format!("{value}:{width}"),
            TermKind::ConstBool(b) => b.to_string(),
            TermKind::Var(v) => self.var_info(*v).name.clone(),
            TermKind::Bin { op, lhs, rhs } => {
                format!("({op:?} {} {})", self.display(*lhs), self.display(*rhs))
            }
            TermKind::Cmp { op, lhs, rhs } => {
                format!("({op:?} {} {})", self.display(*lhs), self.display(*rhs))
            }
            TermKind::BoolBin { op, lhs, rhs } => {
                format!("({op:?} {} {})", self.display(*lhs), self.display(*rhs))
            }
            TermKind::BoolNot(x) => format!("(not {})", self.display(*x)),
            TermKind::BitNot(x) => format!("(bvnot {})", self.display(*x)),
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            } => format!(
                "(ite {} {} {})",
                self.display(*cond),
                self.display(*then_t),
                self.display(*else_t)
            ),
            TermKind::Resize { term, width } => {
                format!("(resize {} {width})", self.display(*term))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_truncates() {
        assert_eq!(mask(0x1ff, 8), 0xff);
        assert_eq!(mask(0x1ff, 16), 0x1ff);
        assert_eq!(mask(u64::MAX, 64), u64::MAX);
        assert_eq!(max_value(8), 255);
        assert_eq!(max_value(64), u64::MAX);
    }

    #[test]
    fn hash_consing_dedups() {
        let mut a = TermArena::new();
        let x = a.declare_var("x", 32);
        let t1 = a.var(x);
        let t2 = a.var(x);
        assert_eq!(t1, t2);
        let c1 = a.int_const(7, 32);
        let c2 = a.int_const(7, 32);
        assert_eq!(c1, c2);
        let s1 = a.add(t1, c1);
        let s2 = a.add(t2, c2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn constant_folding() {
        let mut a = TermArena::new();
        let c3 = a.int_const(3, 8);
        let c250 = a.int_const(250, 8);
        let sum = a.add(c3, c250);
        assert_eq!(a.as_const_int(sum), Some((253, 8)));
        let wrap = a.add(c250, c250);
        assert_eq!(a.as_const_int(wrap), Some((244, 8)));
        let cmp = a.ult(c3, c250);
        assert_eq!(a.as_const_bool(cmp), Some(true));
    }

    #[test]
    fn identity_simplifications() {
        let mut a = TermArena::new();
        let x = a.declare_var("x", 16);
        let xv = a.var(x);
        let zero = a.int_const(0, 16);
        let one = a.int_const(1, 16);
        assert_eq!(a.add(xv, zero), xv);
        assert_eq!(a.mul(xv, one), xv);
        let anded = a.bitand(xv, zero);
        assert_eq!(a.as_const_int(anded), Some((0, 16)));
        let all = a.int_const(u16::MAX as u64, 16);
        assert_eq!(a.bitand(xv, all), xv);
    }

    #[test]
    fn negation_of_comparison_flips_operator() {
        let mut a = TermArena::new();
        let x = a.declare_var("x", 8);
        let xv = a.var(x);
        let c = a.int_const(10, 8);
        let lt = a.ult(xv, c);
        let not_lt = a.not(lt);
        match a.node(not_lt).kind {
            TermKind::Cmp { op, .. } => assert_eq!(op, CmpOp::Uge),
            ref k => panic!("expected comparison, got {k:?}"),
        }
        // Double negation returns the original term.
        assert_eq!(a.not(not_lt), lt);
    }

    #[test]
    fn ite_folds_on_constant_condition() {
        let mut a = TermArena::new();
        let t = a.bool_const(true);
        let c1 = a.int_const(1, 32);
        let c2 = a.int_const(2, 32);
        assert_eq!(a.ite(t, c1, c2), c1);
        let f = a.bool_const(false);
        assert_eq!(a.ite(f, c1, c2), c2);
    }

    #[test]
    fn collect_vars_finds_all() {
        let mut a = TermArena::new();
        let x = a.declare_var("x", 8);
        let y = a.declare_var("y", 8);
        let xv = a.var(x);
        let yv = a.var(y);
        let sum = a.add(xv, yv);
        let c = a.int_const(3, 8);
        let cond = a.ugt(sum, c);
        let mut vars = Vec::new();
        a.collect_vars(cond, &mut vars);
        vars.sort();
        assert_eq!(vars, vec![x, y]);
    }

    #[test]
    fn eval_bin_division_by_zero() {
        assert_eq!(TermArena::eval_bin(BinOp::UDiv, 10, 0, 8), 255);
        assert_eq!(TermArena::eval_bin(BinOp::URem, 10, 0, 8), 10);
        assert_eq!(TermArena::eval_bin(BinOp::Shl, 1, 9, 8), 0);
    }

    #[test]
    fn resize_zero_extends_and_truncates() {
        let mut a = TermArena::new();
        let c = a.int_const(0x1ff, 16);
        let narrowed = a.resize(c, 8);
        assert_eq!(a.as_const_int(narrowed), Some((0xff, 8)));
        let widened = a.resize(narrowed, 32);
        assert_eq!(a.as_const_int(widened), Some((0xff, 32)));
    }

    #[test]
    fn display_is_readable() {
        let mut a = TermArena::new();
        let x = a.declare_var("asn", 32);
        let xv = a.var(x);
        let c = a.int_const(65000, 32);
        let e = a.eq(xv, c);
        assert_eq!(a.display(e), "(Eq asn 65000:32)");
    }
}
