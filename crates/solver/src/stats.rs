//! Solver statistics, reported by the DiCE exploration engine.
//!
//! Counters fall into three groups:
//!
//! * **query outcomes** — how many queries were answered and how;
//! * **phase timers** — wall-clock time split by pipeline phase
//!   (preprocessing, interval propagation, enumeration/search), so batched
//!   sessions can show where a query's time went instead of lumping
//!   everything into one cumulative timer;
//! * **incremental-session counters** — pushes, pops and how much
//!   preprocessing/propagation work the assertion stack reused across
//!   queries ([`crate::incremental::IncrementalSolver`]).

use std::fmt;
use std::time::Duration;

/// Counters collected across solver queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Total number of satisfiability queries (one-shot `solve` calls plus
    /// incremental `check` calls).
    pub queries: u64,
    /// Queries answered `Sat`.
    pub sat: u64,
    /// Queries answered `Unsat`.
    pub unsat: u64,
    /// Queries answered `Unknown`.
    pub unknown: u64,
    /// Queries decided purely by preprocessing (constant contradiction or
    /// empty constraint set).
    pub decided_by_preprocess: u64,
    /// Queries decided by interval propagation.
    pub decided_by_propagation: u64,
    /// Queries decided by exhaustive enumeration.
    pub decided_by_enumeration: u64,
    /// Queries decided by local search.
    pub decided_by_search: u64,
    /// Total number of candidate models evaluated.
    pub candidates_evaluated: u64,
    /// Accumulated query wall-clock time in nanoseconds.
    pub total_time_ns: u64,
    /// Time spent in simplification/flattening passes, in nanoseconds.
    /// For incremental sessions this accrues at assertion time, outside
    /// `total_time_ns`.
    pub preprocess_time_ns: u64,
    /// Time spent in interval propagation, in nanoseconds.
    pub propagation_time_ns: u64,
    /// Time spent enumerating or searching for models, in nanoseconds.
    pub search_time_ns: u64,
    /// Number of simplification passes run (one per one-shot query; one per
    /// asserted term in an incremental session).
    pub preprocess_passes: u64,
    /// Queries answered through an incremental session (`check` calls).
    pub incremental_queries: u64,
    /// Frames pushed on incremental assertion stacks.
    pub session_pushes: u64,
    /// Frames popped from incremental assertion stacks.
    pub session_pops: u64,
    /// Constraints whose preprocessing and propagation results were reused
    /// from the assertion stack instead of being recomputed, summed over
    /// incremental queries.
    pub assertions_reused: u64,
    /// Constraints newly folded into interval domains by incremental
    /// queries.
    pub assertions_propagated: u64,
    /// Queries derived from *policy* branch sites (router-configuration
    /// filter arms) rather than message-field branches. Attributed by the
    /// exploration engine, which knows each candidate's provenance.
    pub policy_queries: u64,
    /// Of the constraint work reused from assertion stacks
    /// ([`SolverStats::assertions_reused`]), the share reused by
    /// policy-derived queries.
    pub policy_assertions_reused: u64,
}

impl SolverStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates another statistics block into this one.
    pub fn merge(&mut self, other: &SolverStats) {
        self.queries += other.queries;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.unknown += other.unknown;
        self.decided_by_preprocess += other.decided_by_preprocess;
        self.decided_by_propagation += other.decided_by_propagation;
        self.decided_by_enumeration += other.decided_by_enumeration;
        self.decided_by_search += other.decided_by_search;
        self.candidates_evaluated += other.candidates_evaluated;
        self.total_time_ns += other.total_time_ns;
        self.preprocess_time_ns += other.preprocess_time_ns;
        self.propagation_time_ns += other.propagation_time_ns;
        self.search_time_ns += other.search_time_ns;
        self.preprocess_passes += other.preprocess_passes;
        self.incremental_queries += other.incremental_queries;
        self.session_pushes += other.session_pushes;
        self.session_pops += other.session_pops;
        self.assertions_reused += other.assertions_reused;
        self.assertions_propagated += other.assertions_propagated;
        self.policy_queries += other.policy_queries;
        self.policy_assertions_reused += other.policy_assertions_reused;
    }

    /// Records elapsed time for one query.
    pub fn record_time(&mut self, d: Duration) {
        self.total_time_ns += d.as_nanos() as u64;
    }

    /// Average time per query.
    pub fn mean_query_time(&self) -> Duration {
        match self.total_time_ns.checked_div(self.queries) {
            Some(mean) => Duration::from_nanos(mean),
            None => Duration::ZERO,
        }
    }

    /// Fraction of queries that produced a definite answer (sat or unsat).
    pub fn decision_rate(&self) -> f64 {
        if self.queries == 0 {
            return 1.0;
        }
        (self.sat + self.unsat) as f64 / self.queries as f64
    }

    /// Fraction of constraint work reused from an assertion stack across
    /// incremental queries, in `[0, 1]`. `0.0` when nothing was batched.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.assertions_reused + self.assertions_propagated;
        if total == 0 {
            return 0.0;
        }
        self.assertions_reused as f64 / total as f64
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queries={} sat={} unsat={} unknown={} mean={:?}",
            self.queries,
            self.sat,
            self.unsat,
            self.unknown,
            self.mean_query_time()
        )?;
        let decided = self.decided_by_preprocess
            + self.decided_by_propagation
            + self.decided_by_enumeration
            + self.decided_by_search;
        if decided > 0 {
            write!(
                f,
                " decided pre/prop/enum/search={}/{}/{}/{}",
                self.decided_by_preprocess,
                self.decided_by_propagation,
                self.decided_by_enumeration,
                self.decided_by_search,
            )?;
        }
        if self.incremental_queries > 0 {
            write!(
                f,
                " incremental={} reuse={:.0}% (push/pop {}/{})",
                self.incremental_queries,
                self.reuse_rate() * 100.0,
                self.session_pushes,
                self.session_pops,
            )?;
        }
        if self.policy_queries > 0 {
            write!(
                f,
                " policy={} policy_reused={}",
                self.policy_queries, self.policy_assertions_reused,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SolverStats {
            queries: 2,
            sat: 1,
            unsat: 1,
            ..Default::default()
        };
        let b = SolverStats {
            queries: 3,
            sat: 2,
            unknown: 1,
            incremental_queries: 3,
            assertions_reused: 5,
            assertions_propagated: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.queries, 5);
        assert_eq!(a.sat, 3);
        assert_eq!(a.unsat, 1);
        assert_eq!(a.unknown, 1);
        assert_eq!(a.incremental_queries, 3);
        assert_eq!(a.assertions_reused, 5);
    }

    #[test]
    fn decision_rate_handles_zero_queries() {
        let s = SolverStats::new();
        assert_eq!(s.decision_rate(), 1.0);
        let s2 = SolverStats {
            queries: 4,
            sat: 1,
            unsat: 1,
            unknown: 2,
            ..Default::default()
        };
        assert!((s2.decision_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mean_query_time() {
        let mut s = SolverStats::new();
        s.queries = 2;
        s.record_time(Duration::from_micros(10));
        s.record_time(Duration::from_micros(30));
        assert_eq!(s.mean_query_time(), Duration::from_micros(20));
    }

    #[test]
    fn policy_counters_merge_and_display_conditionally() {
        let mut a = SolverStats::new();
        // No policy queries: the display stays byte-identical to before.
        assert!(!a.to_string().contains("policy"));
        let b = SolverStats {
            policy_queries: 4,
            policy_assertions_reused: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.policy_queries, 4);
        assert_eq!(a.policy_assertions_reused, 7);
        let text = a.to_string();
        assert!(text.contains("policy=4"));
        assert!(text.contains("policy_reused=7"));
    }

    #[test]
    fn decided_phase_segment_renders_only_when_nonzero() {
        let zero = SolverStats::new();
        assert_eq!(
            zero.to_string(),
            "queries=0 sat=0 unsat=0 unknown=0 mean=0ns"
        );
        let s = SolverStats {
            queries: 5,
            sat: 4,
            unsat: 1,
            decided_by_propagation: 3,
            decided_by_search: 2,
            ..Default::default()
        };
        assert!(s
            .to_string()
            .contains("decided pre/prop/enum/search=0/3/0/2"));
    }

    #[test]
    fn reuse_rate_reflects_batching() {
        let mut s = SolverStats::new();
        assert_eq!(s.reuse_rate(), 0.0);
        s.assertions_reused = 3;
        s.assertions_propagated = 1;
        assert!((s.reuse_rate() - 0.75).abs() < 1e-9);
        s.incremental_queries = 2;
        let text = s.to_string();
        assert!(text.contains("incremental=2"));
        assert!(text.contains("reuse=75%"));
    }
}
