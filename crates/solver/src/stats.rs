//! Solver statistics, reported by the DiCE exploration engine.

use std::fmt;
use std::time::Duration;

/// Counters collected across solver queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Total number of `solve` calls.
    pub queries: u64,
    /// Queries answered `Sat`.
    pub sat: u64,
    /// Queries answered `Unsat`.
    pub unsat: u64,
    /// Queries answered `Unknown`.
    pub unknown: u64,
    /// Queries decided purely by preprocessing (constant contradiction or
    /// empty constraint set).
    pub decided_by_preprocess: u64,
    /// Queries decided by interval propagation.
    pub decided_by_propagation: u64,
    /// Queries decided by exhaustive enumeration.
    pub decided_by_enumeration: u64,
    /// Queries decided by local search.
    pub decided_by_search: u64,
    /// Total number of candidate models evaluated.
    pub candidates_evaluated: u64,
    /// Accumulated wall-clock time in nanoseconds.
    pub total_time_ns: u64,
}

impl SolverStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates another statistics block into this one.
    pub fn merge(&mut self, other: &SolverStats) {
        self.queries += other.queries;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.unknown += other.unknown;
        self.decided_by_preprocess += other.decided_by_preprocess;
        self.decided_by_propagation += other.decided_by_propagation;
        self.decided_by_enumeration += other.decided_by_enumeration;
        self.decided_by_search += other.decided_by_search;
        self.candidates_evaluated += other.candidates_evaluated;
        self.total_time_ns += other.total_time_ns;
    }

    /// Records elapsed time for one query.
    pub fn record_time(&mut self, d: Duration) {
        self.total_time_ns += d.as_nanos() as u64;
    }

    /// Average time per query.
    pub fn mean_query_time(&self) -> Duration {
        match self.total_time_ns.checked_div(self.queries) {
            Some(mean) => Duration::from_nanos(mean),
            None => Duration::ZERO,
        }
    }

    /// Fraction of queries that produced a definite answer (sat or unsat).
    pub fn decision_rate(&self) -> f64 {
        if self.queries == 0 {
            return 1.0;
        }
        (self.sat + self.unsat) as f64 / self.queries as f64
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queries={} sat={} unsat={} unknown={} mean={:?}",
            self.queries,
            self.sat,
            self.unsat,
            self.unknown,
            self.mean_query_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SolverStats {
            queries: 2,
            sat: 1,
            unsat: 1,
            ..Default::default()
        };
        let b = SolverStats {
            queries: 3,
            sat: 2,
            unknown: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.queries, 5);
        assert_eq!(a.sat, 3);
        assert_eq!(a.unsat, 1);
        assert_eq!(a.unknown, 1);
    }

    #[test]
    fn decision_rate_handles_zero_queries() {
        let s = SolverStats::new();
        assert_eq!(s.decision_rate(), 1.0);
        let s2 = SolverStats {
            queries: 4,
            sat: 1,
            unsat: 1,
            unknown: 2,
            ..Default::default()
        };
        assert!((s2.decision_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mean_query_time() {
        let mut s = SolverStats::new();
        s.queries = 2;
        s.record_time(Duration::from_micros(10));
        s.record_time(Duration::from_micros(30));
        assert_eq!(s.mean_query_time(), Duration::from_micros(20));
    }
}
