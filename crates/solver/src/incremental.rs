//! Incremental solving over an assertion stack.
//!
//! The concolic engine's inner loop negates one branch of a recorded path
//! at a time: candidate *k* asks for `prefix[0..k] ∧ ¬branch[k]`. Solved
//! one-shot ([`crate::Solver::solve`]), every sibling candidate re-flattens,
//! re-deduplicates and re-propagates the whole shared prefix from scratch —
//! `O(depth²)` work per run. [`IncrementalSolver`] keeps that work alive on
//! a `push`/`pop` assertion stack instead:
//!
//! * **assert** simplifies a constraint once ([`crate::simplify`]) and
//!   appends its atoms to the stack;
//! * **check** folds any newly asserted atoms into the persistent interval
//!   domains ([`crate::interval::Domains`]) — already-propagated prefix
//!   constraints are *not* revisited — then funnels into the same
//!   enumeration/local-search phases as the one-shot solver;
//! * **push/pop** bracket per-candidate assertions, restoring the prefix
//!   domains on pop so the next sibling starts from the shared state.
//!
//! Results are identical to one-shot solving: `check` sees the same
//! simplified, sorted constraint set a [`crate::Solver::solve`] call would
//! build, the same propagated domains, and runs the identical
//! deterministic search phases. The domain equality rests on interval
//! propagation having a unique fixpoint, so it holds *whenever from-scratch
//! propagation of the full query converges within
//! [`crate::SolverConfig::propagation_rounds`]* — true for the
//! comparison-against-constant constraint families the concolic engine
//! emits, which converge in a few sweeps; diverging would take a
//! variable-to-variable inequality chain longer than the round budget
//! (default 16), ordered so each sweep advances one hop. The session also
//! guards the other direction: if its own cached prefix ever runs out of
//! rounds before converging, the next query rebuilds the domains from
//! scratch instead of reusing a start-point-dependent cache.
//!
//! # Example
//!
//! Two negation candidates sharing a two-constraint prefix, solved as one
//! batched session:
//!
//! ```
//! use dice_solver::{IncrementalSolver, TermArena};
//!
//! let mut arena = TermArena::new();
//! let med = arena.declare_var("med", 32);
//! let pref = arena.declare_var("local_pref", 32);
//! let m = arena.var(med);
//! let p = arena.var(pref);
//! let c100 = arena.int_const(100, 32);
//! let c50 = arena.int_const(50, 32);
//!
//! let mut session = IncrementalSolver::new();
//! // Shared path prefix: med < 100, local_pref >= 50.
//! let pre1 = arena.ult(m, c100);
//! let pre2 = arena.uge(p, c50);
//! session.assert_term(&mut arena, pre1);
//! session.assert_term(&mut arena, pre2);
//!
//! // Candidate 1: negate `med < 10`.
//! session.push(&arena);
//! let c10 = arena.int_const(10, 32);
//! let neg1 = arena.uge(m, c10);
//! session.assert_term(&mut arena, neg1);
//! let v1 = session.check(&arena, None);
//! assert!(v1.model().is_some_and(|m1| m1.get(med) >= 10));
//! session.pop();
//!
//! // Candidate 2: negate `local_pref <= 200` — the prefix domains are
//! // reused, not re-propagated.
//! session.push(&arena);
//! let c200 = arena.int_const(200, 32);
//! let neg2 = arena.ugt(p, c200);
//! session.assert_term(&mut arena, neg2);
//! let v2 = session.check(&arena, None);
//! assert!(v2.model().is_some_and(|m2| m2.get(pref) > 200));
//! session.pop();
//!
//! assert!(session.stats().assertions_reused > 0);
//! ```

use std::collections::HashSet;
use std::time::Instant;

use crate::interval::Domains;
use crate::model::Model;
use crate::simplify::flatten_into;
use crate::solver::{decide, SolverConfig, Verdict};
use crate::stats::SolverStats;
use crate::term::{TermArena, TermId};

/// State saved by [`IncrementalSolver::push`] and restored by
/// [`IncrementalSolver::pop`].
#[derive(Debug, Clone)]
struct Frame {
    /// Length of the asserted list at push time.
    asserted_len: usize,
    /// Interval domains at push time.
    domains: Domains,
    /// How many asserted constraints the saved domains had folded in.
    propagated_len: usize,
    /// Whether the saved domains were a propagation fixpoint.
    converged: bool,
    /// Whether the stack was already syntactically contradictory.
    contradiction: bool,
}

/// A solver session with a push/pop assertion stack.
///
/// Simplification results and propagated interval domains persist across
/// queries, so sibling queries sharing an assertion prefix are decided as
/// one batched session instead of N from-scratch [`crate::Solver::solve`]
/// calls. See the [module documentation](self) for the contract and an
/// example.
#[derive(Debug, Clone)]
pub struct IncrementalSolver {
    config: SolverConfig,
    stats: SolverStats,
    /// Flattened, deduplicated atoms, in assertion order.
    asserted: Vec<TermId>,
    /// Dedup set over `asserted`.
    seen: HashSet<TermId>,
    /// Interval domains covering `asserted[..propagated_len]`.
    domains: Domains,
    propagated_len: usize,
    /// Whether `domains` is a fixpoint (vacuously true when empty).
    converged: bool,
    /// A literal `false` or a `p ∧ ¬p` pair has been asserted.
    contradiction: bool,
    frames: Vec<Frame>,
}

impl Default for IncrementalSolver {
    fn default() -> Self {
        Self::with_config(SolverConfig::default())
    }
}

impl IncrementalSolver {
    /// Creates a session with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a session with the given configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        IncrementalSolver {
            config,
            stats: SolverStats::new(),
            asserted: Vec::new(),
            seen: HashSet::new(),
            domains: Domains::new(),
            propagated_len: 0,
            // Vacuously a fixpoint: nothing has been propagated yet.
            converged: true,
            contradiction: false,
            frames: Vec::new(),
        }
    }

    /// Returns the configuration in use.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Returns cumulative statistics for this session.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Mutable access to this session's statistics, so callers that know a
    /// query's provenance (e.g. the exploration engine attributing
    /// policy-derived queries) can annotate the counters.
    pub fn stats_mut(&mut self) -> &mut SolverStats {
        &mut self.stats
    }

    /// Resets cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats = SolverStats::new();
    }

    /// Current stack depth (number of unmatched pushes).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Number of (simplified) constraints currently asserted.
    pub fn assertion_count(&self) -> usize {
        self.asserted.len()
    }

    /// Returns true if the asserted set is already known contradictory
    /// without consulting the domains or search phases.
    pub fn is_contradiction(&self) -> bool {
        self.contradiction
    }

    /// Saves the current assertion state; [`IncrementalSolver::pop`]
    /// restores it.
    ///
    /// Assertions made since the last propagation are folded into the
    /// interval domains *before* the snapshot is taken (propagation is
    /// otherwise lazy), so every frame pushed on top of this state — each
    /// sibling negation candidate — reuses the propagated prefix instead of
    /// recomputing it after each pop. That commit step is why `push` takes
    /// the arena.
    pub fn push(&mut self, arena: &TermArena) {
        if !self.contradiction && self.propagation_needed() {
            let sorted = self.sorted_assertions();
            self.propagate_pending(arena, &sorted);
        }
        self.frames.push(Frame {
            asserted_len: self.asserted.len(),
            domains: self.domains.clone(),
            propagated_len: self.propagated_len,
            converged: self.converged,
            contradiction: self.contradiction,
        });
        self.stats.session_pushes += 1;
    }

    /// Returns true if the domains do not yet cover the asserted set.
    fn propagation_needed(&self) -> bool {
        self.propagated_len < self.asserted.len() || !self.converged
    }

    /// The asserted set in sorted order — exactly the constraint list
    /// `preprocess` would hand the one-shot pipeline.
    fn sorted_assertions(&self) -> Vec<TermId> {
        let mut sorted = self.asserted.clone();
        sorted.sort_unstable();
        sorted
    }

    /// Folds assertions not yet covered by the domains into them,
    /// propagating to a fixpoint. `sorted` must be the current
    /// [`IncrementalSolver::sorted_assertions`]; callers that already hold
    /// it (check) avoid re-sorting here.
    fn propagate_pending(&mut self, arena: &TermArena, sorted: &[TermId]) {
        let pending = self.asserted.len() - self.propagated_len;
        if pending == 0 && self.converged {
            return;
        }
        let start = Instant::now();
        if !self.converged {
            self.stats.assertions_propagated += self.asserted.len() as u64;
            self.domains = Domains::init(arena, sorted);
        } else {
            self.stats.assertions_propagated += pending as u64;
            self.domains
                .ensure_vars(arena, &self.asserted[self.propagated_len..]);
        }
        let outcome = self
            .domains
            .propagate_counted(arena, sorted, self.config.propagation_rounds);
        self.propagated_len = self.asserted.len();
        self.converged = outcome.converged;
        self.stats.propagation_time_ns += start.elapsed().as_nanos() as u64;
    }

    /// Restores the state saved by the matching [`IncrementalSolver::push`]:
    /// assertions made since then are retracted and the saved prefix
    /// domains are reinstated.
    ///
    /// # Panics
    ///
    /// Panics if called without a matching `push`.
    pub fn pop(&mut self) {
        let frame = self.frames.pop().expect("pop without matching push");
        for t in &self.asserted[frame.asserted_len..] {
            self.seen.remove(t);
        }
        self.asserted.truncate(frame.asserted_len);
        self.domains = frame.domains;
        self.propagated_len = frame.propagated_len;
        self.converged = frame.converged;
        self.contradiction = frame.contradiction;
        self.stats.session_pops += 1;
    }

    /// Asserts a boolean constraint: normalizes it, flattens conjunctions,
    /// drops tautologies and deduplicates against everything already on the
    /// stack. Each distinct term is simplified exactly once per session, no
    /// matter how many queries it participates in.
    pub fn assert_term(&mut self, arena: &mut TermArena, term: TermId) {
        if self.contradiction {
            return;
        }
        let start = Instant::now();
        let before = self.asserted.len();
        if !flatten_into(arena, term, &mut self.seen, &mut self.asserted) {
            self.contradiction = true;
        } else {
            // Detect `p` asserted on a stack already holding `not p`.
            for i in before..self.asserted.len() {
                let neg = arena.not(self.asserted[i]);
                if self.seen.contains(&neg) {
                    self.contradiction = true;
                    break;
                }
            }
        }
        self.stats.preprocess_passes += 1;
        self.stats.preprocess_time_ns += start.elapsed().as_nanos() as u64;
    }

    /// Asserts every constraint in the slice, in order.
    pub fn assert_all(&mut self, arena: &mut TermArena, terms: &[TermId]) {
        for &t in terms {
            self.assert_term(arena, t);
        }
    }

    /// Decides satisfiability of the conjunction of all asserted
    /// constraints. `seed` plays the same role as in
    /// [`crate::Solver::solve`].
    ///
    /// Only constraints asserted since the last `check` (or, after a `pop`,
    /// since the restored frame's last propagation) are folded into the
    /// interval domains; everything else is reused.
    pub fn check(&mut self, arena: &TermArena, seed: Option<&Model>) -> Verdict {
        let mut span = dice_obs::span("solver", "solver.check");
        let reused_before = self.stats.assertions_reused;
        let start = Instant::now();
        let verdict = self.check_inner(arena, seed);
        // The span's payload is the number of assertions this query reused
        // from the session instead of re-propagating — the incremental win.
        span.set_detail(self.stats.assertions_reused - reused_before);
        self.stats.queries += 1;
        self.stats.incremental_queries += 1;
        match &verdict {
            Verdict::Sat(_) => self.stats.sat += 1,
            Verdict::Unsat => self.stats.unsat += 1,
            Verdict::Unknown => self.stats.unknown += 1,
        }
        self.stats.record_time(start.elapsed());
        verdict
    }

    fn check_inner(&mut self, arena: &TermArena, seed: Option<&Model>) -> Verdict {
        if self.contradiction {
            self.stats.decided_by_preprocess += 1;
            return Verdict::Unsat;
        }
        if self.asserted.is_empty() {
            self.stats.decided_by_preprocess += 1;
            return Verdict::Sat(seed.cloned().unwrap_or_default());
        }

        // The search phases expect the preprocessed set in sorted order,
        // exactly as `preprocess` would have produced it; propagation uses
        // the same list, so it is computed once per query.
        let sorted = self.sorted_assertions();

        // Constraints already folded into converged domains are reused as
        // is; only assertions made since then get propagated.
        if self.converged {
            self.stats.assertions_reused += self.propagated_len as u64;
        }
        self.propagate_pending(arena, &sorted);
        if self.domains.any_empty() {
            self.stats.decided_by_propagation += 1;
            return Verdict::Unsat;
        }

        decide(
            &self.config,
            &mut self.stats,
            arena,
            &sorted,
            &self.domains,
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;

    fn arena_with_var(width: u32) -> (TermArena, crate::term::VarId, TermId) {
        let mut arena = TermArena::new();
        let x = arena.declare_var("x", width);
        let xv = arena.var(x);
        (arena, x, xv)
    }

    #[test]
    fn empty_session_is_sat() {
        let arena = TermArena::new();
        let mut s = IncrementalSolver::new();
        assert!(s.check(&arena, None).is_sat());
        assert_eq!(s.stats().queries, 1);
        assert_eq!(s.stats().incremental_queries, 1);
    }

    #[test]
    fn push_pop_restores_verdicts() {
        let (mut arena, x, xv) = arena_with_var(8);
        let c5 = arena.int_const(5, 8);
        let lt5 = arena.ult(xv, c5);
        let ge5 = arena.uge(xv, c5);

        let mut s = IncrementalSolver::new();
        s.assert_term(&mut arena, lt5);
        let m = s.check(&arena, None);
        assert!(m.model().is_some_and(|m| m.get(x) < 5));

        s.push(&arena);
        s.assert_term(&mut arena, ge5);
        assert!(s.check(&arena, None).is_unsat());
        s.pop();

        // The contradiction was retracted with the frame.
        let m = s.check(&arena, None);
        assert!(m.model().is_some_and(|m| m.get(x) < 5));
        assert_eq!(s.depth(), 0);
        assert_eq!(s.stats().session_pushes, 1);
        assert_eq!(s.stats().session_pops, 1);
    }

    #[test]
    fn nested_frames_restore_in_order() {
        let (mut arena, x, xv) = arena_with_var(8);
        let c10 = arena.int_const(10, 8);
        let c20 = arena.int_const(20, 8);
        let c30 = arena.int_const(30, 8);
        let ge10 = arena.uge(xv, c10);
        let ge20 = arena.uge(xv, c20);
        let ge30 = arena.uge(xv, c30);

        let mut s = IncrementalSolver::new();
        s.assert_term(&mut arena, ge10);
        s.push(&arena);
        s.assert_term(&mut arena, ge20);
        s.push(&arena);
        s.assert_term(&mut arena, ge30);
        assert_eq!(s.assertion_count(), 3);
        let m = s.check(&arena, None);
        assert!(m.model().is_some_and(|m| m.get(x) >= 30));
        s.pop();
        let m = s.check(&arena, None);
        assert!(m.model().is_some_and(|m| m.get(x) >= 20));
        s.pop();
        let m = s.check(&arena, None);
        assert!(m.model().is_some_and(|m| m.get(x) >= 10));
    }

    #[test]
    fn duplicate_assertions_are_deduplicated() {
        let (mut arena, _, xv) = arena_with_var(8);
        let c5 = arena.int_const(5, 8);
        let lt5 = arena.ult(xv, c5);
        let mut s = IncrementalSolver::new();
        s.assert_term(&mut arena, lt5);
        s.assert_term(&mut arena, lt5);
        s.push(&arena);
        s.assert_term(&mut arena, lt5);
        assert_eq!(s.assertion_count(), 1);
        s.pop();
        assert_eq!(s.assertion_count(), 1);
        assert!(s.check(&arena, None).is_sat());
    }

    #[test]
    fn p_and_not_p_is_syntactic_contradiction() {
        let (mut arena, _, xv) = arena_with_var(8);
        let c5 = arena.int_const(5, 8);
        let p = arena.eq(xv, c5);
        let np = arena.not(p);
        let mut s = IncrementalSolver::new();
        s.assert_term(&mut arena, p);
        s.push(&arena);
        s.assert_term(&mut arena, np);
        assert!(s.is_contradiction());
        assert!(s.check(&arena, None).is_unsat());
        s.pop();
        assert!(!s.is_contradiction());
        assert!(s.check(&arena, None).is_sat());
    }

    #[test]
    fn conjunctions_flatten_across_the_stack() {
        let (mut arena, x, xv) = arena_with_var(8);
        let c3 = arena.int_const(3, 8);
        let c7 = arena.int_const(7, 8);
        let a = arena.uge(xv, c3);
        let b = arena.ule(xv, c7);
        let both = arena.and(a, b);
        let mut s = IncrementalSolver::new();
        s.assert_term(&mut arena, both);
        assert_eq!(s.assertion_count(), 2);
        let m = s.check(&arena, None);
        let v = m.model().expect("sat").get(x);
        assert!((3..=7).contains(&v));
    }

    #[test]
    fn matches_one_shot_solver_on_shared_prefix() {
        // The engine's exact usage pattern: assert the prefix once, then
        // push/check/pop one negation candidate at a time.
        let mut arena = TermArena::new();
        let a = arena.declare_var("a", 16);
        let b = arena.declare_var("b", 16);
        let av = arena.var(a);
        let bv = arena.var(b);
        let c100 = arena.int_const(100, 16);
        let c50 = arena.int_const(50, 16);
        let c10 = arena.int_const(10, 16);
        let prefix = [arena.ult(av, c100), arena.uge(bv, c50)];
        let negations = [
            arena.uge(av, c10),
            arena.ult(bv, c100),
            arena.ugt(av, c100), // infeasible under the prefix
        ];

        let mut session = IncrementalSolver::new();
        session.assert_all(&mut arena, &prefix);
        for &neg in &negations {
            session.push(&arena);
            session.assert_term(&mut arena, neg);
            let incremental = session.check(&arena, None);
            session.pop();

            let mut one_shot = Solver::new();
            let mut query = prefix.to_vec();
            query.push(neg);
            let reference = one_shot.solve(&mut arena, &query, None);
            assert_eq!(incremental, reference, "negation {}", arena.display(neg));
        }
        assert!(session.stats().assertions_reused > 0);
    }

    #[test]
    #[should_panic(expected = "pop without matching push")]
    fn pop_on_empty_stack_panics() {
        let mut s = IncrementalSolver::new();
        s.pop();
    }
}
