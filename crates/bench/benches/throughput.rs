//! Experiments E3/E4: BGP updates handled per second with and without
//! exploration sharing the core (§4.1 CPU/performance impact).

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bench::{
    customer_peer, install_victim_prefix, internet_peer, observed_customer_update, provider_router,
    throughput_updates,
};
use dice_core::{CustomerFilterMode, Dice, DiceConfig, SharedCoreScheduler};
use dice_symexec::EngineConfig;

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);

    let updates = throughput_updates(500);

    group.bench_function("updates_without_exploration", |b| {
        b.iter(|| {
            let mut router = provider_router(CustomerFilterMode::Erroneous);
            let peer = internet_peer(&router);
            let result = SharedCoreScheduler::baseline().run(&mut router, peer, &updates, || {});
            std::hint::black_box(result.updates_processed)
        })
    });

    group.bench_function("updates_with_exploration", |b| {
        b.iter(|| {
            let mut router = provider_router(CustomerFilterMode::Erroneous);
            install_victim_prefix(&mut router);
            let peer = internet_peer(&router);
            let customer = customer_peer(&router);
            let observed = observed_customer_update();
            let dice = Dice::with_config(
                DiceConfig::default().with_engine(EngineConfig::default().with_max_runs(4)),
            );
            let checkpoint = router.clone();
            let result =
                SharedCoreScheduler { explore_every: 64 }.run(&mut router, peer, &updates, || {
                    std::hint::black_box(dice.run_single(&checkpoint, customer, &observed).runs);
                });
            std::hint::black_box(result.updates_processed)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
