//! Fault-injection benchmark: exploration-round cost with a deterministic
//! fault plan driving the simulation vs the identical unperturbed run,
//! plus the equivalence assertion that guards the layer — an *empty* plan
//! leaves the live report digest byte-identical to no plan at all.
//!
//! Set `DICE_BENCH_FAULTS_JSON=<path>` to write the comparison as a JSON
//! baseline artifact (CI uploads `BENCH_faults.json` next to the other
//! `BENCH_*.json` baselines).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bgp::attributes::RouteAttrs;
use dice_bgp::message::{BgpMessage, UpdateMessage};
use dice_bgp::AsPath;
use dice_core::{
    CrossRoundFlapChecker, DiceBuilder, DiceSession, LiveOrchestrator, LiveReport,
    OriginHijackChecker,
};
use dice_netsim::topology::{addr, asn, figure2_topology, CustomerFilterMode, NodeId};
use dice_netsim::{FaultPlan, FaultSpec, Simulator};
use dice_symexec::EngineConfig;

const EPOCH_BLOCKS: [&str; 4] = [
    "41.1.0.0/16",
    "41.64.0.0/12",
    "41.128.0.0/12",
    "41.192.0.0/12",
];

fn announcement(prefix: &str, path: &[u32], next_hop: std::net::Ipv4Addr) -> BgpMessage {
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence(path.iter().copied());
    attrs.next_hop = next_hop;
    BgpMessage::Update(UpdateMessage::announce(
        vec![prefix.parse().expect("valid prefix")],
        &attrs,
    ))
}

fn fresh_sim() -> (Simulator, NodeId, NodeId, NodeId) {
    let topo = figure2_topology(CustomerFilterMode::Erroneous);
    let customer = topo.node_by_name("Customer").expect("node");
    let provider = topo.node_by_name("Provider").expect("node");
    let internet = topo.node_by_name("RestOfInternet").expect("node");
    let mut sim = Simulator::new(&topo);
    sim.inject(
        provider,
        addr::INTERNET,
        announcement(
            "208.65.152.0/22",
            &[asn::INTERNET, 3356, asn::VICTIM],
            addr::INTERNET,
        ),
    );
    sim.run_to_quiescence(100);
    (sim, customer, provider, internet)
}

fn session() -> DiceSession {
    DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(64))
        .checker(Box::new(OriginHijackChecker::new()))
        .checker(Box::new(CrossRoundFlapChecker::new()))
        .build()
}

/// The adversarial plan the "enabled" side drives: a session reset between
/// Provider and Customer at epoch 1, a Provider↔Internet link flap across
/// epoch 2, and seeded message duplication on the customer link.
fn plan(customer: NodeId, provider: NodeId, internet: NodeId) -> FaultPlan {
    FaultPlan::new(0x5EED)
        .with_spec(FaultSpec::SessionReset {
            a: provider,
            b: customer,
            epoch: 1,
        })
        .with_spec(FaultSpec::LinkFlap {
            a: provider,
            b: internet,
            down_epoch: 2,
            up_epoch: 3,
        })
        .with_spec(FaultSpec::MessageDuplicate {
            a: customer,
            b: provider,
            probability: 0.5,
        })
}

/// One continuous run: an epoch of customer traffic per round, with or
/// without the fault plan perturbing the network between epochs.
fn live_run(fault_plan: Option<FaultPlan>) -> LiveReport {
    let (mut sim, _, provider, _) = fresh_sim();
    let mut orchestrator = LiveOrchestrator::new(session()).with_core_budget(1);
    if let Some(plan) = fault_plan {
        orchestrator = orchestrator.with_fault_plan(plan);
    }
    orchestrator.run(&mut sim, |sim, epoch| {
        if let Some(block) = EPOCH_BLOCKS.get(epoch) {
            sim.inject(
                provider,
                addr::CUSTOMER,
                announcement(block, &[asn::CUSTOMER, asn::CUSTOMER], addr::CUSTOMER),
            );
        }
        epoch + 1 < EPOCH_BLOCKS.len()
    })
}

fn bench_faults(c: &mut Criterion) {
    let (_, customer, provider, internet) = fresh_sim();
    let adversarial = plan(customer, provider, internet);

    let mut group = c.benchmark_group("faults");
    group.sample_size(10);

    group.bench_function("figure2_rounds_injection_disabled", |b| {
        b.iter(|| std::hint::black_box(live_run(None).total_runs()))
    });

    group.bench_function("figure2_rounds_injection_enabled", |b| {
        let plan = adversarial.clone();
        b.iter(|| std::hint::black_box(live_run(Some(plan.clone())).total_runs()))
    });

    group.finish();

    // Direct readout + JSON baseline, plus the two guarantees that guard
    // the fault layer: empty-plan byte-identity and faulty-run replay.
    let reps: u32 = std::env::var("DICE_BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let time = |plan: Option<FaultPlan>| -> (Duration, LiveReport) {
        let mut best = Duration::MAX;
        let mut last = LiveReport::default();
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            last = live_run(plan.clone());
            best = best.min(start.elapsed());
        }
        (best, last)
    };
    let (clean_time, clean) = time(None);
    let (faulty_time, faulty) = time(Some(adversarial.clone()));

    let (empty_time, empty) = time(Some(FaultPlan::new(0x5EED)));
    assert_eq!(
        empty.digest(),
        clean.digest(),
        "an empty plan must leave the live digest byte-identical"
    );
    let (_, replay) = time(Some(adversarial));
    assert_eq!(
        replay.digest(),
        faulty.digest(),
        "faulty runs must replay byte for byte from (plan, seed)"
    );
    assert!(faulty.injected_faults > 0, "the plan actually injected");
    assert_eq!(clean.injected_faults, 0);

    let overhead = faulty_time.as_secs_f64() / clean_time.as_secs_f64().max(f64::EPSILON);
    println!(
        "\nfault injection ({} rounds clean / {} faulty, {} injected fault(s)): \
         disabled {:?}, empty plan {:?}, enabled {:?}, overhead {:.2}x",
        clean.rounds.len(),
        faulty.rounds.len(),
        faulty.injected_faults,
        clean_time,
        empty_time,
        faulty_time,
        overhead,
    );

    if let Ok(path) = std::env::var("DICE_BENCH_FAULTS_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"faults_figure2_rounds\",\n  \"clean_rounds\": {},\n  \
             \"faulty_rounds\": {},\n  \"injected_faults\": {},\n  \"clean_runs\": {},\n  \
             \"faulty_runs\": {},\n  \"disabled_ns\": {},\n  \"empty_plan_ns\": {},\n  \
             \"enabled_ns\": {},\n  \"overhead\": {overhead:.4}\n}}\n",
            clean.rounds.len(),
            faulty.rounds.len(),
            faulty.injected_faults,
            clean.total_runs(),
            faulty.total_runs(),
            clean_time.as_nanos(),
            empty_time.as_nanos(),
            faulty_time.as_nanos(),
        );
        std::fs::write(&path, json).expect("write bench baseline");
        println!("wrote perf baseline to {path}");
    }
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
