//! Fault-plan search benchmark: plans searched per second over the wedgie
//! scenario, the cost of one fixed-plan replay vs one search step, and the
//! invariant assertions that guard the search — the empty-plan baseline is
//! byte-identical to a plain run, and a seeded search replays its digest.
//!
//! Set `DICE_BENCH_FAULT_SEARCH_JSON=<path>` to write the readout as a
//! JSON baseline artifact (CI uploads `BENCH_fault_search.json` next to
//! the other `BENCH_*.json` baselines).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bgp::attributes::RouteAttrs;
use dice_bgp::message::{BgpMessage, UpdateMessage};
use dice_bgp::AsPath;
use dice_core::{
    BgpWedgieChecker, DiceBuilder, FaultPlanSearch, FaultScenario, LiveOrchestrator, SearchReport,
    SpecKindMask,
};
use dice_netsim::topology::{addr, asn, figure2_topology, CustomerFilterMode, NodeId};
use dice_netsim::{FaultPlan, FaultSpec, Simulator};
use dice_symexec::EngineConfig;

/// The healed-partition wedgie scenario of the fault-search test suite:
/// customer block at epoch 0, then steady Internet-side traffic so the
/// fleet round clock keeps ticking after any injected fault.
struct WedgieScenario;

impl FaultScenario for WedgieScenario {
    fn build(&self) -> Simulator {
        Simulator::new(&figure2_topology(CustomerFilterMode::Missing))
    }

    fn drive(&self, sim: &mut Simulator, epoch: usize) -> bool {
        let provider = NodeId(1);
        let mut attrs = RouteAttrs::default();
        if epoch == 0 {
            attrs.as_path = AsPath::from_sequence([asn::CUSTOMER, asn::CUSTOMER]);
            attrs.next_hop = addr::CUSTOMER;
            sim.inject(
                provider,
                addr::CUSTOMER,
                BgpMessage::Update(UpdateMessage::announce(
                    vec!["41.1.0.0/16".parse().expect("valid")],
                    &attrs,
                )),
            );
        } else {
            attrs.as_path = AsPath::from_sequence([asn::INTERNET, 3356]);
            attrs.next_hop = addr::INTERNET;
            let block = format!("198.51.{}.0/24", 99 + epoch);
            sim.inject(
                provider,
                addr::INTERNET,
                BgpMessage::Update(UpdateMessage::announce(
                    vec![block.parse().expect("valid")],
                    &attrs,
                )),
            );
        }
        epoch < 3
    }
}

fn orchestrator() -> LiveOrchestrator {
    let session = DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(4))
        .checker(Box::new(BgpWedgieChecker::new()))
        .build();
    LiveOrchestrator::new(session).with_core_budget(1)
}

fn search(budget: usize) -> FaultPlanSearch {
    FaultPlanSearch::new(orchestrator())
        .with_seed(1)
        .with_budget(budget)
        .with_epoch_horizon(3)
        .with_spec_kinds(SpecKindMask::only_partitions())
}

/// One fixed-plan orchestrator run: the unit of work a search step adds
/// its generation/scoring overhead on top of.
fn fixed_plan_run(plan: FaultPlan) -> u64 {
    let mut sim = WedgieScenario.build();
    orchestrator()
        .with_fault_plan(plan)
        .run(&mut sim, |sim, epoch| WedgieScenario.drive(sim, epoch))
        .injected_faults
}

fn bench_fault_search(c: &mut Criterion) {
    let wedgie_plan = FaultPlan::new(1).with_spec(FaultSpec::Partition {
        nodes: vec![NodeId(0)],
        epoch: 1,
    });

    let mut group = c.benchmark_group("fault_search");
    group.sample_size(10);

    group.bench_function("fixed_plan_replay", |b| {
        let plan = wedgie_plan.clone();
        b.iter(|| std::hint::black_box(fixed_plan_run(plan.clone())))
    });

    group.bench_function("search_step", |b| {
        // Budget 1 = baseline + one generated candidate: the marginal
        // cost of searching over replaying.
        b.iter(|| std::hint::black_box(search(1).run(&WedgieScenario).plans_tried))
    });

    group.bench_function("search_budget_8", |b| {
        b.iter(|| std::hint::black_box(search(8).run(&WedgieScenario).repros.len()))
    });

    group.finish();

    // Direct readout + JSON baseline, guarded by the search invariants.
    let reps: u32 = std::env::var("DICE_BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let time_search = |budget: usize| -> (Duration, SearchReport) {
        let mut best = Duration::MAX;
        let mut last = SearchReport::default();
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            last = search(budget).run(&WedgieScenario);
            best = best.min(start.elapsed());
        }
        (best, last)
    };

    let replay_time = {
        let mut best = Duration::MAX;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            std::hint::black_box(fixed_plan_run(wedgie_plan.clone()));
            best = best.min(start.elapsed());
        }
        best
    };
    let (search_time, report) = time_search(8);
    let (_, rerun) = time_search(8);

    assert_eq!(
        report.digest(),
        rerun.digest(),
        "a seeded search must replay its digest byte for byte"
    );
    let mut sim = WedgieScenario.build();
    let plain = orchestrator()
        .run(&mut sim, |sim, epoch| WedgieScenario.drive(sim, epoch))
        .digest();
    assert_eq!(
        report.baseline_live_digest, plain,
        "the empty-plan baseline must be byte-identical to a plain run"
    );
    assert!(
        !report.repros.is_empty(),
        "the seeded search must discover the wedgie"
    );

    // plans/sec counts the baseline plus every candidate and shrink run —
    // each is one full orchestrator run.
    let total_runs = 1 + report.plans_tried + report.shrink_runs + report.repros.len();
    let plans_per_sec = total_runs as f64 / search_time.as_secs_f64().max(f64::EPSILON);
    let overhead = search_time.as_secs_f64()
        / (replay_time.as_secs_f64() * total_runs as f64).max(f64::EPSILON);
    println!(
        "\nfault-plan search (budget 8): {} run(s) in {:?} ({:.0} plans/s), \
         {} novel, {} repro(s), replay unit {:?}, overhead {:.2}x",
        total_runs,
        search_time,
        plans_per_sec,
        report.novel_plans,
        report.repros.len(),
        replay_time,
        overhead,
    );

    if let Ok(path) = std::env::var("DICE_BENCH_FAULT_SEARCH_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"fault_search_wedgie\",\n  \"plans_tried\": {},\n  \
             \"novel_plans\": {},\n  \"shrink_runs\": {},\n  \"repros\": {},\n  \
             \"total_runs\": {},\n  \"search_ns\": {},\n  \"replay_unit_ns\": {},\n  \
             \"plans_per_sec\": {plans_per_sec:.1},\n  \"overhead\": {overhead:.4}\n}}\n",
            report.plans_tried,
            report.novel_plans,
            report.shrink_runs,
            report.repros.len(),
            total_runs,
            search_time.as_nanos(),
            replay_time.as_nanos(),
        );
        std::fs::write(&path, json).expect("write bench baseline");
        println!("wrote perf baseline to {path}");
    }
}

criterion_group!(benches, bench_fault_search);
criterion_main!(benches);
