//! Experiment E5: time to detect the origin-misconfiguration route leak
//! with DiCE exploration (§4.2).

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bench::{customer_peer, install_victim_prefix, observed_customer_update, provider_router};
use dice_core::{CustomerFilterMode, Dice, DiceConfig};
use dice_symexec::EngineConfig;

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection");
    group.sample_size(10);

    group.bench_function("route_leak_detection_erroneous_filter", |b| {
        let mut router = provider_router(CustomerFilterMode::Erroneous);
        install_victim_prefix(&mut router);
        let customer = customer_peer(&router);
        let observed = observed_customer_update();
        let dice = Dice::with_config(
            DiceConfig::default().with_engine(EngineConfig::default().with_max_runs(32)),
        );
        b.iter(|| {
            let report = dice.run_single(&router, customer, &observed);
            assert!(report.has_faults());
            std::hint::black_box(report.faults.len())
        })
    });

    group.bench_function("exploration_correct_filter_no_fault", |b| {
        let mut router = provider_router(CustomerFilterMode::Correct);
        install_victim_prefix(&mut router);
        let customer = customer_peer(&router);
        let observed = observed_customer_update();
        let dice = Dice::new();
        b.iter(|| {
            let report = dice.run_single(&router, customer, &observed);
            assert!(!report.has_faults());
            std::hint::black_box(report.runs)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
