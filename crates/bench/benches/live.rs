//! Live-orchestration benchmark: continuous multi-round exploration
//! against a progressing simulation vs one end-of-run harvested round,
//! with the equivalence assertion that guards the orchestrator — a
//! single-round live run over a quiesced simulator is byte-identical to
//! `FleetExplorer::explore` on the same state.
//!
//! Set `DICE_BENCH_LIVE_JSON=<path>` to write the comparison as a JSON
//! baseline artifact (CI uploads `BENCH_live.json` next to
//! `BENCH_solver.json` and `BENCH_fleet.json`).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use dice_bgp::attributes::RouteAttrs;
use dice_bgp::message::{BgpMessage, UpdateMessage};
use dice_bgp::AsPath;
use dice_core::{
    DiceBuilder, DiceSession, FleetExplorer, LiveOrchestrator, LiveReport, OriginHijackChecker,
    RouteOscillationChecker,
};
use dice_netsim::topology::{addr, asn, figure2_topology, CustomerFilterMode, NodeId};
use dice_netsim::Simulator;
use dice_symexec::EngineConfig;

const EPOCH_BLOCKS: [&str; 4] = [
    "41.1.0.0/16",
    "41.64.0.0/12",
    "41.128.0.0/12",
    "41.192.0.0/12",
];

fn announcement(prefix: &str, path: &[u32], next_hop: std::net::Ipv4Addr) -> BgpMessage {
    let mut attrs = RouteAttrs::default();
    attrs.as_path = AsPath::from_sequence(path.iter().copied());
    attrs.next_hop = next_hop;
    BgpMessage::Update(UpdateMessage::announce(
        vec![prefix.parse().expect("valid prefix")],
        &attrs,
    ))
}

fn fresh_sim() -> (Simulator, NodeId) {
    let topo = figure2_topology(CustomerFilterMode::Erroneous);
    let provider = topo.node_by_name("Provider").expect("node");
    let mut sim = Simulator::new(&topo);
    sim.inject(
        provider,
        addr::INTERNET,
        announcement(
            "208.65.152.0/22",
            &[asn::INTERNET, 3356, asn::VICTIM],
            addr::INTERNET,
        ),
    );
    sim.run_to_quiescence(100);
    (sim, provider)
}

fn session() -> DiceSession {
    DiceBuilder::new()
        .engine(EngineConfig::default().with_max_runs(64))
        .checker(Box::new(OriginHijackChecker::new()))
        .checker(Box::new(RouteOscillationChecker::new()))
        .build()
}

/// One continuous run: an epoch of customer traffic per round.
fn live_run(core_budget: usize) -> LiveReport {
    let (mut sim, provider) = fresh_sim();
    LiveOrchestrator::new(session())
        .with_core_budget(core_budget)
        .run(&mut sim, |sim, epoch| {
            if let Some(block) = EPOCH_BLOCKS.get(epoch) {
                sim.inject(
                    provider,
                    addr::CUSTOMER,
                    announcement(block, &[asn::CUSTOMER, asn::CUSTOMER], addr::CUSTOMER),
                );
            }
            epoch + 1 < EPOCH_BLOCKS.len()
        })
}

fn bench_live(c: &mut Criterion) {
    let mut group = c.benchmark_group("live");
    group.sample_size(10);

    group.bench_function("figure2_continuous_rounds_budget1", |b| {
        b.iter(|| std::hint::black_box(live_run(1).total_runs()))
    });

    group.bench_function("figure2_continuous_rounds_all_cores", |b| {
        b.iter(|| std::hint::black_box(live_run(0).total_runs()))
    });

    group.finish();

    // Direct readout + JSON baseline, plus the two guarantees that guard
    // the orchestrator: budget-invariant digests, and the single-round
    // equivalence anchor against FleetExplorer.
    let reps: u32 = std::env::var("DICE_BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let time = |budget: usize| -> (Duration, LiveReport) {
        let mut best = Duration::MAX;
        let mut last = LiveReport::default();
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            last = live_run(budget);
            best = best.min(start.elapsed());
        }
        (best, last)
    };
    let (sequential_time, sequential) = time(1);
    let (parallel_time, parallel) = time(0);
    assert_eq!(
        sequential.digest(),
        parallel.digest(),
        "live reports must be identical for every core budget"
    );
    assert_eq!(sequential.rounds.len(), EPOCH_BLOCKS.len());
    assert!(sequential.has_faults(), "the provider leak is detected");

    // Anchor: one quiesced round == FleetExplorer, byte for byte.
    let (mut sim, provider) = fresh_sim();
    sim.inject(
        provider,
        addr::CUSTOMER,
        announcement(
            EPOCH_BLOCKS[0],
            &[asn::CUSTOMER, asn::CUSTOMER],
            addr::CUSTOMER,
        ),
    );
    sim.run_to_quiescence(100);
    let fleet = FleetExplorer::new(session()).explore(&sim);
    let single = LiveOrchestrator::new(session()).run(&mut sim, |_, _| false);
    assert_eq!(
        single.rounds[0].report.digest(),
        fleet.digest(),
        "single-round live run must match FleetExplorer exactly"
    );

    let speedup = sequential_time.as_secs_f64() / parallel_time.as_secs_f64().max(f64::EPSILON);
    println!(
        "\nlive run ({} rounds, {} runs, {} fault(s), {} cores): sequential {:?}, parallel {:?}, speedup {:.2}x",
        sequential.rounds.len(),
        sequential.total_runs(),
        sequential.faults.len(),
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1),
        sequential_time,
        parallel_time,
        speedup,
    );

    if let Ok(path) = std::env::var("DICE_BENCH_LIVE_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"live_figure2_continuous\",\n  \"rounds\": {},\n  \"runs\": {},\n  \
             \"faults\": {},\n  \"sequential_ns\": {},\n  \"parallel_ns\": {},\n  \
             \"speedup\": {speedup:.4}\n}}\n",
            sequential.rounds.len(),
            sequential.total_runs(),
            sequential.faults.len(),
            sequential_time.as_nanos(),
            parallel_time.as_nanos(),
        );
        std::fs::write(&path, json).expect("write bench baseline");
        println!("wrote perf baseline to {path}");
    }
}

criterion_group!(benches, bench_live);
criterion_main!(benches);
